#!/usr/bin/env python
"""Quickstart: build a 4-processor system, run a benchmark, read stats.

Runs the radiosity workload model on the default scaled machine under
the baseline MOESI protocol and under Enhanced MESTI, and prints the
headline numbers: runtime, IPC, communication misses, and validates.

Usage:  python examples/quickstart.py [scale]
"""

import sys

from repro import System, configure_technique, get_benchmark, scaled_config, table1_config


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3

    print("The paper's Table 1 machine (verbatim parameters):")
    t1 = table1_config()
    print(f"  {t1.n_procs} processors, {t1.core.width}-wide, "
          f"{t1.core.rob_size}-entry window")
    print(f"  L2: {t1.l2.size_bytes // (1024 * 1024)}MB {t1.l2.ways}-way, "
          f"remote latency {t1.bus.data_latency} cycles")
    print()

    config = scaled_config()
    print(f"Experiment machine (scaled): L2 {config.l2.size_bytes // 1024}KB, "
          f"remote latency {config.bus.data_latency} cycles")
    print()

    for technique in ("base", "emesti"):
        cfg = configure_technique(config, technique)
        workload = get_benchmark("radiosity", scale=scale)
        result = System(cfg, workload, seed=1).run()
        print(f"[{technique}] radiosity (scale={scale})")
        print(f"  runtime:        {result.cycles:>10,} cycles")
        print(f"  committed:      {result.committed:>10,} micro-ops "
              f"(IPC {result.ipc:.2f})")
        print(f"  comm misses:    {result.miss_class('comm'):>10,.0f} "
              f"(of {result.miss_class('total'):,.0f} total)")
        print(f"  validates:      {result.txn('validate'):>10,.0f}")
        print(f"  bus txns:       {result.address_transactions:>10,.0f}")
        print()


if __name__ == "__main__":
    main()
