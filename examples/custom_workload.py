#!/usr/bin/env python
"""Compose your own workload with the declarative SyntheticMix API.

Builds two custom sharing mixes — a "producer/consumer status board"
that is perfect for E-MESTI, and a "packed counters" mix that only LVP
can touch — and runs each under the relevant techniques.

Usage:  python examples/custom_workload.py
"""

from repro import System, configure_technique, scaled_config
from repro.workloads.synthetic import SyntheticMix, SyntheticWorkload

MIXES = {
    "status-board (TSS-heavy)": SyntheticMix(
        iterations=120,
        private_ops=16,
        behaviors={
            "ts_flags": 1.5,  # busy/idle pulses...
            "read_shared": 1.0,  # ...polled by everyone
            "migratory": 0.3,
        },
    ),
    "packed-counters (false sharing)": SyntheticMix(
        iterations=120,
        private_ops=16,
        behaviors={
            "false_share": 2.0,  # others dirty the index lines...
            "pointer_chase": 1.0,  # ...we chase pointers rooted there
            "read_shared": 0.5,
        },
    ),
}

TECHNIQUES = ("base", "emesti", "lvp", "emesti+lvp")


def main() -> None:
    for name, mix in MIXES.items():
        print(f"{name}:")
        base_cycles = None
        for technique in TECHNIQUES:
            cfg = configure_technique(scaled_config(), technique)
            result = System(cfg, SyntheticWorkload(mix), seed=21).run()
            if base_cycles is None:
                base_cycles = result.cycles
            print(
                f"  {technique:<12s} {result.cycles:>8,} cycles  "
                f"speedup {base_cycles / result.cycles:5.3f}  "
                f"comm {result.miss_class('comm'):>5.0f}  "
                f"validates {result.txn('validate'):>5.0f}  "
                f"lvp-hits {result.node_sum('lvp.correct'):>5.0f}"
            )
        print()
    print("TSS-heavy sharing favors producer-side validates (E-MESTI).")
    print("The packed-counter mix shows the paper's §5.1.2 caution in")
    print("miniature: LVP predicts correctly (lvp-hits > 0) yet gains")
    print("nothing, because the window already overlaps the independent")
    print("walks — value prediction only pays when it exposes ILP/MLP")
    print("the machine could not otherwise reach (see")
    print("examples/value_prediction.py for the serialized case).")


if __name__ == "__main__":
    main()
