#!/usr/bin/env python
"""LVP from tag-match invalid lines on a false-sharing pointer chase.

Each processor owns one word of a shared "index" line and repeatedly
walks: index word -> record -> record (a dependent-address chain).
Writers keep dirtying *other* words of the index line, so every walk
starts with a false-sharing communication miss whose stale value is
still correct — exactly what LVP captures.  With prediction, the
dependent record misses launch a full round-trip earlier.

Usage:  python examples/value_prediction.py
"""

from repro import System, configure_technique, scaled_config
from repro.cpu.program import BlockBuilder, ThreadProgram

INDEX = 0xA000  # one shared line; word t belongs to thread t
RECORDS = 0x100_0000  # per-thread record arrays (exceed the caches)
WALKS = 60


class FalseSharingWalkWorkload:
    name = "false-sharing-walk"
    cracking_ratio = 1.0

    def build_programs(self, config, rng):
        return [
            ThreadProgram(self._thread(tid, rng.split(tid)), name=f"walker[{tid}]")
            for tid in range(config.n_procs)
        ]

    @staticmethod
    def _thread(tid: int, rng):
        b = BlockBuilder()
        my_records = RECORDS + tid * 0x10_0000
        read_word = tid  # our root word: written by nobody
        write_word = 4 + tid  # our counter word: invalidates the others
        tail = None  # serializes walks: a genuine linked traversal
        for walk in range(WALKS):
            # Dirty our counter word of the shared index line every few
            # walks: false sharing against the other threads' root
            # words (kept off the critical path so the walk itself,
            # not our own store drain, dominates).
            if walk % 3 == 0:
                b.store(INDEX + write_word * 8, walk + 1)
            # Pointer chase: index root -> record -> record.  The root
            # word never changes, so the stale value is always right.
            root = b.fresh()
            b.load(
                INDEX + read_word * 8, root,
                sregs=(tail,) if tail is not None else (),
            )
            # The records footprint exceeds the caches, so the
            # dependent loads miss too — a correct root prediction
            # overlaps their round-trips with the root's verification.
            # Chaining walk-to-walk (a linked traversal) means the
            # window cannot expose this parallelism by itself.
            r1 = b.fresh()
            b.load(my_records + ((walk * 97) % 8192) * 0x40, r1, sregs=(root,))
            r2 = b.fresh()
            b.load(my_records + ((walk * 61 + 13) % 8192) * 0x40 + 8, r2, sregs=(r1,))
            tail = b.fresh()
            b.alu(tail, (r2,), latency=2)
            yield b.take()
            for _ in range(8):
                b.alu(latency=1)
            yield b.take()
        b.end()
        yield b.take()


def main() -> None:
    print(f"{'technique':<6} {'cycles':>9} {'speedup':>8} {'predictions':>12} "
          f"{'correct':>8} {'squashes':>9}")
    base_cycles = None
    for technique in ("base", "lvp"):
        cfg = configure_technique(scaled_config(), technique)
        result = System(cfg, FalseSharingWalkWorkload(), seed=5).run()
        if base_cycles is None:
            base_cycles = result.cycles
        n = result.config.n_procs
        total = lambda name: sum(
            result.stats.get(f"node{i}.{name}") for i in range(n)
        )
        print(
            f"{technique:<6} {result.cycles:>9,} "
            f"{base_cycles / result.cycles:>8.3f} "
            f"{total('lvp.predictions'):>12.0f} {total('lvp.correct'):>8.0f} "
            f"{total('lvp.mispredictions'):>9.0f}"
        )
    print()
    print("Correct predictions let the dependent record loads issue before")
    print("the index line's coherent data returns (§3's ILP/MLP exposure).")


if __name__ == "__main__":
    main()
