#!/usr/bin/env python
"""MESTI and E-MESTI on a migratory lock/flag pattern.

A "token" object (a lock word plus a status flag) migrates between
processors: each user acquires it, flips the status busy/idle (a
temporally silent pair), and moves on while the other processors poll
the status.  Under plain MOESI every hand-off and every poll after a
pulse is a communication miss; MESTI's validates re-install the
pollers' copies, and E-MESTI's predictor keeps only the validates that
actually help.

Usage:  python examples/migratory_sharing.py
"""

from repro import System, configure_technique, scaled_config
from repro.cpu.program import BlockBuilder, ThreadProgram

TOKEN_LOCK = 0x9000
STATUS = 0x9100
PASSES = 60


class MigratoryTokenWorkload:
    """Round-robin-ish token users plus status pollers."""

    name = "migratory-token"
    cracking_ratio = 1.0

    def build_programs(self, config, rng):
        return [
            ThreadProgram(self._thread(tid, rng.split(tid)), name=f"user[{tid}]")
            for tid in range(config.n_procs)
        ]

    @staticmethod
    def _thread(tid: int, rng):
        b = BlockBuilder()
        for _ in range(PASSES):
            # Poll the status repeatedly with gaps (these are the
            # misses validates eliminate).
            for _ in range(6):
                b.load(STATUS, b.fresh())
                for _ in range(4):
                    b.alu(latency=2)
                yield b.take()
            # Occasionally take the token and pulse the status.
            if rng.random() < 0.35:
                while True:
                    b.larx(TOKEN_LOCK, pc=0x200)
                    v = yield b.take()
                    if v != 0:
                        b.alu(latency=4)
                        continue
                    b.stcx(TOKEN_LOCK, tid + 1, pc=0x200,
                           meta={"sle_fallback": ("cas",)})
                    ok = yield b.take()
                    if ok:
                        break
                b.store(STATUS, tid + 1)  # busy
                for _ in range(6):
                    b.alu(latency=2)
                b.store(STATUS, 0)  # idle again: temporally silent pair
                b.store(TOKEN_LOCK, 0)  # release: another silent pair
                yield b.take()
            # Think time (keeps pollers and token users in step).
            for _ in range(60):
                b.alu(latency=2)
            yield b.take()
        b.end()
        yield b.take()


def main() -> None:
    rows = []
    for technique in ("base", "mesti", "emesti"):
        cfg = configure_technique(scaled_config(), technique)
        result = System(cfg, MigratoryTokenWorkload(), seed=11).run()
        rows.append((technique, result))

    base_cycles = rows[0][1].cycles
    print(f"{'technique':<8} {'cycles':>9} {'speedup':>8} {'comm':>6} "
          f"{'validates':>10} {'revalidations':>14}")
    for technique, result in rows:
        n = result.config.n_procs
        reval = sum(
            result.stats.get(f"ctrl{i}.revalidations") for i in range(n)
        )
        print(
            f"{technique:<8} {result.cycles:>9,} "
            f"{base_cycles / result.cycles:>8.3f} "
            f"{result.miss_class('comm'):>6.0f} "
            f"{result.txn('validate'):>10.0f} {reval:>14.0f}"
        )
    print()
    print("MESTI turns the pollers' communication misses back into hits;")
    print("E-MESTI reaches the same point with fewer broadcast validates.")


if __name__ == "__main__":
    main()
