#!/usr/bin/env python
"""Speculative Lock Elision on a hand-written contended workload.

Four threads repeatedly take one global lock to update their own
(disjoint) slots — the over-conservative locking idiom SLE was designed
for.  The script runs the same program with and without SLE and prints
the elision statistics: attempts, successes, failure modes, and the
lock traffic that disappeared.

Usage:  python examples/lock_elision.py
"""

from repro import System, scaled_config
from repro.cpu.program import BlockBuilder, ThreadProgram

LOCK = 0x8000
SLOTS = 0x8100  # one line per thread
ROUNDS = 40


class ContendedLockWorkload:
    """Each thread: acquire global lock, update own slot, release."""

    name = "contended-lock"
    cracking_ratio = 1.0

    def build_programs(self, config, rng):
        return [
            ThreadProgram(self._thread(tid), name=f"locker[{tid}]")
            for tid in range(config.n_procs)
        ]

    @staticmethod
    def _thread(tid: int):
        b = BlockBuilder()
        for round_no in range(ROUNDS):
            # Spin-acquire.
            while True:
                b.larx(LOCK, pc=0x100)
                v = yield b.take()
                if v != 0:
                    b.alu(latency=4)
                    continue
                b.stcx(LOCK, tid + 1, pc=0x100, meta={"sle_fallback": ("cas",)})
                ok = yield b.take()
                if ok:
                    break
            # Critical section: our own slot (disjoint across threads).
            slot = SLOTS + tid * 0x40
            b.store(slot, round_no)
            b.store(slot + 8, tid)
            # Release: the temporally silent store.
            b.store(LOCK, 0)
            # Some think-time between lock episodes.
            for _ in range(20):
                b.alu(latency=2)
        b.end()
        yield b.take()


def run(with_sle: bool):
    cfg = scaled_config()
    if with_sle:
        cfg = cfg.with_sle(enabled=True)
    system = System(cfg, ContendedLockWorkload(), seed=7)
    result = system.run()
    return result, system


def main() -> None:
    base_result, _ = run(with_sle=False)
    sle_result, sle_system = run(with_sle=True)
    stats = sle_result.stats

    print(f"baseline: {base_result.cycles:>8,} cycles, "
          f"{base_result.address_transactions:,.0f} bus txns")
    print(f"with SLE: {sle_result.cycles:>8,} cycles, "
          f"{sle_result.address_transactions:,.0f} bus txns")
    print(f"speedup:  {base_result.cycles / sle_result.cycles:.2f}x")
    print()
    n = sle_result.config.n_procs
    total = lambda name: sum(stats.get(f"sle{i}.{name}") for i in range(n))
    print("SLE statistics:")
    print(f"  candidates (larx/stcx idioms): {total('candidates'):.0f}")
    print(f"  elision attempts:              {total('attempts'):.0f}")
    print(f"  successful elisions:           {total('successes'):.0f}")
    for reason in ("no_release", "conflict", "serialize", "nested"):
        count = total(f"failure.{reason}")
        if count:
            print(f"  aborts ({reason}):         {count:.0f}")
    print(f"  fallback acquisitions:         {total('fallback_acquisitions'):.0f}")
    print()
    lock_line_writes = (
        base_result.txn("upgrade") + base_result.txn("readx")
        - sle_result.txn("upgrade") - sle_result.txn("readx")
    )
    print(f"invalidating transactions eliminated: {lock_line_writes:,.0f}")


if __name__ == "__main__":
    main()
