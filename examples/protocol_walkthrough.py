#!/usr/bin/env python
"""Step-by-step walkthrough of the MESTI/E-MESTI state machines.

Drives two coherence controllers directly (no processor cores) through
the canonical temporal-silence episode of the paper's Figure 2/3, and
prints every state the lock line passes through on both nodes.

Usage:  python examples/protocol_walkthrough.py
"""

from repro.common.config import ProtocolKind, ValidatePolicy, scaled_config
from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.coherence.bus import SnoopBus
from repro.coherence.controller import CoherenceController
from repro.memory.hierarchy import NodeMemory
from repro.memory.mainmem import MainMemory

LOCK = 0x4000


class _NullCore:
    def load_completed(self, op, value):
        op.value = value

    def lvp_verified(self, op):
        pass

    def lvp_mispredict(self, op):
        pass


class Walkthrough:
    def __init__(self, enhanced: bool):
        cfg = scaled_config().with_protocol(
            kind=ProtocolKind.MOESTI,
            enhanced=enhanced,
            validate_policy=(
                ValidatePolicy.PREDICTOR if enhanced else ValidatePolicy.ALWAYS
            ),
        )
        self.scheduler = Scheduler()
        stats = StatsRegistry()
        memory = MainMemory(cfg.line_size)
        bus = SnoopBus(self.scheduler, cfg.bus, memory, stats.scoped("bus"))
        self.nodes = []
        for i in range(2):
            ctrl = CoherenceController(i, cfg, bus, memory, stats.scoped(f"c{i}"))
            node = NodeMemory(i, cfg, self.scheduler, ctrl, stats.scoped(f"n{i}"))
            node.core = _NullCore()
            self.nodes.append(node)
        self._seq = 0

    def states(self):
        out = []
        for node in self.nodes:
            line = node.ctrl.lookup(LOCK)
            out.append(line.state.value if line is not None else "-")
        return out

    def step(self, label, action):
        action()
        while self.scheduler.step():
            pass
        p0, p1 = self.states()
        print(f"  {label:<44s} P0={p0:<3s} P1={p1}")

    def load(self, proc):
        op = type("Op", (), {"seq": 0, "value": None, "dead": False})()
        self.nodes[proc].load(LOCK, op, allow_spec=False)

    def store(self, proc, value):
        self.nodes[proc].store(LOCK, value, 0, lambda: None)


def walk(enhanced: bool) -> None:
    name = "Enhanced MESTI (Figure 3)" if enhanced else "MESTI (Figure 2)"
    print(f"{name}:")
    w = Walkthrough(enhanced)
    w.step("P0 reads the lock (cold)", lambda: w.load(0))
    w.step("P1 reads the lock (shares it)", lambda: w.load(1))
    w.step("P0 acquires: store 1 (P1 saves value in T)", lambda: w.store(0, 1))
    w.step("P0 releases: store 0 (temporal silence!)", lambda: w.store(0, 0))
    if enhanced:
        w.step("(predictor trained) repeat: store 1", lambda: w.store(0, 1))
        w.step("repeat: store 0 -> validate", lambda: w.store(0, 0))
        w.step("P1 touches the line (VS demotes to S)", lambda: w.load(1))
    else:
        w.step("P1 re-reads: HIT, no communication miss", lambda: w.load(1))
    print()


def main() -> None:
    walk(enhanced=False)
    walk(enhanced=True)
    print("T = temporally invalid (stale value saved);")
    print("VS = Validate_Shared (withholds the shared response until touched).")


if __name__ == "__main__":
    main()
