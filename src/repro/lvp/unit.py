"""The LVP unit (paper §3).

On a miss whose line is still resident with a matching tag but invalid
state (I with data residue, or MESTI's T), the stale word is delivered
to the core as a value prediction; the core proceeds speculatively but
cannot retire the load until the coherent data arrives and the MSHR
verifies the prediction.  Each MSHR tracks which words were
speculatively delivered and the oldest attached operation; any
mismatch squashes at that oldest op (the paper's deliberately
single-index, slightly pessimistic recovery, §3.2).  Comparing only
the *accessed* words — not the whole line — is what lets LVP capture
false sharing misses.
"""

from __future__ import annotations

from repro.common.config import LVPConfig
from repro.common.stats import ScopedStats
from repro.coherence.states import LineState
from repro.memory.cache import CacheLine
from repro.memory.mshr import MSHREntry
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER


class LVPUnit:
    """Per-node value prediction from tag-match invalid lines."""

    def __init__(
        self,
        config: LVPConfig,
        stats: ScopedStats,
        tracer=NULL_TRACER,
        node_id: int = 0,
        metrics=NULL_METRICS,
    ):
        self.config = config
        self._stats = stats
        self._tracer = tracer
        self._node_id = node_id
        self._m_verified = metrics.bound_counter(
            stats, "lvp.correct",
            "repro_lvp_resolutions_total",
            "LVP speculative deliveries by resolution outcome",
            node=node_id, outcome="verified",
        )
        self._m_squashed = metrics.bound_counter(
            stats, "lvp.mispredictions",
            "repro_lvp_resolutions_total",
            "LVP speculative deliveries by resolution outcome",
            node=node_id, outcome="squashed",
        )

    def candidate(self, line: CacheLine | None, word_index: int) -> int | None:
        """A usable stale value for a missing load, or None."""
        if not self.config.enabled or line is None or not line.has_data:
            return None
        if line.state is LineState.I:
            return line.data[word_index]
        if line.state is LineState.T and self.config.predict_in_t_state:
            return line.data[word_index]
        return None

    def resolve(self, entry: MSHREntry, data: list[int], core) -> None:
        """Verify an MSHR's speculative deliveries against real data.

        On full agreement every consumer is released to commit; on any
        mismatch the machine squashes at the oldest attached op.
        """
        # Consumers squashed by an earlier (unrelated) mispredict are
        # dead: their replays re-execute through the now-filled cache,
        # so only live consumers participate in this resolution.
        live = [
            d for d in entry.spec_deliveries
            if not getattr(d.consumer, "dead", False)
        ]
        if not live:
            return
        mismatched = [d for d in live if data[d.word_index] != d.value]
        if mismatched:
            self._m_squashed.inc(len(live))
            oldest = min(live, key=lambda d: d.consumer.seq)
            self._tracer.emit(
                "lvp.squash", node=self._node_id, base=entry.base,
                deliveries=len(live), mismatched=len(mismatched),
                span=entry.span,
            )
            core.lvp_mispredict(oldest.consumer)
        else:
            self._m_verified.inc(len(live))
            self._tracer.emit(
                "lvp.verify", node=self._node_id, base=entry.base,
                deliveries=len(live), span=entry.span,
            )
            for delivery in live:
                core.lvp_verified(delivery.consumer)
