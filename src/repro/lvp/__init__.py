"""Load value prediction with tag-match invalid cache lines (paper §3)."""

from repro.lvp.unit import LVPUnit

__all__ = ["LVPUnit"]
