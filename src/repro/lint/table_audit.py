"""Static protocol-table audit (simlint rules SL101–SL104).

Imports the real :class:`~repro.coherence.protocol.ProtocolLogic`
tables for MESI / MOESI / MESTI / E-MESTI and, **without running a
simulation**, accounts for every (state, event) row of each protocol
on both interconnect disciplines:

* **SL101** — a probe of a (state, event) pair crashed with something
  other than the deliberate :class:`~repro.common.errors.ProtocolError`:
  a hole in the table masquerading as a transition.
* **SL102** — the deliberately-illegal row set drifted: a row raises
  that the protocol's invariants say must be handled, or a row that
  must be guarded (e.g. M/E snooping an Upgrade) silently passes.
* **SL103** — row accounting: every pair in the cross product must be
  exactly one of reachable, dead-with-reason (per the verify coverage
  classifier from PR 2), or expected-illegal.  A leftover is an
  unexplained missing/dead row.
* **SL104** — MESTI ↔ E-MESTI table asymmetries that are not on the
  :data:`ASYMMETRY_ALLOWLIST` (each entry carries its justification).

The audit shares its row enumeration with the dynamic checker
(:func:`repro.verify.table.expected_rows` and the
``ProtocolLogic.probe_remote`` / ``remote_event_labels`` introspection
hooks), so the static and dynamic views can never drift apart.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.engine import Finding, Rule

#: The four audited protocol variants (ProtocolSpec names).
AUDITED_PROTOCOLS = ("mesi", "moesi", "mesti", "emesti")

#: Both interconnect disciplines (expected_rows' ``directory`` flag).
INTERCONNECTS = (("bus", False), ("directory", True))


def _audit_path(protocol: str, interconnect: str) -> str:
    return f"protocol:{protocol}/{interconnect}"


def _make_logic(name: str):
    from repro.verify.model import ProtocolSpec

    return ProtocolSpec(name).make_logic()


def expected_illegal_rows(logic) -> set[tuple[str, str]]:
    """The (pre, event) remote rows that must raise ProtocolError.

    Derived from the invariants, not from the implementation:

    * M/E snooping an Upgrade — the upgrader claims it holds a shared
      copy, which an exclusive holder contradicts (SWMR);
    * a valid non-T, non-S/VS copy snooping a Validate — the
      validating owner must have held the only valid copy.
    """
    illegal: set[tuple[str, str]] = set()
    for pre in ("M", "E"):
        illegal.add((pre, "Upgrade"))
        illegal.add((pre, "Validate"))
    if logic.has_owned:
        illegal.add(("O", "Validate"))
    return illegal


def audit_protocol(name: str, directory: bool) -> dict:
    """Audit one protocol × interconnect; returns the accounting dict.

    Keys: ``rows_reachable`` / ``dead_rows`` (with the classifier's
    reasons) / ``illegal_rows``, plus the problem lists ``crashed``,
    ``illegal_unexpected``, ``illegal_missing``, ``unaccounted``.
    """
    from repro.verify.table import expected_rows

    logic = _make_logic(name)

    crashed: list[dict] = []
    illegal_rows: list[list[str]] = []
    for pre in logic.states():
        for label in logic.remote_event_labels():
            try:
                outcome = logic.probe_remote(pre, label)
            except Exception as exc:  # any crash is the finding
                crashed.append({
                    "row": ["remote", pre.value, label],
                    "error": f"{type(exc).__name__}: {exc}",
                })
                continue
            if outcome == "illegal":
                illegal_rows.append(["remote", pre.value, label])

    # A crashing row would also crash the row enumeration below; the
    # crash findings already tell the whole story, so stop here.
    rows = {} if crashed else expected_rows(logic, directory=directory)

    expected_illegal = expected_illegal_rows(logic)
    actual_illegal = {(pre, label) for _, pre, label in illegal_rows}
    illegal_unexpected = sorted(actual_illegal - expected_illegal)
    illegal_missing = sorted(expected_illegal - actual_illegal)

    reachable = [list(k) for k, v in sorted(rows.items()) if not v["unreachable"]]
    dead = [
        {"row": list(k), "why": v["unreachable"]}
        for k, v in sorted(rows.items())
        if v["unreachable"]
    ]

    # Accounting: every probed remote pair must be legal (reachable or
    # dead-with-reason via expected_rows) or expected-illegal.
    legal_remote = {k for k in rows if k[0] == "remote"}
    unaccounted = []
    if not crashed:
        for pre in logic.states():
            for label in logic.remote_event_labels():
                key = ("remote", pre.value, label)
                if key in legal_remote:
                    continue
                if (pre.value, label) in expected_illegal:
                    continue
                if (pre.value, label) in actual_illegal:
                    continue  # already reported as illegal_unexpected
                unaccounted.append(list(key))

    return {
        "protocol": logic.name,
        "interconnect": "directory" if directory else "bus",
        "rows_total": len(rows),
        "rows_reachable": len(reachable),
        "dead_rows": dead,
        "illegal_rows": sorted(illegal_rows),
        "crashed": crashed,
        "illegal_unexpected": illegal_unexpected,
        "illegal_missing": illegal_missing,
        "unaccounted": unaccounted,
    }


def audit_all() -> list[dict]:
    """Run :func:`audit_protocol` for every protocol × interconnect."""
    return [
        audit_protocol(name, directory)
        for name in AUDITED_PROTOCOLS
        for _, directory in INTERCONNECTS
    ]


# ---------------------------------------------------------------------------
# MESTI <-> E-MESTI asymmetry allowlist
# ---------------------------------------------------------------------------

#: (predicate-name, justification) pairs; a diffed row is allowed when
#: any predicate matches it.  Predicates see (side, pre, event, posts)
#: where posts is the pair (mesti_post, emesti_post) with None for a
#: row absent from that variant.
ASYMMETRY_ALLOWLIST: tuple[tuple[str, str], ...] = (
    (
        "vs-state",
        "Validate_Shared (VS) exists only in E-MESTI: rows entering, "
        "leaving, or snooped in VS have no MESTI counterpart (Figure 3).",
    ),
    (
        "owned-state",
        "E-MESTI is built on MOESTI, so O-state rows (dirty-shared "
        "retirement, O-side snoops, Upgrade-from-O) have no plain-MESTI "
        "counterpart.",
    ),
    (
        "validate-retires-dirty",
        "The validating owner retires to O in E-MESTI (dirty data stays "
        "on-chip) but to S in MESTI, whose validate implies a writeback "
        "(§2.2).",
    ),
    (
        "flush-keeps-ownership",
        "A dirty flush demotes M to O in E-MESTI but to S in MESTI "
        "(no O state to retire into).",
    ),
)


def _asymmetry_allowed(side: str, pre: str, event: str, posts: tuple) -> str | None:
    """The allowlist justification covering this diff row, or None."""
    mesti_post, emesti_post = posts
    if pre == "VS" or "VS" in (mesti_post, emesti_post) or event == "PrRd.hit":
        return ASYMMETRY_ALLOWLIST[0][1]
    if pre == "O" or "O" in (mesti_post, emesti_post):
        return ASYMMETRY_ALLOWLIST[1][1]
    if event == "PrWr.Validate":
        return ASYMMETRY_ALLOWLIST[2][1]
    if event in ("Read+flush", "ReadX+flush") and pre == "M":
        return ASYMMETRY_ALLOWLIST[3][1]
    return None


def diff_mesti_emesti(directory: bool = False) -> dict:
    """Diff the MESTI and E-MESTI tables row by row.

    Returns ``{"allowed": [...], "violations": [...]}`` where each
    entry carries the row, both post states (None = row absent from
    that variant), and — for allowed rows — the justification.
    """
    from repro.verify.table import expected_rows

    mesti = expected_rows(_make_logic("mesti"), directory=directory)
    emesti = expected_rows(_make_logic("emesti"), directory=directory)
    allowed, violations = [], []
    for key in sorted(set(mesti) | set(emesti)):
        m = mesti.get(key)
        e = emesti.get(key)
        posts = (m["post"] if m else None, e["post"] if e else None)
        if posts[0] == posts[1]:
            continue
        side, pre, event = key
        why = _asymmetry_allowed(side, pre, event, posts)
        entry = {
            "row": list(key),
            "mesti_post": posts[0],
            "emesti_post": posts[1],
        }
        if why is not None:
            allowed.append({**entry, "why": why})
        else:
            violations.append(entry)
    return {"allowed": allowed, "violations": violations}


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


class _AuditRule(Rule):
    """Base for audit rules: runs :func:`audit_all` once, lazily."""

    _cache: dict | None = None

    def _audits(self) -> list[dict]:
        cache = _AuditRule._cache
        if cache is None:
            cache = _AuditRule._cache = {"audits": audit_all()}
        return cache["audits"]

    @classmethod
    def reset_cache(cls) -> None:
        """Drop the shared audit cache (tests that patch tables use this)."""
        _AuditRule._cache = None


class MissingRowRule(_AuditRule):
    """SL101: a table probe crashed — a hole, not a transition."""

    id = "SL101"
    title = "protocol table row crashes"
    rationale = (
        "Every (state, event) pair must either transition or raise the "
        "deliberate ProtocolError; any other exception is an unhandled "
        "table hole that a simulation would hit as a crash."
    )

    def check_tree(self) -> Iterator[Finding]:
        """Report rows whose probe raised a non-ProtocolError."""
        for audit in self._audits():
            path = _audit_path(audit["protocol"], audit["interconnect"])
            for item in audit["crashed"]:
                row = "/".join(item["row"])
                yield Finding(
                    rule=self.id, path=path, line=0,
                    message=f"row {row} crashed: {item['error']}",
                    snippet=row,
                )


class IllegalRowDriftRule(_AuditRule):
    """SL102: the deliberately-illegal row set drifted."""

    id = "SL102"
    title = "illegal-row set drift"
    rationale = (
        "The rows that raise ProtocolError are an invariant statement "
        "(M/E cannot snoop an Upgrade; only T/S/VS may snoop a "
        "Validate).  A new raising row is a disguised table hole; a "
        "silently-passing guarded row is a dropped assertion."
    )

    def check_tree(self) -> Iterator[Finding]:
        """Report rows raising unexpectedly or missing a required guard."""
        for audit in self._audits():
            path = _audit_path(audit["protocol"], audit["interconnect"])
            for pre, event in audit["illegal_unexpected"]:
                yield Finding(
                    rule=self.id, path=path, line=0,
                    message=(
                        f"row remote/{pre}/{event} raises ProtocolError but "
                        f"is not on the expected-illegal list: handle it or "
                        f"extend expected_illegal_rows with a justification"
                    ),
                    snippet=f"remote/{pre}/{event}:unexpected",
                )
            for pre, event in audit["illegal_missing"]:
                yield Finding(
                    rule=self.id, path=path, line=0,
                    message=(
                        f"row remote/{pre}/{event} must raise ProtocolError "
                        f"(invariant guard) but probes legal"
                    ),
                    snippet=f"remote/{pre}/{event}:missing-guard",
                )


class RowAccountingRule(_AuditRule):
    """SL103: unexplained missing/dead rows in the accounting."""

    id = "SL103"
    title = "unexplained missing/dead table row"
    rationale = (
        "Every (state, event) pair must be reachable, dead with a "
        "documented invariant reason (the verify coverage classifier), "
        "or expected-illegal.  Anything left over is a row nobody can "
        "explain — exactly where protocol bugs hide."
    )

    def check_tree(self) -> Iterator[Finding]:
        """Report rows that fall through the three-way classification."""
        for audit in self._audits():
            path = _audit_path(audit["protocol"], audit["interconnect"])
            for row in audit["unaccounted"]:
                joined = "/".join(row)
                yield Finding(
                    rule=self.id, path=path, line=0,
                    message=f"row {joined} is neither reachable, "
                            f"dead-with-reason, nor expected-illegal",
                    snippet=joined,
                )


class AsymmetryRule(_AuditRule):
    """SL104: MESTI ↔ E-MESTI asymmetry not on the allowlist."""

    id = "SL104"
    title = "unallowlisted MESTI/E-MESTI asymmetry"
    rationale = (
        "E-MESTI must be MESTI plus the enhancements (O retirement, "
        "Validate_Shared, the useful snoop response).  Any other table "
        "divergence is a transcription bug that would silently skew the "
        "MESTI-vs-E-MESTI comparisons in Figures 6-8."
    )

    def check_tree(self) -> Iterator[Finding]:
        """Report table diffs no allowlist entry justifies."""
        for interconnect, directory in INTERCONNECTS:
            diff = diff_mesti_emesti(directory=directory)
            path = f"protocol:mesti~emesti/{interconnect}"
            for item in diff["violations"]:
                row = "/".join(item["row"])
                yield Finding(
                    rule=self.id, path=path, line=0,
                    message=(
                        f"row {row} differs (MESTI={item['mesti_post']}, "
                        f"E-MESTI={item['emesti_post']}) and no allowlist "
                        f"entry covers it"
                    ),
                    snippet=row,
                )


#: Table-audit rule classes, in id order.
AUDIT_RULES = (MissingRowRule, IllegalRowDriftRule, RowAccountingRule, AsymmetryRule)
