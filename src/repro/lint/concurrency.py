"""simlint concurrency rules SL201–SL203 (whole-program).

These are the rules the service era needs: they consume the
:mod:`~repro.lint.callgraph` symbol table instead of a single module,
so a sync helper three calls away from a coroutine is judged in the
coroutine's context.  All three run through :meth:`Rule.check_project`
once per lint invocation.

* **SL201** — blocking calls (``time.sleep``, ``http.client``,
  synchronous file I/O, ``Executor.submit(...).result()``) reachable
  from any ``async def`` defined under ``service/``.  The finding
  lands on the blocking *call site* (which may be outside service/)
  and names the coroutine plus the call chain that reaches it.
* **SL202** — lock-discipline inference: any attribute a class writes
  under ``with self._lock:`` is *guarded*; every other access to it —
  in the class outside a lock region, or from another class through a
  typed attribute — is a finding unless the line carries a
  ``# sl: guarded-by(<lock>)`` annotation.
* **SL203** — fork-safety: objects whose classes hold locks, sockets,
  or Tracer/EventLog sinks must not be captured into
  ``ProcessPoolExecutor.submit(...)`` arguments or pool
  ``initializer=`` callables (they either fail to pickle or, worse,
  pickle into a child that inherits a meaningless lock state).
"""

from __future__ import annotations

import ast
import re
from collections import deque
from typing import Iterator

from repro.lint.callgraph import (
    ClassInfo,
    FunctionInfo,
    Project,
    walk_executed,
)
from repro.lint.engine import Finding, LintContext, ModuleSource, Rule
from repro.lint.rules import (
    _finding,
    ancestors,
    attach_parents,
    dotted_name,
)

#: Modules whose ``async def``s are SL201 entry points.
SERVICE_SCOPE = "service/"

#: Dotted origins that block the calling thread (and thus the event
#: loop when reached from a coroutine without an executor hop).
BLOCKING_ORIGINS = {
    "time.sleep": "sleeps the thread for its full duration",
    "urllib.request.urlopen": "synchronous HTTP request",
    "socket.create_connection": "synchronous TCP connect",
    "subprocess.run": "waits for a subprocess",
    "subprocess.call": "waits for a subprocess",
    "subprocess.check_call": "waits for a subprocess",
    "subprocess.check_output": "waits for a subprocess",
}

#: Method names that mean synchronous file I/O on their receiver
#: (``Path.write_text`` and friends) when the receiver's type is
#: unknown — recorded by the call graph as anonymous ``".name"`` calls.
BLOCKING_IO_METHODS = frozenset({
    ".write_text", ".read_text", ".write_bytes", ".read_bytes",
})

#: ``# sl: guarded-by(<lock>)`` — the SL202 escape hatch asserting a
#: lock-free access is in fact protected (e.g. by construction order).
GUARD_COMMENT = re.compile(r"#\s*sl:\s*guarded-by\(([^)]*)\)")

#: Receiver-method calls that mutate the receiver in place (SL202
#: counts ``self.jobs.pop(...)`` under a lock as a guarded write).
MUTATING_METHODS = frozenset({
    "append", "appendleft", "add", "update", "extend", "insert",
    "pop", "popleft", "popitem", "remove", "discard", "clear",
    "setdefault", "sort",
})


def _module_map(ctx: LintContext) -> dict[str, ModuleSource]:
    return {m.rel: m for m in ctx.modules}


def _has_guard_comment(module: ModuleSource, line: int) -> bool:
    if 1 <= line <= len(module.lines):
        return GUARD_COMMENT.search(module.lines[line - 1]) is not None
    return False


class AsyncBlockingRule(Rule):
    """SL201: blocking call reachable from a service coroutine."""

    id = "SL201"
    title = "blocking call reachable from async def in service/"
    rationale = (
        "A coroutine that blocks — time.sleep, http.client, synchronous "
        "file I/O, Future.result() — stalls the whole event loop: every "
        "other request, heartbeat, and stream on the server freezes for "
        "the duration.  Offload with loop.run_in_executor (the callable "
        "is passed, not called, so the call graph sees the hop)."
    )

    def check_project(self, ctx: LintContext) -> Iterator[Finding]:
        """BFS the call graph from every service coroutine."""
        project: Project = ctx.project()
        modules = _module_map(ctx)
        parent: dict[FunctionInfo, FunctionInfo | None] = {}
        visited: dict[FunctionInfo, FunctionInfo] = {}
        order: list[FunctionInfo] = []
        for entry in project.functions:
            if not (entry.is_async and entry.rel.startswith(SERVICE_SCOPE)):
                continue
            if self.is_exempt(entry.rel) or entry in visited:
                continue
            visited[entry] = entry
            parent[entry] = None
            queue = deque([entry])
            while queue:
                fn = queue.popleft()
                order.append(fn)
                for edge in fn.calls:
                    target = edge.target
                    if target is None or target in visited:
                        continue
                    visited[target] = entry
                    parent[target] = fn
                    queue.append(target)
        seen: set[tuple[str, int, int]] = set()
        for fn in order:
            module = modules.get(fn.rel)
            if module is None or self.is_exempt(fn.rel):
                continue
            for node, reason in self._blocking_calls(fn):
                key = (fn.rel, node.lineno, node.col_offset)
                if key in seen:
                    continue
                seen.add(key)
                chain = self._chain(fn, parent)
                entry = visited[fn]
                via = f" via {chain}" if " -> " in chain else ""
                yield _finding(
                    self, module, node,
                    f"blocking call ({reason}) reachable from async def "
                    f"{entry.label}{via}; move it off the event loop "
                    f"with loop.run_in_executor",
                )

    def _blocking_calls(
        self, fn: FunctionInfo
    ) -> Iterator[tuple[ast.Call, str]]:
        for edge in fn.calls:
            external = edge.external
            if external is None:
                continue
            if external in BLOCKING_ORIGINS:
                yield edge.node, BLOCKING_ORIGINS[external]
            elif external.startswith("http.client."):
                yield edge.node, "synchronous HTTP request"
            elif external == "open" or external in BLOCKING_IO_METHODS:
                yield edge.node, "synchronous file I/O"
        # Executor.submit(...).result(): the await-free way to wedge
        # a loop behind its own pool.
        for node in walk_executed(fn.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "result"
                and isinstance(node.func.value, ast.Call)
                and isinstance(node.func.value.func, ast.Attribute)
                and node.func.value.func.attr == "submit"
            ):
                yield node, "synchronous wait on an executor future"

    @staticmethod
    def _chain(fn: FunctionInfo, parent: dict) -> str:
        parts: list[str] = []
        cur: FunctionInfo | None = fn
        while cur is not None:
            parts.append(cur.label)
            cur = parent.get(cur)
        parts.reverse()
        if len(parts) > 5:
            parts = parts[:2] + ["..."] + parts[-2:]
        return " -> ".join(parts)


class LockDisciplineRule(Rule):
    """SL202: guarded attribute accessed without its lock."""

    id = "SL202"
    title = "lock-guarded attribute accessed lock-free"
    rationale = (
        "If any method writes an attribute under `with self._lock:`, "
        "that attribute's invariants are lock-protected — reading or "
        "writing it without the lock (from the class or through a "
        "typed attribute in another class) races the guarded writers. "
        "Wrap the access, route it through a locked accessor, or "
        "annotate the line `# sl: guarded-by(<lock>)` when protection "
        "is structural."
    )

    def check_project(self, ctx: LintContext) -> Iterator[Finding]:
        """Infer guarded attribute sets, then audit every access."""
        project: Project = ctx.project()
        modules = _module_map(ctx)
        for module in ctx.modules:
            attach_parents(module.tree)
        guarded: dict[ClassInfo, set[str]] = {}
        locked_classes: list[ClassInfo] = []
        for infos in project.classes.values():
            for cls in infos:
                if not cls.lock_attrs:
                    continue
                attrs = self._guarded_attrs(cls)
                if attrs:
                    locked_classes.append(cls)
                    guarded[cls] = attrs
        if not locked_classes:
            return
        held = {cls: self._held_methods(project, cls)
                for cls in locked_classes}
        # In-class audit.
        for cls in locked_classes:
            module = modules.get(cls.rel)
            if module is None or self.is_exempt(cls.rel):
                continue
            yield from self._audit_class(
                cls, guarded[cls], held[cls], module,
            )
        # Cross-class audit: accesses through typed attributes/locals.
        attr_owners: dict[str, list[ClassInfo]] = {}
        for cls in locked_classes:
            for attr in guarded[cls]:
                attr_owners.setdefault(attr, []).append(cls)
        for fn in project.functions:
            module = modules.get(fn.rel)
            if module is None or self.is_exempt(fn.rel):
                continue
            yield from self._audit_foreign(
                project, fn, attr_owners, guarded, module,
            )

    # -- guarded-set inference -----------------------------------------

    def _guarded_attrs(self, cls: ClassInfo) -> set[str]:
        """Attributes written under any ``with self.<lock>:`` region."""
        attrs: set[str] = set()
        for method in cls.methods.values():
            for region in self._lock_regions(method.node, cls):
                for node in ast.walk(region):
                    name = self._self_attr_written(node)
                    if name is not None and name not in cls.lock_attrs:
                        attrs.add(name)
        return attrs

    @staticmethod
    def _lock_regions(fn_node: ast.AST, cls: ClassInfo) -> Iterator[ast.AST]:
        for node in ast.walk(fn_node):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                    and expr.attr in cls.lock_attrs
                ):
                    yield node
                    break

    @staticmethod
    def _self_attr_written(node: ast.AST) -> str | None:
        """The ``self.X`` attribute this node writes/mutates, if any."""
        if not (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return None
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            return node.attr
        parent = getattr(node, "_simlint_parent", None)
        # self.X[...] = ... / del self.X[...]
        if isinstance(parent, ast.Subscript) and isinstance(
            parent.ctx, (ast.Store, ast.Del)
        ):
            return node.attr
        # self.X.append(...)-style in-place mutation.
        if (
            isinstance(parent, ast.Attribute)
            and parent.attr in MUTATING_METHODS
        ):
            grand = getattr(parent, "_simlint_parent", None)
            if isinstance(grand, ast.Call) and grand.func is parent:
                return node.attr
        return None

    # -- held-method inference -----------------------------------------

    def _held_methods(
        self, project: Project, cls: ClassInfo
    ) -> set[FunctionInfo]:
        """Methods only ever called with the class lock already held.

        Greatest fixpoint: assume every method with at least one call
        site is held, then evict any with a call site that is neither
        inside a lock region, nor in ``__init__``, nor in a held
        method of the same class.  Zero-call-site methods are public
        API and never held.
        """
        sites: dict[FunctionInfo, list[tuple[FunctionInfo, ast.Call]]] = {}
        methods = set(cls.methods.values())
        for fn in project.functions:
            for edge in fn.calls:
                if edge.target is not None and edge.target in methods:
                    sites.setdefault(edge.target, []).append(
                        (fn, edge.node)
                    )
        held = set(sites)
        held.discard(cls.methods.get("__init__"))
        changed = True
        while changed:
            changed = False
            for method in list(held):
                for caller, call in sites[method]:
                    if self._site_guarded(caller, call, cls, held):
                        continue
                    held.discard(method)
                    changed = True
                    break
        return held

    def _site_guarded(
        self,
        caller: FunctionInfo,
        call: ast.Call,
        cls: ClassInfo,
        held: set[FunctionInfo],
    ) -> bool:
        if caller.cls != cls.name or caller.rel != cls.rel:
            return False
        if caller.name == "__init__":
            return True
        caller_method = cls.methods.get(caller.name)
        if caller_method is caller and caller_method in held:
            return True
        return self._under_lock(call, cls)

    # -- audits ---------------------------------------------------------

    def _audit_class(
        self,
        cls: ClassInfo,
        attrs: set[str],
        held: set[FunctionInfo],
        module: ModuleSource,
    ) -> Iterator[Finding]:
        for name, method in cls.methods.items():
            if name == "__init__":
                continue
            if method in held:
                continue
            for node in walk_executed(method.node):
                if not (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in attrs
                ):
                    continue
                if self._under_lock(node, cls):
                    continue
                if _has_guard_comment(module, node.lineno):
                    continue
                yield _finding(
                    self, module, node,
                    f"{cls.name}.{node.attr} is written under "
                    f"`with self.{sorted(cls.lock_attrs)[0]}:` elsewhere "
                    f"but accessed lock-free in {cls.name}.{name}; hold "
                    f"the lock here or annotate `# sl: guarded-by(...)`",
                )

    @staticmethod
    def _under_lock(node: ast.AST, cls: ClassInfo) -> bool:
        for anc in ancestors(node):
            if isinstance(anc, (ast.With, ast.AsyncWith)):
                for item in anc.items:
                    expr = item.context_expr
                    if (
                        isinstance(expr, ast.Attribute)
                        and isinstance(expr.value, ast.Name)
                        and expr.value.id == "self"
                        and expr.attr in cls.lock_attrs
                    ):
                        return True
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
        return False

    def _audit_foreign(
        self,
        project: Project,
        fn: FunctionInfo,
        attr_owners: dict[str, list[ClassInfo]],
        guarded: dict[ClassInfo, set[str]],
        module: ModuleSource,
    ) -> Iterator[Finding]:
        env = project.local_env(fn)
        for node in walk_executed(fn.node):
            if not isinstance(node, ast.Attribute):
                continue
            owners = attr_owners.get(node.attr)
            if not owners:
                continue
            # Same-class self accesses were audited above.
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                continue
            owner = project.expr_class(node.value, fn, env)
            if owner is None:
                continue
            if not any(o is owner for o in owners):
                continue
            if node.attr not in guarded.get(owner, set()):
                continue
            if self._foreign_under_lock(node, owner):
                continue
            if _has_guard_comment(module, node.lineno):
                continue
            yield _finding(
                self, module, node,
                f"{owner.name}.{node.attr} is lock-guarded inside "
                f"{owner.name} but accessed lock-free from "
                f"{fn.label}; use a locked accessor on {owner.name} "
                f"or annotate `# sl: guarded-by(...)`",
            )

    @staticmethod
    def _foreign_under_lock(node: ast.Attribute, owner: ClassInfo) -> bool:
        """``with self.queue._lock:`` around a ``self.queue.jobs`` use."""
        base = dotted_name(node.value)
        if base is None:
            return False
        want = {f"{base}.{lock}" for lock in owner.lock_attrs}
        for anc in ancestors(node):
            if isinstance(anc, (ast.With, ast.AsyncWith)):
                for item in anc.items:
                    if dotted_name(item.context_expr) in want:
                        return True
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
        return False


class ForkSafetyRule(Rule):
    """SL203: fork-unsafe object captured into a process pool."""

    id = "SL203"
    title = "lock/socket/sink holder captured into a process pool"
    rationale = (
        "ProcessPoolExecutor pickles submitted callables and arguments "
        "into forked children: an object holding a threading lock, an "
        "open socket, or a Tracer/EventLog sink either fails to pickle "
        "or arrives as a detached copy whose lock state and fds mean "
        "nothing — pass plain data (configs, coordinates) instead."
    )

    def check_project(self, ctx: LintContext) -> Iterator[Finding]:
        """Audit submit()/initializer= sites on process pools."""
        project: Project = ctx.project()
        modules = _module_map(ctx)
        unsafe_cache: dict[ClassInfo, str | None] = {}
        for fn in project.functions:
            module = modules.get(fn.rel)
            if module is None or self.is_exempt(fn.rel):
                continue
            env = project.local_env(fn)
            pools = self._pool_locals(project, fn)
            for node in walk_executed(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                if self._is_pool_submit(project, fn, node, pools, env):
                    for arg in [*node.args, *[k.value for k in node.keywords]]:
                        reason = self._capture_reason(
                            project, fn, env, arg, unsafe_cache,
                        )
                        if reason:
                            yield _finding(
                                self, module, arg,
                                f"process-pool submit() captures {reason}; "
                                f"pass plain picklable data instead",
                            )
                if self._is_pool_factory(project, fn, node, env):
                    for kw in node.keywords:
                        if kw.arg != "initializer":
                            continue
                        reason = self._capture_reason(
                            project, fn, env, kw.value, unsafe_cache,
                        )
                        if reason:
                            yield _finding(
                                self, module, kw.value,
                                f"process-pool initializer captures "
                                f"{reason}; use a module-level function "
                                f"over plain data",
                            )

    # -- pool typing -----------------------------------------------------

    def _pool_locals(self, project: Project, fn: FunctionInfo) -> set[str]:
        """Local names bound to a process pool in this function."""
        pools: set[str] = set()
        aliases = project.aliases_for(fn.rel)
        from repro.lint.rules import resolve_origin

        for node in walk_executed(fn.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            value = node.value
            if isinstance(value, ast.Call) and self._is_pool_factory(
                project, fn, value, project.local_env(fn)
            ):
                pools.add(node.targets[0].id)
            elif isinstance(value, ast.Call):
                origin = None
                if isinstance(value.func, (ast.Name, ast.Attribute)):
                    origin = resolve_origin(value.func, aliases) or (
                        aliases.get(value.func.id)
                        if isinstance(value.func, ast.Name) else None
                    )
                if origin and "ProcessPoolExecutor" in origin:
                    pools.add(node.targets[0].id)
        return pools

    def _is_pool_factory(
        self,
        project: Project,
        fn: FunctionInfo,
        call: ast.Call,
        env: dict,
    ) -> bool:
        """ProcessPoolExecutor(...) or warm_pool(...) construction."""
        from repro.lint.rules import resolve_origin

        aliases = project.aliases_for(fn.rel)
        func = call.func
        if isinstance(func, ast.Name):
            origin = aliases.get(func.id)
            if origin and "ProcessPoolExecutor" in origin:
                return True
            if func.id == "warm_pool" or (
                origin and origin.endswith(".warm_pool")
            ):
                return True
        if isinstance(func, ast.Attribute):
            origin = resolve_origin(func, aliases)
            if origin and "ProcessPoolExecutor" in origin:
                return True
            if func.attr == "warm_pool":
                return True
        return False

    def _is_pool_submit(
        self,
        project: Project,
        fn: FunctionInfo,
        call: ast.Call,
        pools: set[str],
        env: dict,
    ) -> bool:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr == "submit"):
            return False
        recv = func.value
        if isinstance(recv, ast.Name) and recv.id in pools:
            return True
        if isinstance(recv, ast.Call) and self._is_pool_factory(
            project, fn, recv, env
        ):
            return True
        # self.<attr> with a ProcessPoolExecutor origin.
        if (
            isinstance(recv, ast.Attribute)
            and isinstance(recv.value, ast.Name)
            and recv.value.id == "self"
            and fn.cls is not None
        ):
            cls = project.class_named(fn.cls, fn.rel)
            if cls is not None:
                origin = cls.attr_origins.get(recv.attr, "")
                if "ProcessPoolExecutor" in origin:
                    return True
        return False

    # -- fork-unsafety ---------------------------------------------------

    def _capture_reason(
        self,
        project: Project,
        fn: FunctionInfo,
        env: dict,
        expr: ast.expr,
        cache: dict[ClassInfo, str | None],
    ) -> str | None:
        """Why this argument is fork-unsafe, or None."""
        # A bound method drags its whole instance through pickle.
        if isinstance(expr, ast.Attribute):
            owner = project.expr_class(expr.value, fn, env)
            if owner is not None:
                reason = self._class_unsafe(project, owner, cache)
                if reason:
                    return (
                        f"bound method {owner.name}.{expr.attr} of an "
                        f"instance that {reason}"
                    )
        if isinstance(expr, ast.Lambda):
            for node in ast.walk(expr.body):
                if isinstance(node, ast.Name) and node.id == "self" and \
                        fn.cls is not None:
                    cls = project.class_named(fn.cls, fn.rel)
                    if cls is not None:
                        reason = self._class_unsafe(project, cls, cache)
                        if reason:
                            return (
                                f"a closure over self ({cls.name} "
                                f"{reason})"
                            )
        target = project.expr_class(expr, fn, env)
        if target is not None:
            reason = self._class_unsafe(project, target, cache)
            if reason:
                return f"a {target.name} instance that {reason}"
        return None

    def _class_unsafe(
        self,
        project: Project,
        cls: ClassInfo,
        cache: dict[ClassInfo, str | None],
        depth: int = 0,
    ) -> str | None:
        if cls in cache:
            return cache[cls]
        cache[cls] = None  # cycle guard
        reason: str | None = None
        if cls.lock_attrs:
            reason = f"holds lock(s) {', '.join(sorted(cls.lock_attrs))}"
        if reason is None:
            for attr, origin in sorted(cls.attr_origins.items()):
                if origin.startswith("socket."):
                    reason = f"holds socket {attr}"
                    break
                if origin.startswith(("repro.obs.tracer", "threading.")):
                    reason = f"holds {origin.rsplit('.', 1)[-1]} via {attr}"
                    break
        if reason is None and depth < 3:
            for attr, tname in sorted(cls.attr_types.items()):
                if tname in ("Tracer", "EventLog"):
                    reason = f"holds {tname} sink {attr}"
                    break
                sub = project.class_named(tname, cls.rel)
                if sub is not None and sub is not cls:
                    inner = self._class_unsafe(project, sub, cache, depth + 1)
                    if inner:
                        reason = f"holds a {tname} ({inner}) via {attr}"
                        break
        cache[cls] = reason
        return reason


#: Concurrency rule classes in id order (the engine instantiates these).
CONCURRENCY_RULES = (
    AsyncBlockingRule,
    LockDisciplineRule,
    ForkSafetyRule,
)
