"""Baseline suppression file for simlint.

A baseline records *intentional* findings — each with a one-line human
justification — so ``repro-sim lint`` can gate on **new** findings
only.  Entries key on the finding's :attr:`~repro.lint.engine.Finding.
fingerprint` (rule + path + source-line text, no line numbers), so
suppressions survive edits elsewhere in the file but die with the code
they covered — a stale entry surfaces as ``unused_baseline`` in the
report.

File format (JSON, committed at ``src/repro/lint/baseline.json``)::

    {
      "version": 1,
      "entries": {
        "<fingerprint>": {
          "rule": "SL002",
          "path": "analysis/foo.py",
          "snippet": "for x in bases:",
          "justification": "error-path formatting only; order is cosmetic"
        }
      }
    }
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.common.errors import ConfigError
from repro.lint.engine import Finding

#: The justification written by ``--update-baseline`` when none was
#: given.  :meth:`Baseline.load` refuses entries still carrying it, so
#: an un-filled-in baseline cannot silently pass a gate.
PLACEHOLDER_JUSTIFICATION = "TODO: justify"

#: A justification shorter than this is a grunt, not an explanation
#: ("ok", "fine", "wip" all fit in 9 characters); :meth:`Baseline.load`
#: rejects it just like the placeholder.
MIN_JUSTIFICATION_CHARS = 10


class Baseline:
    """A set of justified suppressions, loaded from / saved to JSON."""

    def __init__(self, entries: dict[str, dict] | None = None):
        self.entries: dict[str, dict] = dict(entries or {})

    @classmethod
    def default_path(cls) -> Path:
        """The committed baseline shipped inside the package."""
        return Path(__file__).with_name("baseline.json")

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        """Read and validate a baseline file.

        Raises :class:`~repro.common.errors.ConfigError` on a missing
        file, bad JSON, an unknown version, or an entry whose
        justification is absent, whitespace, the placeholder, or
        shorter than :data:`MIN_JUSTIFICATION_CHARS` — a baseline that
        cannot explain itself is worse than none.
        """
        path = Path(path)
        try:
            doc = json.loads(path.read_text())
        except FileNotFoundError:
            raise ConfigError(f"baseline file not found: {path}") from None
        except json.JSONDecodeError as exc:
            raise ConfigError(f"baseline {path} is not valid JSON: {exc}") from None
        if not isinstance(doc, dict) or doc.get("version") != 1:
            raise ConfigError(f"baseline {path}: expected a version-1 document")
        entries = doc.get("entries", {})
        for fp, entry in entries.items():
            justification = str(entry.get("justification", "")).strip()
            if not justification:
                raise ConfigError(
                    f"baseline {path}: entry {fp} ({entry.get('rule')}, "
                    f"{entry.get('path')}) has no justification"
                )
            if justification == PLACEHOLDER_JUSTIFICATION:
                raise ConfigError(
                    f"baseline {path}: entry {fp} ({entry.get('rule')}, "
                    f"{entry.get('path')}) still has the "
                    f"{PLACEHOLDER_JUSTIFICATION!r} placeholder; write a "
                    f"real justification (or re-run --update-baseline "
                    f"with --justification)"
                )
            if len(justification) < MIN_JUSTIFICATION_CHARS:
                raise ConfigError(
                    f"baseline {path}: entry {fp} ({entry.get('rule')}, "
                    f"{entry.get('path')}) justification "
                    f"{justification!r} is too short (need at least "
                    f"{MIN_JUSTIFICATION_CHARS} characters explaining "
                    f"why the finding is intentional)"
                )
        return cls(entries)

    def save(self, path: Path | str) -> None:
        """Write the baseline (sorted, one entry per fingerprint)."""
        doc = {
            "version": 1,
            "entries": {fp: self.entries[fp] for fp in sorted(self.entries)},
        }
        Path(path).write_text(json.dumps(doc, indent=1) + "\n")

    def partition(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[str]]:
        """Split findings into (new, suppressed) plus unused fingerprints."""
        new: list[Finding] = []
        suppressed: list[Finding] = []
        seen: set[str] = set()
        for finding in findings:
            fp = finding.fingerprint
            if fp in self.entries:
                suppressed.append(finding)
                seen.add(fp)
            else:
                new.append(finding)
        unused = [fp for fp in self.entries if fp not in seen]
        return new, suppressed, unused

    @classmethod
    def from_findings(
        cls,
        findings: list[Finding],
        justification: str = PLACEHOLDER_JUSTIFICATION,
    ) -> "Baseline":
        """Build a baseline covering ``findings`` (for --update-baseline)."""
        entries = {
            f.fingerprint: {
                "rule": f.rule,
                "path": f.path,
                "snippet": f.snippet or f.message,
                "justification": justification,
            }
            for f in findings
        }
        return cls(entries)
