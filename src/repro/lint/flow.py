"""Lightweight intraprocedural CFG + forward dataflow.

The SL204/SL205 contract rules need to answer "can a value produced
*here* reach this expression?" inside one function — classic forward
dataflow.  Soundness-for-lint means we approximate in the quiet
direction: the CFG joins branches with set-union, loops run to a
fixpoint, and anything we cannot model (``exec``, attribute stores,
globals) simply doesn't propagate taint, so unknown constructs never
*create* findings.

Two layers:

* :func:`build_cfg` — basic blocks of simple statements with
  successor edges; ``if``/``while``/``for``/``try`` are approximated
  by join edges (both arms reachable, loop bodies re-entered), which
  is exact enough for may-reach questions.
* :func:`taint` — the worklist fixpoint specialized to
  variable-name taint: a caller-supplied predicate decides which
  expressions *introduce* taint, assignments propagate it, and the
  result maps every statement to the set of names tainted on entry.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable


@dataclass
class Block:
    """A basic block: straight-line simple statements + successors."""

    index: int
    statements: list[ast.stmt] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)


@dataclass
class CFG:
    """Control-flow graph of one function body."""

    blocks: list[Block]
    entry: int = 0

    def predecessors(self) -> dict[int, list[int]]:
        """Reverse edge map (block index -> predecessor indexes)."""
        preds: dict[int, list[int]] = {b.index: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors:
                preds[succ].append(block.index)
        return preds


class _Builder:
    """Builds a CFG from a statement list, one block at a time."""

    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.current = self._new_block()

    def _new_block(self) -> Block:
        block = Block(index=len(self.blocks))
        self.blocks.append(block)
        return block

    def _link(self, src: Block, dst: Block) -> None:
        if dst.index not in src.successors:
            src.successors.append(dst.index)

    def add_body(self, body: list[ast.stmt]) -> None:
        """Append a statement list to the block under construction."""
        for stmt in body:
            self.add_statement(stmt)

    def add_statement(self, stmt: ast.stmt) -> None:
        """Append one statement, splitting blocks at control flow."""
        if isinstance(stmt, (ast.If,)):
            self._add_branch(stmt.body, stmt.orelse, condition=stmt)
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            self._add_loop(stmt)
        elif isinstance(stmt, (ast.Try,)):
            self._add_try(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            # A with-block always runs its body; keep it inline but
            # record the With itself first (the SL202 guard scanner
            # keys on the statement).
            self.current.statements.append(stmt)
            self.add_body(stmt.body)
        elif isinstance(stmt, (ast.Return, ast.Raise, ast.Break,
                               ast.Continue)):
            self.current.statements.append(stmt)
            # Control leaves; start a fresh unreachable-ish block so
            # later statements don't inherit this block's edges.
            self.current = self._new_block()
        else:
            self.current.statements.append(stmt)

    def _add_branch(
        self,
        body: list[ast.stmt],
        orelse: list[ast.stmt],
        condition: ast.stmt,
    ) -> None:
        head = self.current
        head.statements.append(condition)
        then_block = self._new_block()
        self._link(head, then_block)
        self.current = then_block
        self.add_body(body)
        then_exit = self.current
        else_exit = head
        if orelse:
            else_block = self._new_block()
            self._link(head, else_block)
            self.current = else_block
            self.add_body(orelse)
            else_exit = self.current
        join = self._new_block()
        self._link(then_exit, join)
        self._link(else_exit, join)
        self.current = join

    def _add_loop(self, stmt: ast.stmt) -> None:
        head = self._new_block()
        self._link(self.current, head)
        head.statements.append(stmt)
        body_block = self._new_block()
        self._link(head, body_block)
        self.current = body_block
        self.add_body(stmt.body)  # type: ignore[attr-defined]
        self._link(self.current, head)  # back edge
        exit_block = self._new_block()
        self._link(head, exit_block)
        orelse = getattr(stmt, "orelse", [])
        if orelse:
            self.current = exit_block
            self.add_body(orelse)
            exit_block = self.current
        self.current = exit_block

    def _add_try(self, stmt: ast.Try) -> None:
        head = self.current
        body_block = self._new_block()
        self._link(head, body_block)
        self.current = body_block
        self.add_body(stmt.body)
        body_exit = self.current
        exits = [body_exit]
        for handler in stmt.handlers:
            handler_block = self._new_block()
            # A handler can run after any prefix of the body; edging
            # from both head and body-exit over-approximates safely.
            self._link(head, handler_block)
            self._link(body_exit, handler_block)
            self.current = handler_block
            self.add_body(handler.body)
            exits.append(self.current)
        if stmt.orelse:
            else_block = self._new_block()
            self._link(body_exit, else_block)
            self.current = else_block
            self.add_body(stmt.orelse)
            exits[0] = self.current
        join = self._new_block()
        for block in exits:
            self._link(block, join)
        self.current = join
        if stmt.finalbody:
            self.add_body(stmt.finalbody)


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """The CFG of one function's body (nested defs are opaque)."""
    builder = _Builder()
    builder.add_body(fn.body)
    return CFG(blocks=builder.blocks)


# ----------------------------------------------------------------------
# Forward dataflow: variable-name taint
# ----------------------------------------------------------------------

#: Predicate deciding whether an expression *introduces* taint.
SourcePredicate = Callable[[ast.expr], bool]


def expr_tainted(
    expr: ast.expr | None,
    tainted: frozenset[str],
    is_source: SourcePredicate,
) -> bool:
    """Whether an expression's value may carry taint.

    True when any sub-expression is a taint source or a read of a
    tainted name.  f-strings, arithmetic, comprehensions, dict/list
    displays, and calls all propagate through their operands — a call
    with a tainted argument is assumed to return taint (quietly
    over-tainting inside the function keeps the *source* judgement
    conservative, and sinks only fire on literal field matches).
    """
    if expr is None:
        return False
    for node in ast.walk(expr):
        if isinstance(node, ast.expr) and is_source(node):
            return True
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in tainted:
                return True
    return False


def _assigned_names(target: ast.expr) -> list[str]:
    """Plain local names bound by an assignment target."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for elt in target.elts:
            names.extend(_assigned_names(elt))
        return names
    if isinstance(target, ast.Starred):
        return _assigned_names(target.value)
    return []


def _transfer(
    stmt: ast.stmt,
    tainted: frozenset[str],
    is_source: SourcePredicate,
) -> frozenset[str]:
    """State after one simple statement.

    Only the statement's *own* binding effect is applied; compound
    statements reached here are branch/loop heads whose bodies live in
    other blocks, so just their test/iter expressions matter (and
    those bind nothing except for-loop targets).
    """
    out = set(tainted)
    if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        value = stmt.value
        names = [n for t in targets for n in _assigned_names(t)]
        if isinstance(stmt, ast.AugAssign):
            # `x += src` taints x; `x += clean` keeps x's status.
            if expr_tainted(value, tainted, is_source):
                out.update(names)
        elif expr_tainted(value, tainted, is_source):
            out.update(names)
        else:
            out.difference_update(names)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        if expr_tainted(stmt.iter, tainted, is_source):
            out.update(_assigned_names(stmt.target))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None and expr_tainted(
                item.context_expr, tainted, is_source
            ):
                out.update(_assigned_names(item.optional_vars))
    return frozenset(out)


def taint(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    is_source: SourcePredicate,
    initial: frozenset[str] = frozenset(),
) -> dict[ast.stmt, frozenset[str]]:
    """Which names are tainted on entry to each statement.

    Runs the forward worklist fixpoint over :func:`build_cfg`'s graph
    with set-union join.  The result maps each statement node (every
    simple statement and compound-statement head in the CFG, keyed by
    identity) to the tainted-name set holding immediately *before* it
    executes; query an expression inside the statement with
    :func:`expr_tainted`.
    """
    cfg = build_cfg(fn)
    preds = cfg.predecessors()
    block_in: dict[int, frozenset[str]] = {
        b.index: frozenset() for b in cfg.blocks
    }
    block_in[cfg.entry] = initial
    block_out: dict[int, frozenset[str]] = dict(block_in)
    worklist = [b.index for b in cfg.blocks]
    while worklist:
        index = worklist.pop(0)
        block = cfg.blocks[index]
        state = frozenset(block_in[index])
        merged: set[str] = set(state)
        for pred in preds[index]:
            merged |= block_out[pred]
        if index == cfg.entry:
            merged |= initial
        state = frozenset(merged)
        block_in[index] = state
        for stmt in block.statements:
            state = _transfer(stmt, state, is_source)
        if state != block_out[index]:
            block_out[index] = state
            for succ in block.successors:
                if succ not in worklist:
                    worklist.append(succ)
    # Replay each block to record the per-statement entry states.
    entry_states: dict[ast.stmt, frozenset[str]] = {}
    for block in cfg.blocks:
        state = block_in[block.index]
        for stmt in block.statements:
            entry_states[stmt] = state
            state = _transfer(stmt, state, is_source)
    return entry_states
