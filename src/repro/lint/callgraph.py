"""Project symbol table + call graph for the SL2xx analyses.

The per-file SL0xx rules see one module at a time; the concurrency and
contract rules (SL201–SL205) need *whole-program* facts: which class a
``self.queue`` attribute holds, which function a call resolves to, and
what is transitively reachable from an ``async def``.  This module
builds those facts once per :func:`~repro.lint.engine.run_lint`
invocation, from the already-parsed module set — no imports are
executed, everything is static.

Resolution is deliberately *typed-but-cheap*: it follows constructor
assignments (``self.queue = JobQueue(...)``), parameter / attribute
annotations, and function return annotations, all restricted to
classes defined in the scanned tree.  Anything it cannot resolve
becomes either an *external* call (with the dotted origin recovered
through the module's imports — ``time.sleep``, ``threading.Lock``) or
an anonymous method call recorded as ``".name"``.  Rules treat
unresolved calls conservatively in whichever direction keeps them
quiet: a lint earns trust by underclaiming.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.lint.engine import ModuleSource

#: Origins whose construction marks an attribute as a thread lock
#: (SL202's guarded-region anchors, SL203's fork-unsafe payloads).
LOCK_ORIGINS = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "multiprocessing.Lock", "multiprocessing.RLock",
})


def walk_executed(fn_node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's *executed* body.

    Like ``ast.walk`` but nested ``def``/``lambda`` subtrees are not
    descended into: defining a closure executes nothing, so a call
    inside one must not become a call edge of the enclosing function
    (that is exactly how ``run_in_executor(None, helper)`` offloads
    work without the helper's blocking calls tainting the coroutine).
    """
    stack = list(ast.iter_child_nodes(fn_node))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def module_dotted(rel: str) -> str:
    """``service/queue.py`` -> ``service.queue`` (packages drop ``__init__``)."""
    dotted = rel[:-3] if rel.endswith(".py") else rel
    dotted = dotted.replace("/", ".")
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return dotted


def _annotation_name(node: ast.expr | None) -> str | None:
    """The class name an annotation denotes, if it is a plain name.

    Handles ``Foo``, ``"Foo"`` (string annotations), ``mod.Foo`` (the
    leaf), and ``Optional[Foo]`` / ``Foo | None`` unions with a single
    concrete member.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value.strip()
        return name.split("[")[0].split(".")[-1] or None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
        if node.value.id in ("Optional",):
            return _annotation_name(node.slice)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_name(node.left)
        right = _annotation_name(node.right)
        candidates = [c for c in (left, right) if c and c != "None"]
        return candidates[0] if len(candidates) == 1 else None
    return None


@dataclass
class CallEdge:
    """One call site inside a function.

    Exactly one of ``target`` (a project function) or ``external`` (a
    dotted origin like ``time.sleep``, the bare builtin name, or an
    anonymous ``".method"`` form) is set.
    """

    node: ast.Call
    target: "FunctionInfo | None" = None
    external: str | None = None


@dataclass(eq=False)  # identity semantics: each info IS its graph node
class FunctionInfo:
    """One function or method in the scanned tree."""

    name: str
    qualname: str  # "service/queue.py::JobQueue.submit"
    rel: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None = None  # enclosing class simple name, if a method
    is_async: bool = False
    calls: list[CallEdge] = field(default_factory=list)
    return_class: str | None = None  # project class name, when annotated

    @property
    def label(self) -> str:
        """Human-facing name (``JobQueue.submit`` / ``run_cell``)."""
        return f"{self.cls}.{self.name}" if self.cls else self.name


@dataclass(eq=False)  # identity semantics, usable as a dict key
class ClassInfo:
    """One class in the scanned tree, with inferred attribute types."""

    name: str
    rel: str
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: attribute name -> project class simple name
    attr_types: dict[str, str] = field(default_factory=dict)
    #: attribute name -> external dotted origin of its constructor
    attr_origins: dict[str, str] = field(default_factory=dict)

    @property
    def lock_attrs(self) -> set[str]:
        """Attributes assigned a ``threading`` lock object."""
        return {
            attr for attr, origin in self.attr_origins.items()
            if origin in LOCK_ORIGINS
        }


class Project:
    """The whole-program symbol table + call graph."""

    def __init__(self, modules: Iterable[ModuleSource]):
        self.modules: list[ModuleSource] = list(modules)
        #: simple class name -> every ClassInfo with that name
        self.classes: dict[str, list[ClassInfo]] = {}
        #: every function/method, in definition order
        self.functions: list[FunctionInfo] = []
        #: "dotted.path" (both rel-derived and repro.-prefixed) -> info
        self._by_dotted: dict[str, FunctionInfo | ClassInfo] = {}
        #: rel -> {local name -> dotted origin} import maps
        self._aliases: dict[str, dict[str, str]] = {}
        #: rel -> {top-level function name -> FunctionInfo}
        self._module_funcs: dict[str, dict[str, FunctionInfo]] = {}
        self._node_index: dict[ast.AST, FunctionInfo] = {}
        self._collect()
        self._link()

    # ------------------------------------------------------------------
    # Pass 1: symbols
    # ------------------------------------------------------------------

    def _collect(self) -> None:
        from repro.lint.rules import import_aliases

        for module in self.modules:
            self._aliases[module.rel] = import_aliases(module.tree)
            self._module_funcs[module.rel] = {}
            dotted = module_dotted(module.rel)
            for node in module.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = self._add_function(module.rel, node, cls=None)
                    self._module_funcs[module.rel][node.name] = info
                    self._register_dotted(f"{dotted}.{node.name}", info)
                elif isinstance(node, ast.ClassDef):
                    cls = self._add_class(module.rel, node)
                    self._register_dotted(f"{dotted}.{node.name}", cls)

    def _register_dotted(self, dotted: str, info) -> None:
        self._by_dotted.setdefault(dotted, info)
        # The scan root is usually the `repro` package dir, so imports
        # say `repro.service.queue` while rels say `service/queue.py`.
        self._by_dotted.setdefault(f"repro.{dotted}", info)

    def _add_function(
        self, rel: str, node, cls: str | None
    ) -> FunctionInfo:
        qual = f"{rel}::{cls + '.' if cls else ''}{node.name}"
        info = FunctionInfo(
            name=node.name, qualname=qual, rel=rel, node=node, cls=cls,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            return_class=_annotation_name(node.returns),
        )
        self.functions.append(info)
        self._node_index[node] = info
        return info

    def _add_class(self, rel: str, node: ast.ClassDef) -> ClassInfo:
        cls = ClassInfo(
            name=node.name, rel=rel, node=node,
            bases=[b for b in map(_annotation_name, node.bases) if b],
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[stmt.name] = self._add_function(
                    rel, stmt, cls=node.name,
                )
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                # Dataclass-style field annotations.
                name = _annotation_name(stmt.annotation)
                if name:
                    cls.attr_types[stmt.target.id] = name
        self.classes.setdefault(node.name, []).append(cls)
        return cls

    # ------------------------------------------------------------------
    # Pass 2: attribute types, then call edges
    # ------------------------------------------------------------------

    def _link(self) -> None:
        # Attribute types first (edges resolve through them), iterated
        # to a small fixpoint so `self.a = other.make_b()` can use
        # return annotations discovered in the same pass.
        for _ in range(2):
            for cls in self._all_classes():
                self._infer_attr_types(cls)
        for fn in self.functions:
            self._resolve_calls(fn)

    def _all_classes(self) -> Iterator[ClassInfo]:
        for infos in self.classes.values():
            yield from infos

    def class_named(self, name: str | None, rel: str | None = None) -> ClassInfo | None:
        """The unique class with this simple name (prefer same module)."""
        infos = self.classes.get(name or "")
        if not infos:
            return None
        if rel is not None:
            same = [c for c in infos if c.rel == rel]
            if len(same) == 1:
                return same[0]
        return infos[0] if len(infos) == 1 else None

    def function_for_node(self, node: ast.AST) -> FunctionInfo | None:
        """The FunctionInfo wrapping a def node (or None)."""
        return self._node_index.get(node)

    def _infer_attr_types(self, cls: ClassInfo) -> None:
        aliases = self._aliases.get(cls.rel, {})
        for method in cls.methods.values():
            # `self.queue = queue` with an annotated `queue: JobQueue`
            # parameter (or constructor-typed local) is the dominant
            # dependency-injection idiom — resolve the Name RHS through
            # the method's local typing environment.
            env = self._local_types(method, aliases)
            for node in ast.walk(method.node):
                target = None
                value = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        name = _annotation_name(node.annotation)
                        if name and name in self.classes:
                            cls.attr_types.setdefault(target.attr, name)
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                info: ClassInfo | str | None
                if isinstance(value, ast.Name):
                    info = env.get(value.id)
                else:
                    info = self._value_type(value, cls, aliases)
                if isinstance(info, ClassInfo):
                    cls.attr_types.setdefault(target.attr, info.name)
                elif isinstance(info, str):
                    cls.attr_origins.setdefault(target.attr, info)

    def _value_type(
        self, value: ast.expr | None, cls: ClassInfo | None,
        aliases: dict[str, str],
    ) -> ClassInfo | str | None:
        """What a RHS constructs: a project class, or an external origin."""
        if not isinstance(value, ast.Call):
            return None
        from repro.lint.rules import dotted_name, resolve_origin

        func = value.func
        if isinstance(func, ast.Name):
            target = self.classes.get(func.id)
            if target:
                return self.class_named(func.id, cls.rel if cls else None)
            origin = aliases.get(func.id)
            if origin is not None:
                resolved = self._by_dotted.get(origin)
                if isinstance(resolved, ClassInfo):
                    return resolved
                if isinstance(resolved, FunctionInfo):
                    return self.class_named(resolved.return_class, resolved.rel)
                return origin
            return None
        if isinstance(func, ast.Attribute):
            origin = resolve_origin(func, aliases)
            if origin is not None:
                resolved = self._by_dotted.get(origin)
                if isinstance(resolved, ClassInfo):
                    return resolved
                return origin
            # `self.make_thing()` — use the method's return annotation.
            dotted = dotted_name(func.value)
            if dotted == "self" and cls is not None:
                method = self._method(cls, func.attr)
                if method is not None and method.return_class:
                    return self.class_named(method.return_class, method.rel)
        return None

    def _method(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        """Method lookup through the (name-resolved) base classes."""
        seen: set[str] = set()
        stack = [cls]
        while stack:
            cur = stack.pop()
            if cur.name in seen:
                continue
            seen.add(cur.name)
            if name in cur.methods:
                return cur.methods[name]
            for base in cur.bases:
                base_cls = self.class_named(base, cur.rel)
                if base_cls is not None:
                    stack.append(base_cls)
        return None

    # ------------------------------------------------------------------
    # Call-edge resolution
    # ------------------------------------------------------------------

    def _local_types(
        self, fn: FunctionInfo, aliases: dict[str, str],
    ) -> dict[str, ClassInfo]:
        """Flow-insensitive local-variable typing for one function."""
        cls = self.class_named(fn.cls, fn.rel)
        env: dict[str, ClassInfo] = {}
        args = fn.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            name = _annotation_name(arg.annotation)
            typed = self.class_named(name, fn.rel)
            if typed is not None:
                env[arg.arg] = typed
        for node in walk_executed(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    info = self._value_type(node.value, cls, aliases)
                    if isinstance(info, ClassInfo):
                        env[target.id] = info
                    else:
                        env.pop(target.id, None)
        return env

    def expr_class(
        self,
        expr: ast.expr,
        fn: FunctionInfo,
        env: dict[str, ClassInfo] | None = None,
    ) -> ClassInfo | None:
        """The project class an expression evaluates to, if inferable."""
        aliases = self._aliases.get(fn.rel, {})
        if env is None:
            env = self._local_types(fn, aliases)
        cls = self.class_named(fn.cls, fn.rel)
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return cls
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            owner = self.expr_class(expr.value, fn, env)
            if owner is not None:
                attr_type = owner.attr_types.get(expr.attr)
                return self.class_named(attr_type, owner.rel)
            return None
        if isinstance(expr, ast.Call):
            edge_target = self._resolve_call_target(expr, fn, env)
            if isinstance(edge_target, ClassInfo):
                return edge_target
            if isinstance(edge_target, FunctionInfo) and edge_target.return_class:
                return self.class_named(
                    edge_target.return_class, edge_target.rel,
                )
        return None

    def _resolve_call_target(
        self,
        call: ast.Call,
        fn: FunctionInfo,
        env: dict[str, ClassInfo],
    ) -> FunctionInfo | ClassInfo | str | None:
        """The project function/class a call hits, or its external origin."""
        from repro.lint.rules import resolve_origin

        aliases = self._aliases.get(fn.rel, {})
        func = call.func
        if isinstance(func, ast.Name):
            local = self._module_funcs.get(fn.rel, {}).get(func.id)
            if local is not None:
                return local
            cls = self.class_named(func.id, fn.rel)
            if cls is not None and func.id in self.classes:
                return cls
            origin = aliases.get(func.id)
            if origin is not None:
                resolved = self._by_dotted.get(origin)
                return resolved if resolved is not None else origin
            return func.id  # builtin (open, sorted, ...)
        if isinstance(func, ast.Attribute):
            origin = resolve_origin(func, aliases)
            if origin is not None:
                resolved = self._by_dotted.get(origin)
                return resolved if resolved is not None else origin
            owner = self.expr_class(func.value, fn, env)
            if owner is not None:
                method = self._method(owner, func.attr)
                if method is not None:
                    return method
                return f".{func.attr}"
            return f".{func.attr}"
        return None

    def local_env(self, fn: FunctionInfo) -> dict[str, ClassInfo]:
        """Public view of one function's local-variable typing."""
        return self._local_types(fn, self._aliases.get(fn.rel, {}))

    def _resolve_calls(self, fn: FunctionInfo) -> None:
        aliases = self._aliases.get(fn.rel, {})
        env = self._local_types(fn, aliases)
        for node in walk_executed(fn.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = self._resolve_call_target(node, fn, env)
            if isinstance(resolved, FunctionInfo):
                fn.calls.append(CallEdge(node=node, target=resolved))
            elif isinstance(resolved, ClassInfo):
                init = self._method(resolved, "__init__")
                if init is not None:
                    fn.calls.append(CallEdge(node=node, target=init))
                else:
                    fn.calls.append(
                        CallEdge(node=node, external=f"class:{resolved.name}")
                    )
            elif isinstance(resolved, str):
                fn.calls.append(CallEdge(node=node, external=resolved))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def edge_count(self) -> int:
        """Resolved project-internal call edges (for --stats)."""
        return sum(
            1 for fn in self.functions for e in fn.calls if e.target is not None
        )

    def aliases_for(self, rel: str) -> dict[str, str]:
        """The import-alias map of one module."""
        return self._aliases.get(rel, {})


def build_project(modules: Iterable[ModuleSource]) -> Project:
    """Build the symbol table + call graph for a parsed module set."""
    return Project(modules)
