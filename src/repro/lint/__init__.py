"""simlint: static determinism/protocol analysis for the simulator.

Two layers:

* an AST pass over the ``repro`` sources with pluggable rules
  (SL001–SL007) that reject simulation-visible nondeterminism hazards
  — bare ``random`` / wall-clock calls, unordered ``set`` iteration
  feeding scheduling/arbitration/stats, ``id()``-based ordering, float
  equality in protocol logic, scheduler-callback misuse, and untraced
  hot-path hazards (docs/linting.md has the full catalog);
* a static protocol-table auditor (SL101–SL104) that imports the real
  :class:`~repro.coherence.protocol.ProtocolLogic` tables and, without
  running a simulation, accounts for every (state, event) row of
  MESI / MOESI / MESTI / E-MESTI and diffs MESTI against E-MESTI.

Stable public API: :func:`run_lint`, :class:`Rule`, :class:`Finding`
(plus :class:`LintResult` and the :data:`ALL_RULES` registry).  The
``repro-sim lint`` subcommand is the CLI front end.
"""

from repro.lint.baseline import Baseline
from repro.lint.engine import ALL_RULES, Finding, LintResult, Rule, run_lint

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Finding",
    "LintResult",
    "Rule",
    "run_lint",
]
