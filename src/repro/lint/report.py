"""Rendering for simlint results (text for humans, JSON for CI).

The JSON document is the :meth:`~repro.lint.engine.LintResult.to_json`
form plus, when the audit layer ran, an ``audit`` section with the
per-protocol row accounting and the MESTI↔E-MESTI diff — CI archives
it, and ``tests/lint`` pins its schema.
"""

from __future__ import annotations

import json

from repro.lint.engine import LintResult


def render_text(
    result: LintResult, verbose: bool = False, stats: bool = False,
) -> str:
    """Human-readable findings listing with a one-line verdict."""
    lines: list[str] = []
    for finding in result.findings:
        site = f"{finding.path}:{finding.line}" if finding.line else finding.path
        lines.append(f"{site}: {finding.rule}: {finding.message}")
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    if verbose and result.suppressed:
        lines.append(f"-- {len(result.suppressed)} baselined finding(s):")
        for finding in result.suppressed:
            site = f"{finding.path}:{finding.line}" if finding.line else finding.path
            lines.append(f"   {site}: {finding.rule} (baselined)")
    for fp in result.unused_baseline:
        lines.append(
            f"warning: baseline entry {fp} matched nothing "
            f"(stale - remove it)"
        )
    verdict = "clean" if result.clean else f"{len(result.findings)} finding(s)"
    lines.append(
        f"simlint: {verdict} "
        f"({result.files_scanned} files, {len(result.rules)} rules, "
        f"{len(result.suppressed)} baselined)"
    )
    if stats and result.stats:
        per_rule = result.stats.get("findings_per_rule") or {}
        counts = " ".join(
            f"{rule}={count}" for rule, count in sorted(per_rule.items())
        ) or "none"
        lines.append(f"stats: new findings by rule: {counts}")
        graph = result.stats.get("callgraph")
        if graph:
            lines.append(
                f"stats: call graph: {graph['functions']} functions, "
                f"{graph['classes']} classes, {graph['edges']} edges"
            )
    return "\n".join(lines)


def render_json(result: LintResult, audit: bool = True) -> str:
    """The machine-readable document ``--format json`` prints."""
    doc = result.to_json()
    if audit and any(r.startswith("SL1") for r in result.rules):
        from repro.lint.table_audit import audit_all, diff_mesti_emesti

        doc["audit"] = {
            "protocols": audit_all(),
            "mesti_vs_emesti": {
                "bus": diff_mesti_emesti(directory=False),
                "directory": diff_mesti_emesti(directory=True),
            },
        }
    return json.dumps(doc, indent=1)
