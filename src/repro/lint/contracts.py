"""simlint contract rules SL204–SL205 (dataflow + registry cross-check).

* **SL204** — nondeterminism taint: a value produced by ``time.*``,
  ``os.getpid``, ``random``, ``uuid``, or wall-clock ``datetime`` calls
  must not flow (through local assignments, tracked by
  :mod:`~repro.lint.flow`) into a cache fingerprint, a deterministic
  :class:`~repro.obs.progress.RunManifest` field, or an event payload
  field outside the declared
  :data:`~repro.experiments.runner.NONDETERMINISTIC_FIELDS`.  The
  temporal-silence results are seed-reproducible only if cached
  artefacts never embed per-run entropy.
* **SL205** — contract cross-check, generalizing SL009 from *names* to
  *fields*: every ``emit("<declared event>", ...)`` call must provide
  that event's required payload fields statically, must not supply a
  field the spec declares neither required nor optional (the EventLog
  rejects those at emit time), and every metric name read back via
  ``metrics.get(...)`` / ``metrics.total(...)`` must be a family some
  module actually declares.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import FunctionInfo, Project, walk_executed
from repro.lint.engine import Finding, LintContext, ModuleSource, Rule
from repro.lint.flow import expr_tainted, taint
from repro.lint.rules import (
    _finding,
    attach_parents,
    import_aliases,
    resolve_origin,
)

#: Call origins whose results differ run to run (SL204 taint sources).
TAINT_ORIGINS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "os.getpid", "os.urandom", "os.times",
    "uuid.uuid1", "uuid.uuid4",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
})

#: Origin prefixes that are wholly nondeterministic.
TAINT_PREFIXES = ("random.", "numpy.random")

#: Fallback for the declared nondeterministic manifest/event fields
#: when the real runner module is not importable in this process.
FALLBACK_NONDET_FIELDS = ("wall_seconds", "worker", "retries")

#: Receiver leaf names treated as an EventLog for emit-payload checks.
EVENT_RECEIVERS = frozenset({"events", "_events", "event_log"})

#: Receiver leaf names treated as a MetricsRegistry.
METRIC_RECEIVERS = frozenset({"metrics", "_metrics", "registry", "_registry"})

#: MetricsRegistry family-declaring methods -> index of the name arg.
METRIC_DECLARERS = {"counter": 0, "gauge": 0, "histogram": 0}

#: Helper functions declaring families -> index of the name arg.
METRIC_DECLARING_HELPERS = {"bound_counter": 2, "bind_histogram": 1}


def _nondet_fields() -> tuple[str, ...]:
    try:
        from repro.experiments.runner import NONDETERMINISTIC_FIELDS
    except Exception:  # pragma: no cover - runner always importable
        return FALLBACK_NONDET_FIELDS
    return tuple(NONDETERMINISTIC_FIELDS)


def _event_specs() -> dict | None:
    try:
        from repro.service.events import EVENT_SPECS
    except Exception:  # pragma: no cover - registry always importable
        return None
    return EVENT_SPECS


def _literal_str(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _receiver_leaf(func: ast.expr) -> str | None:
    """The name the receiver chain ends in (``self.events`` -> events)."""
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


def _enclosing_stmt(node: ast.AST) -> ast.stmt | None:
    cur: ast.AST | None = node
    while cur is not None:
        if isinstance(cur, ast.stmt):
            return cur
        cur = getattr(cur, "_simlint_parent", None)
    return None


class NondeterminismTaintRule(Rule):
    """SL204: per-run entropy flows into a deterministic artefact."""

    id = "SL204"
    title = "nondeterministic value flows into a deterministic artefact"
    rationale = (
        "Cache fingerprints, RunManifest deterministic fields, and "
        "event payload fields outside NONDETERMINISTIC_FIELDS are part "
        "of the reproducibility contract: a timestamp or pid reaching "
        "them makes two identical runs disagree, poisoning the cache "
        "and the paper's seed-controlled comparisons."
    )

    def check_project(self, ctx: LintContext) -> Iterator[Finding]:
        """Run per-function taint and audit the three sink kinds."""
        project: Project = ctx.project()
        nondet = set(_nondet_fields())
        for module in ctx.modules:
            if self.is_exempt(module.rel):
                continue
            attach_parents(module.tree)
        for fn in project.functions:
            module = next(
                (m for m in ctx.modules if m.rel == fn.rel), None,
            )
            if module is None or self.is_exempt(fn.rel):
                continue
            yield from self._audit_function(project, fn, module, nondet)

    def _audit_function(
        self,
        project: Project,
        fn: FunctionInfo,
        module: ModuleSource,
        nondet: set[str],
    ) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)

        def is_source(expr: ast.expr) -> bool:
            if not isinstance(expr, ast.Call):
                return False
            func = expr.func
            if not isinstance(func, (ast.Name, ast.Attribute)):
                return False
            origin = resolve_origin(func, aliases)
            if origin is None and isinstance(func, ast.Name):
                origin = aliases.get(func.id)
            if origin is None:
                return False
            return origin in TAINT_ORIGINS or origin.startswith(
                TAINT_PREFIXES
            )

        # Cheap pre-screen: no sources in the function, no taint.
        if not any(is_source(n) for n in ast.walk(fn.node)
                   if isinstance(n, ast.expr)):
            return
        states = taint(fn.node, is_source)

        def tainted_at(call: ast.Call, expr: ast.expr | None) -> bool:
            stmt = _enclosing_stmt(call)
            entry = states.get(stmt, frozenset()) if stmt else frozenset()
            return expr_tainted(expr, entry, is_source)

        for node in walk_executed(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # Sink 1: cache fingerprints.
            if self._is_fingerprint_call(func, aliases):
                for arg in [*node.args, *[k.value for k in node.keywords]]:
                    if tainted_at(node, arg):
                        yield _finding(
                            self, module, arg,
                            "nondeterministic value flows into a cache "
                            "fingerprint; fingerprints must derive only "
                            "from the configuration",
                        )
            # Sink 2: event payloads.
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "emit"
                and self._is_event_receiver(project, fn, func)
            ):
                for kw in node.keywords:
                    if kw.arg is None or kw.arg in nondet:
                        continue
                    if tainted_at(node, kw.value):
                        yield _finding(
                            self, module, kw.value,
                            f"nondeterministic value flows into event "
                            f"payload field {kw.arg!r}; only "
                            f"{sorted(nondet)} may vary per run",
                        )
            # Sink 3: RunManifest deterministic fields.
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "record"
                and self._is_manifest_receiver(project, fn, func)
            ):
                for idx, arg in enumerate(node.args):
                    if tainted_at(node, arg):
                        field = ("key", "status")[idx] if idx < 2 else "?"
                        yield _finding(
                            self, module, arg,
                            f"nondeterministic value flows into "
                            f"RunManifest field {field!r}",
                        )
                for kw in node.keywords:
                    if kw.arg is None or kw.arg in nondet:
                        continue
                    if tainted_at(node, kw.value):
                        yield _finding(
                            self, module, kw.value,
                            f"nondeterministic value flows into "
                            f"deterministic RunManifest field {kw.arg!r}",
                        )

    @staticmethod
    def _is_fingerprint_call(func: ast.expr, aliases: dict) -> bool:
        if isinstance(func, ast.Name):
            if func.id == "cell_fingerprint":
                return True
            origin = aliases.get(func.id, "")
            return origin.endswith(".cell_fingerprint")
        if isinstance(func, ast.Attribute):
            return func.attr == "cell_fingerprint"
        return False

    @staticmethod
    def _is_event_receiver(
        project: Project, fn: FunctionInfo, func: ast.Attribute
    ) -> bool:
        leaf = _receiver_leaf(func)
        if leaf in EVENT_RECEIVERS:
            return True
        owner = project.expr_class(func.value, fn)
        return owner is not None and owner.name == "EventLog"

    @staticmethod
    def _is_manifest_receiver(
        project: Project, fn: FunctionInfo, func: ast.Attribute
    ) -> bool:
        leaf = _receiver_leaf(func)
        if leaf in ("manifest", "_manifest"):
            return True
        owner = project.expr_class(func.value, fn)
        return owner is not None and owner.name == "RunManifest"


class ContractCrossCheckRule(Rule):
    """SL205: emit payloads / metric reads vs their declared contracts."""

    id = "SL205"
    title = "payload or metric use contradicts its declared contract"
    rationale = (
        "EVENT_SPECS and the MetricsRegistry are the service's wire "
        "contract.  An emit that cannot statically supply an event's "
        "required fields, or a read of a metric family nothing "
        "declares, only fails at runtime — in production, on the "
        "unhappy path."
    )

    #: The registry module itself routes dynamically by design.
    exempt = ("service/events.py",)

    def check_project(self, ctx: LintContext) -> Iterator[Finding]:
        """Audit emit payload keys and metric-name reads."""
        project: Project = ctx.project()
        specs = _event_specs()
        for module in ctx.modules:
            attach_parents(module.tree)
        declared_metrics = self._declared_metric_families(ctx)
        for fn in project.functions:
            module = next(
                (m for m in ctx.modules if m.rel == fn.rel), None,
            )
            if module is None or self.is_exempt(fn.rel):
                continue
            if specs is not None:
                yield from self._audit_emits(project, fn, module, specs)
            yield from self._audit_metric_reads(
                project, fn, module, declared_metrics,
            )

    # -- emit payload fields --------------------------------------------

    def _audit_emits(
        self,
        project: Project,
        fn: FunctionInfo,
        module: ModuleSource,
        specs: dict,
    ) -> Iterator[Finding]:
        for node in walk_executed(fn.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit"
                and node.args
            ):
                continue
            name = _literal_str(node.args[0])
            if name is None or name not in specs:
                continue  # undeclared names are SL009's finding
            required = tuple(specs[name].fields)
            allowed = set(required) | set(
                getattr(specs[name], "optional", ()) or ()
            )
            present, complete = self._payload_keys(node, fn)
            # A statically-supplied key outside fields+optional is an
            # error even when the payload also has dynamic parts: the
            # EventLog rejects undeclared fields at emit time.
            undeclared = sorted(present - allowed)
            if undeclared:
                yield _finding(
                    self, module, node,
                    f"emit({name!r}) supplies field(s) "
                    f"{', '.join(repr(u) for u in undeclared)} that the "
                    f"event's spec does not declare (neither required "
                    f"nor optional); EventLog.emit rejects them",
                )
            if not complete:
                continue  # **dynamic payload: cannot vouch, stay quiet
            missing = [f for f in required if f not in present]
            if missing:
                yield _finding(
                    self, module, node,
                    f"emit({name!r}) cannot satisfy the event's "
                    f"declared contract: required field(s) "
                    f"{', '.join(repr(m) for m in missing)} are not "
                    f"supplied statically",
                )

    @staticmethod
    def _payload_keys(
        call: ast.Call, fn: FunctionInfo
    ) -> tuple[set[str], bool]:
        """(statically known payload keys, whether the set is complete)."""
        keys: set[str] = set()
        for kw in call.keywords:
            if kw.arg is not None:
                keys.add(kw.arg)
                continue
            # **{...} literal, or **name where name is assigned exactly
            # one all-literal dict in this function.
            value = kw.value
            if isinstance(value, ast.Name):
                assigns = [
                    n.value for n in walk_executed(fn.node)
                    if isinstance(n, ast.Assign)
                    and len(n.targets) == 1
                    and isinstance(n.targets[0], ast.Name)
                    and n.targets[0].id == value.id
                ]
                if len(assigns) == 1 and isinstance(assigns[0], ast.Dict):
                    value = assigns[0]
            if isinstance(value, ast.Dict):
                literal_keys = [_literal_str(k) for k in value.keys]
                if all(k is not None for k in literal_keys):
                    keys.update(k for k in literal_keys if k is not None)
                    continue
            return keys, False
        return keys, True

    # -- metric families -------------------------------------------------

    def _declared_metric_families(self, ctx: LintContext) -> set[str]:
        declared: set[str] = set()
        for module in ctx.modules:
            aliases = import_aliases(module.tree)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if isinstance(func, ast.Attribute):
                    idx = METRIC_DECLARERS.get(func.attr)
                    if idx is not None:
                        name = self._name_arg(node, idx, "name")
                        if name is not None:
                            declared.add(name)
                        continue
                helper = None
                if isinstance(func, ast.Name):
                    helper = func.id
                    origin = aliases.get(func.id, "")
                    helper = origin.rsplit(".", 1)[-1] if origin else helper
                elif isinstance(func, ast.Attribute):
                    helper = func.attr
                idx = METRIC_DECLARING_HELPERS.get(helper or "")
                if idx is not None:
                    name = self._name_arg(node, idx, "name")
                    if name is not None:
                        declared.add(name)
        return declared

    @staticmethod
    def _name_arg(call: ast.Call, index: int, kwarg: str) -> str | None:
        if len(call.args) > index:
            return _literal_str(call.args[index])
        for kw in call.keywords:
            if kw.arg == kwarg:
                return _literal_str(kw.value)
        return None

    def _audit_metric_reads(
        self,
        project: Project,
        fn: FunctionInfo,
        module: ModuleSource,
        declared: set[str],
    ) -> Iterator[Finding]:
        for node in walk_executed(fn.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("get", "total")
                and node.args
            ):
                continue
            if not self._is_metrics_receiver(project, fn, node.func):
                continue
            name = _literal_str(node.args[0])
            if name is None or name in declared:
                continue
            yield _finding(
                self, module, node,
                f"metric family {name!r} is read but no scanned module "
                f"declares it via counter()/gauge()/histogram(); the "
                f"read returns nothing in production",
            )

    @staticmethod
    def _is_metrics_receiver(
        project: Project, fn: FunctionInfo, func: ast.Attribute
    ) -> bool:
        value = func.value
        if isinstance(value, ast.Name) and value.id in METRIC_RECEIVERS:
            return True
        if isinstance(value, ast.Attribute) and value.attr in METRIC_RECEIVERS:
            return True
        owner = project.expr_class(value, fn)
        return owner is not None and owner.name == "MetricsRegistry"


#: Contract rule classes in id order (the engine instantiates these).
CONTRACT_RULES = (
    NondeterminismTaintRule,
    ContractCrossCheckRule,
)
