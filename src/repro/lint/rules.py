"""simlint AST rules SL001–SL009.

Each rule is a small, self-contained AST analysis.  They are
deliberately *heuristic* — a lint pass earns its keep by being cheap
and running on every commit, not by being a type checker — and every
rule has a baseline escape hatch for justified exceptions
(docs/linting.md).  Shared helpers (parent links, import-alias maps,
unordered-expression classification) live at the top.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Finding, LintContext, ModuleSource, Rule

# ---------------------------------------------------------------------------
# shared AST helpers
# ---------------------------------------------------------------------------


def attach_parents(tree: ast.Module) -> None:
    """Annotate every node with a ``_simlint_parent`` backlink."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._simlint_parent = node  # type: ignore[attr-defined]


def parent_of(node: ast.AST) -> ast.AST | None:
    """The parent node attached by :func:`attach_parents` (or None)."""
    return getattr(node, "_simlint_parent", None)


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """Walk from ``node``'s parent up to the module root."""
    cur = parent_of(node)
    while cur is not None:
        yield cur
        cur = parent_of(cur)


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted origin they import.

    ``import random as r`` maps ``r -> random``; ``from time import
    time`` maps ``time -> time.time``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` as a string for Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_origin(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Fully-qualified origin of a Name/Attribute use, via the imports."""
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    origin = aliases.get(head)
    if origin is None:
        return None
    return f"{origin}.{rest}" if rest else origin


def _finding(rule: Rule, module: ModuleSource, node: ast.AST, message: str) -> Finding:
    line = getattr(node, "lineno", 0)
    return Finding(
        rule=rule.id, path=module.rel, line=line,
        message=message, snippet=module.snippet(line),
    )


# ---------------------------------------------------------------------------
# SL001 — nondeterminism sources
# ---------------------------------------------------------------------------

#: Fully-qualified callables whose results vary run to run.  Wall-clock
#: *measurement* (``time.perf_counter``) is deliberately absent: it may
#: feed profiling output but never simulated state.
NONDETERMINISTIC_ORIGINS = {
    "time.time": "wall-clock time varies per run",
    "time.time_ns": "wall-clock time varies per run",
    "datetime.datetime.now": "wall-clock time varies per run",
    "datetime.datetime.utcnow": "wall-clock time varies per run",
    "datetime.date.today": "wall-clock date varies per run",
    "os.urandom": "OS entropy is unseedable",
    "uuid.uuid1": "uuid1 mixes clock and MAC address",
    "uuid.uuid4": "uuid4 draws OS entropy",
}


class NondeterminismRule(Rule):
    """SL001: unseeded randomness / wall-clock reads in simulation code."""

    id = "SL001"
    title = "nondeterminism source outside common/rng.py"
    rationale = (
        "Every stochastic decision must draw from a SplitRng stream fixed "
        "by the top-level seed; bare random/time/entropy calls make runs "
        "unreproducible and invalidate the paper's seed-controlled results."
    )
    exempt = ("common/rng.py",)

    def check_module(self, module: ModuleSource, ctx: LintContext) -> Iterator[Finding]:
        """Flag random-module use and wall-clock/entropy call sites."""
        aliases = import_aliases(module.tree)
        attach_parents(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            # Only flag *loads* (uses), once, at the outermost chain,
            # and never the import statement itself (the use sites are
            # the actionable findings).
            if not isinstance(node.ctx, ast.Load) or not _outermost_chain(node):
                continue
            origin = resolve_origin(node, aliases)
            if origin is None:
                continue
            if origin == "random" or origin.startswith(("random.", "numpy.random")):
                yield _finding(
                    self, module, node,
                    f"use of {origin!r}: draw from a repro.common.rng.SplitRng "
                    f"stream instead (seeded, splittable)",
                )
            elif origin in NONDETERMINISTIC_ORIGINS:
                yield _finding(
                    self, module, node,
                    f"call to {origin!r}: {NONDETERMINISTIC_ORIGINS[origin]}; "
                    f"simulation state must be a function of the seed",
                )

    def check_tree(self) -> Iterator[Finding]:
        """No whole-tree component."""
        return iter(())


def _outermost_chain(node: ast.AST) -> bool:
    """True unless ``node`` sits inside a larger attribute chain."""
    parent = parent_of(node)
    return not isinstance(parent, ast.Attribute)


# ---------------------------------------------------------------------------
# SL002 — unordered iteration
# ---------------------------------------------------------------------------

#: Calls that consume an iterable order-insensitively.
ORDER_INSENSITIVE_CONSUMERS = frozenset({
    "sorted", "sum", "min", "max", "any", "all", "len",
    "set", "frozenset",
})


class UnorderedIterationRule(Rule):
    """SL002: iteration over a set in order-sensitive code."""

    id = "SL002"
    title = "unordered set iteration"
    rationale = (
        "Set iteration order depends on PYTHONHASHSEED and insertion "
        "history; feeding it into scheduling, arbitration, or stats "
        "emission silently reorders events between runs.  Wrap the "
        "iterable in sorted() or use an ordered container."
    )

    def check_module(self, module: ModuleSource, ctx: LintContext) -> Iterator[Finding]:
        """Flag for-loops/comprehensions whose iterable is a bare set."""
        attach_parents(module.tree)
        for scope in self._scopes(module.tree):
            local_sets = self._local_set_names(scope)
            for node in ast.walk(scope):
                if self._owns(scope, node):
                    yield from self._check_node(module, ctx, node, local_sets)

    @staticmethod
    def _scopes(tree: ast.Module) -> Iterator[ast.AST]:
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    @staticmethod
    def _owns(scope: ast.AST, node: ast.AST) -> bool:
        """True if ``node``'s nearest enclosing scope is ``scope``."""
        for anc in ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc is scope
        return isinstance(scope, ast.Module)

    def _local_set_names(self, scope: ast.AST) -> set[str]:
        """Names assigned an unordered expression within ``scope``."""
        names: set[str] = set()
        # Two passes so order of definition vs. use does not matter for
        # this linear approximation.
        for _ in range(2):
            for node in ast.walk(scope):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name):
                        if self._unordered(node.value, names, frozenset()):
                            names.add(target.id)
                        else:
                            names.discard(target.id)
                elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    from repro.lint.engine import _is_set_annotation

                    if _is_set_annotation(node.annotation):
                        names.add(node.target.id)
        return names

    def _unordered(
        self, expr: ast.expr, local_sets: set[str], set_attrs: frozenset[str]
    ) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            if expr.func.id in ("set", "frozenset"):
                return True
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._unordered(expr.left, local_sets, set_attrs) or (
                self._unordered(expr.right, local_sets, set_attrs)
            )
        if isinstance(expr, ast.Name):
            return expr.id in local_sets or expr.id in set_attrs
        if isinstance(expr, ast.Attribute):
            return expr.attr in set_attrs
        return False

    def _check_node(
        self,
        module: ModuleSource,
        ctx: LintContext,
        node: ast.AST,
        local_sets: set[str],
    ) -> Iterator[Finding]:
        sites: list[tuple[ast.expr, ast.AST]] = []
        if isinstance(node, ast.For):
            sites.append((node.iter, node))
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            # Only the outermost generator's iterable: inner ones are
            # driven per-element and equally order-sensitive, but one
            # report per comprehension is enough.
            sites.append((node.generators[0].iter, node))
        for iterable, site in sites:
            if not self._unordered(iterable, local_sets, ctx.set_attrs):
                continue
            if self._order_insensitive(site):
                continue
            yield _finding(
                self, module, iterable,
                "iteration over an unordered set: wrap in sorted() (or "
                "feed an order-insensitive reduction) so event order "
                "cannot depend on PYTHONHASHSEED",
            )

    @staticmethod
    def _order_insensitive(site: ast.AST) -> bool:
        """True when the iteration result cannot leak its order."""
        if isinstance(site, ast.For):
            return False
        parent = parent_of(site)
        if isinstance(parent, (ast.SetComp, ast.Set)):
            return True
        if isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name):
            return parent.func.id in ORDER_INSENSITIVE_CONSUMERS
        return False

    def check_tree(self) -> Iterator[Finding]:
        """No whole-tree component."""
        return iter(())


# ---------------------------------------------------------------------------
# SL003 — id()-based hashing/ordering
# ---------------------------------------------------------------------------


class IdOrderingRule(Rule):
    """SL003: id() feeding hashing, ordering, or persisted output."""

    id = "SL003"
    title = "id()-based hashing/ordering"
    rationale = (
        "id() is an allocation address: it differs across runs and "
        "interpreters, so any hash, sort key, dict key, or emitted "
        "value derived from it is nondeterministic."
    )

    def check_module(self, module: ModuleSource, ctx: LintContext) -> Iterator[Finding]:
        """Flag every call to the id() builtin."""
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
            ):
                yield _finding(
                    self, module, node,
                    "id() varies per run; key on a stable field "
                    "(node_id, base address, sequence number) instead",
                )

    def check_tree(self) -> Iterator[Finding]:
        """No whole-tree component."""
        return iter(())


# ---------------------------------------------------------------------------
# SL004 — float equality
# ---------------------------------------------------------------------------


class FloatEqualityRule(Rule):
    """SL004: exact float comparison in protocol/predictor logic."""

    id = "SL004"
    title = "float == / != comparison"
    rationale = (
        "Protocol and predictor decisions (confidence thresholds, "
        "speedup ratios) must not branch on exact float equality: "
        "accumulation order changes the low bits, so the branch flips "
        "between otherwise-identical runs.  Compare with a tolerance "
        "or restructure around integers."
    )

    def check_module(self, module: ModuleSource, ctx: LintContext) -> Iterator[Finding]:
        """Flag ==/!= where an operand is statically float-valued."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            chain = [node.left, *node.comparators]
            for idx, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._floaty(chain[idx]) or self._floaty(chain[idx + 1]):
                    yield _finding(
                        self, module, node,
                        "exact float equality: use a tolerance "
                        "(math.isclose) or integer arithmetic",
                    )
                    break

    @staticmethod
    def _floaty(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Constant) and type(expr.value) is float:
            return True
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Div):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            return expr.func.id == "float"
        return False

    def check_tree(self) -> Iterator[Finding]:
        """No whole-tree component."""
        return iter(())


# ---------------------------------------------------------------------------
# SL005 — scheduler event-handler discipline
# ---------------------------------------------------------------------------


class HandlerDisciplineRule(Rule):
    """SL005: scheduler callbacks that run (or capture) too early."""

    id = "SL005"
    title = "scheduler callback discipline"
    rationale = (
        "Handlers registered with scheduler.at()/after() must defer all "
        "state mutation to their fire time.  Passing cb() instead of cb "
        "mutates controller state at registration time; a lambda "
        "capturing a loop variable late-binds it, so every callback "
        "fires against the last iteration's state."
    )

    def check_module(self, module: ModuleSource, ctx: LintContext) -> Iterator[Finding]:
        """Flag immediate-call and loop-captured scheduler callbacks."""
        attach_parents(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in ("at", "after")
                and self._scheduler_like(func.value)
            ):
                continue
            if len(node.args) < 2:
                continue
            callback = node.args[1]
            if isinstance(callback, ast.Call) and not self._is_partial(callback):
                yield _finding(
                    self, module, callback,
                    "callback argument is called at registration time: "
                    "pass the callable (or functools.partial) so the "
                    "mutation happens at the event's grant, not now",
                )
            elif isinstance(callback, ast.Lambda):
                yield from self._late_bindings(module, callback)

    @staticmethod
    def _scheduler_like(expr: ast.expr) -> bool:
        dotted = dotted_name(expr)
        if dotted is None:
            return False
        leaf = dotted.rsplit(".", 1)[-1]
        return "sched" in leaf

    @staticmethod
    def _is_partial(call: ast.Call) -> bool:
        dotted = dotted_name(call.func)
        return dotted is not None and dotted.rsplit(".", 1)[-1] == "partial"

    def _late_bindings(
        self, module: ModuleSource, lam: ast.Lambda
    ) -> Iterator[Finding]:
        bound = {a.arg for a in lam.args.args + lam.args.kwonlyargs}
        loop_vars: set[str] = set()
        for anc in ancestors(lam):
            if isinstance(anc, ast.For):
                loop_vars.update(
                    n.id for n in ast.walk(anc.target) if isinstance(n, ast.Name)
                )
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
        captured = sorted(
            {
                n.id
                for n in ast.walk(lam.body)
                if isinstance(n, ast.Name) and n.id in loop_vars - bound
            }
        )
        if captured:
            yield _finding(
                self, module, lam,
                f"lambda callback late-binds loop variable(s) "
                f"{', '.join(captured)}: bind with a default "
                f"(lambda {captured[0]}={captured[0]}: ...) or "
                f"functools.partial",
            )

    def check_tree(self) -> Iterator[Finding]:
        """No whole-tree component."""
        return iter(())


# ---------------------------------------------------------------------------
# SL006 — NULL_TRACER hot-path discipline
# ---------------------------------------------------------------------------

#: Calls that are expensive enough to matter per-event on a hot path.
EXPENSIVE_CALLS = frozenset({"sorted", "list", "sum", "repr"})

#: Modules allowed to default ``tracer=None`` (the user-facing boundary
#: that converts None into NULL_TRACER).
TRACER_BOUNDARY = ("system/", "obs/", "cli.py")


class TracerGuardRule(Rule):
    """SL006: hot-path tracing must stay free under NULL_TRACER."""

    id = "SL006"
    title = "NULL_TRACER hot-path discipline"
    rationale = (
        "Components hold tracer=NULL_TRACER so the disabled path costs "
        "one no-op call.  A tracer=None default forces per-call None "
        "checks (or crashes); building comprehensions/sorted() eagerly "
        "inside emit() arguments pays the formatting cost even when "
        "tracing is off — guard those sites with "
        "'if tracer is not NULL_TRACER'."
    )

    def check_module(self, module: ModuleSource, ctx: LintContext) -> Iterator[Finding]:
        """Flag tracer=None defaults and unguarded expensive emit args."""
        attach_parents(module.tree)
        boundary = any(
            module.rel == b or (b.endswith("/") and module.rel.startswith(b))
            for b in TRACER_BOUNDARY
        )
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not boundary:
                    yield from self._none_defaults(module, node)
            elif isinstance(node, ast.Call):
                yield from self._eager_emit(module, node)

    def _none_defaults(
        self, module: ModuleSource, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        # Align trailing defaults with their parameters.
        pos_args = fn.args.args[len(fn.args.args) - len(fn.args.defaults):]
        pairs = [
            *zip(pos_args, fn.args.defaults),
            *(
                (a, d)
                for a, d in zip(fn.args.kwonlyargs, fn.args.kw_defaults)
                if d is not None
            ),
        ]
        for arg, default in pairs:
            if (
                arg.arg == "tracer"
                and isinstance(default, ast.Constant)
                and default.value is None
            ):
                yield _finding(
                    self, module, arg,
                    "component takes tracer=None: default to NULL_TRACER "
                    "so the hot path never branches on None",
                )

    def _eager_emit(self, module: ModuleSource, call: ast.Call) -> Iterator[Finding]:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
            return
        owner = dotted_name(func.value)
        if owner is None or owner.rsplit(".", 1)[-1] != "tracer":
            return
        if self._guarded(call):
            return
        for value in [*call.args, *(kw.value for kw in call.keywords)]:
            if self._expensive(value):
                yield _finding(
                    self, module, value,
                    "expensive expression built eagerly in a tracer.emit() "
                    "argument: guard the emit with "
                    "'if ... is not NULL_TRACER' so the disabled path "
                    "stays free",
                )

    @staticmethod
    def _expensive(expr: ast.expr) -> bool:
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            return expr.func.id in EXPENSIVE_CALLS
        return False

    @staticmethod
    def _guarded(call: ast.Call) -> bool:
        for anc in ancestors(call):
            if isinstance(anc, ast.If):
                names = {
                    n.id for n in ast.walk(anc.test) if isinstance(n, ast.Name)
                }
                if "NULL_TRACER" in names:
                    return True
        return False

    def check_tree(self) -> Iterator[Finding]:
        """No whole-tree component."""
        return iter(())


# ---------------------------------------------------------------------------
# SL007 — paper counters go through the metrics registry
# ---------------------------------------------------------------------------

#: Stat names whose increments are mirrored into metric series by a
#: ``metrics.bound_counter`` handle.  A raw ``stats.add`` on one of
#: these bumps the stats counter but silently skips the series, so the
#: ``--metrics`` export and ``summarize()`` drift apart.
PAPER_COUNTERS = frozenset({
    # coherence/controller.py + predictor.py
    "ts_stores", "validates_broadcast", "validates_suppressed",
    "validates_cancelled", "revalidations",
    "ts_detects", "validates_sent",
    "useful_by_external_req", "useful_by_snoop_response",
    "useless_by_snoop_response",
    # sle/engine.py
    "candidates", "filtered_by_confidence", "attempts", "successes",
    "restarts", "fallback_acquisitions",
})

#: Dotted stat-name prefixes with per-family bound handles.
PAPER_COUNTER_PREFIXES = ("txn.", "failure.", "lvp.", "miss.")

#: Directories the rule applies to (where the bound handles live).
METRICS_SCOPE = ("coherence/", "lvp/", "sle/")


class MetricsRegistryRule(Rule):
    """SL007: paper counters mutated directly instead of via handles."""

    id = "SL007"
    title = "paper counter bypasses the metrics registry"
    rationale = (
        "Paper-level counters in the coherence/LVP/SLE layers are "
        "instrumented with metrics.bound_counter handles that bump the "
        "stats counter and the labeled metric series together.  A raw "
        "stats.add on one of those names updates only the stats side, "
        "so `repro-sim run --metrics` and summarize() disagree — "
        "increment the pre-bound handle (self._m_*) instead."
    )

    def check_module(self, module: ModuleSource, ctx: LintContext) -> Iterator[Finding]:
        """Flag ``stats.add(<paper counter>, ...)`` in scoped modules."""
        if not module.rel.startswith(METRICS_SCOPE):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "add"):
                continue
            owner = dotted_name(func.value)
            if owner is None or owner.rsplit(".", 1)[-1].lstrip("_") != "stats":
                continue
            name = self._static_prefix(node.args[0])
            if name is None:
                continue
            if name in PAPER_COUNTERS or name.startswith(PAPER_COUNTER_PREFIXES):
                yield _finding(
                    self, module, node,
                    f"direct stats.add({name!r}): this counter has a "
                    f"metrics.bound_counter handle; increment the handle "
                    f"so the metric series stays in step",
                )

    @staticmethod
    def _static_prefix(arg: ast.expr) -> str | None:
        """The statically-known leading text of a counter-name arg."""
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        if isinstance(arg, ast.JoinedStr) and arg.values:
            head = arg.values[0]
            if isinstance(head, ast.Constant) and isinstance(head.value, str):
                return head.value
        return None

    def check_tree(self) -> Iterator[Finding]:
        """No whole-tree component."""
        return iter(())


# ---------------------------------------------------------------------------
# SL008 — span discipline
# ---------------------------------------------------------------------------

#: Directories where span instrumentation must keep begin/end paired.
#: ``service/`` entered the scope with the distributed job traces: the
#: queue/shard mint ``job``/``cell.lease``/``cell.run`` spans into the
#: :class:`~repro.obs.jobtrace.JobTraceStore` under the same
#: begin/end API, so the same discipline applies.
SPAN_SCOPE = ("coherence/", "lvp/", "sle/", "service/")


class SpanDisciplineRule(Rule):
    """SL008: span_begin without a kept id or a reachable span_end."""

    id = "SL008"
    title = "span begin/end discipline broken"
    rationale = (
        "Every tracer span must be closable: span_begin returns the id "
        "that span_end needs, so discarding it orphans the span (it "
        "shows open forever in the provenance report and Chrome "
        "export).  A module that only ever opens spans has the same "
        "problem unless its spans are closed elsewhere by design — use "
        "the tracer.span(...) context-manager helper, keep the id on "
        "the object that ends it, or baseline with a justification."
    )

    def check_module(self, module: ModuleSource, ctx: LintContext) -> Iterator[Finding]:
        """Flag discarded span ids and begin-only modules in scope."""
        if not module.rel.startswith(SPAN_SCOPE):
            return
        attach_parents(module.tree)
        begins: list[ast.Call] = []
        has_end = False
        has_ctx_helper = False
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = self._span_call(node)
                if name == "span_begin":
                    begins.append(node)
                elif name == "span_end":
                    has_end = True
                elif name == "span" and isinstance(
                    parent_of(node), ast.withitem
                ):
                    has_ctx_helper = True
        for call in begins:
            if isinstance(parent_of(call), ast.Expr):
                yield _finding(
                    self, module, call,
                    "span_begin's span id is discarded; nothing can "
                    "span_end this span — keep the id (or use the "
                    "tracer.span(...) context manager)",
                )
        if begins and not has_end and not has_ctx_helper:
            yield _finding(
                self, module, begins[0],
                "module opens spans (span_begin) but never closes one "
                "(no span_end, no `with ...span(...)`); spans must be "
                "closable in the layer that owns their lifetime",
            )

    @staticmethod
    def _span_call(call: ast.Call) -> str | None:
        """The span-API method name when ``call`` is ``<x>.span*(...)``."""
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in (
            "span_begin", "span_end", "span",
        ):
            return func.attr
        return None

    def check_tree(self) -> Iterator[Finding]:
        """No whole-tree component."""
        return iter(())


# ---------------------------------------------------------------------------
# SL009 — service events come from the registry
# ---------------------------------------------------------------------------

#: Directory whose modules may only emit declared service events.
SERVICE_SCOPE = ("service/",)

#: The module that *defines* the registry (and the EventLog.emit
#: validator itself) — exempt, or the rule would flag its own docs.
SERVICE_EVENTS_MODULE = "service/events.py"


class ServiceEventRegistryRule(Rule):
    """SL009: service code emits an event the registry doesn't declare."""

    id = "SL009"
    title = "service event not declared in the event registry"
    rationale = (
        "The service's observability contract is its named-event "
        "registry (repro.service.events.EVENT_SPECS): clients follow "
        "job streams and CI smoke checks grep for these names, so an "
        "emit of an undeclared or dynamically-built name only fails "
        "at runtime — declare the event (name + required fields) in "
        "EVENT_SPECS and emit the literal name."
    )

    def check_module(self, module: ModuleSource, ctx: LintContext) -> Iterator[Finding]:
        """Flag ``<x>.emit(...)`` with undeclared or non-literal names."""
        if not module.rel.startswith(SERVICE_SCOPE):
            return
        if module.rel == SERVICE_EVENTS_MODULE:
            return
        declared = self._declared_names()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
                continue
            if not node.args:
                yield _finding(
                    self, module, node,
                    "emit() without a positional event name; pass the "
                    "declared event name as a string literal",
                )
                continue
            arg = node.args[0]
            if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
                yield _finding(
                    self, module, node,
                    "emit() with a dynamically-built event name; the "
                    "registry can only vouch for literal names — emit "
                    "a string literal declared in EVENT_SPECS",
                )
                continue
            if declared is not None and arg.value not in declared:
                yield _finding(
                    self, module, node,
                    f"emit({arg.value!r}): not declared in "
                    f"repro.service.events.EVENT_SPECS; declare the "
                    f"event (name + required fields) before emitting it",
                )

    @staticmethod
    def _declared_names() -> frozenset[str] | None:
        """The registry's declared names (None if unimportable)."""
        try:
            from repro.service.events import EVENT_NAMES
        except Exception:  # pragma: no cover - registry always importable
            return None
        return EVENT_NAMES

    def check_tree(self) -> Iterator[Finding]:
        """No whole-tree component."""
        return iter(())


#: AST rule classes in id order (the engine instantiates these).
AST_RULES = (
    NondeterminismRule,
    UnorderedIterationRule,
    IdOrderingRule,
    FloatEqualityRule,
    HandlerDisciplineRule,
    TracerGuardRule,
    MetricsRegistryRule,
    SpanDisciplineRule,
    ServiceEventRegistryRule,
)
