"""simlint rule engine: file discovery, AST pass, finding plumbing.

The engine parses every target file once, runs a *context pass* that
collects cross-file facts rules need (which attribute names are
``set``-typed anywhere in the tree), then hands each module to every
enabled :class:`Rule`.  Table-audit rules (no source file) run once per
invocation.  Findings are plain data; suppression is the
:mod:`~repro.lint.baseline` layer's job so the engine stays pure.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True)
class Finding:
    """One rule violation at one site.

    ``path`` is posix-style and repo-relative when the engine can make
    it so; table-audit findings use a ``protocol:`` pseudo-path.
    ``snippet`` is the stripped source line — it, not the line number,
    feeds the baseline fingerprint so suppressions survive unrelated
    edits above the site.
    """

    rule: str
    path: str
    line: int
    message: str
    snippet: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number free)."""
        basis = f"{self.rule}|{self.path}|{self.snippet or self.message}"
        return hashlib.sha256(basis.encode()).hexdigest()[:16]

    def to_json(self) -> dict:
        """Flatten to the JSON wire form (includes the fingerprint)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }


@dataclass
class ModuleSource:
    """One parsed target file."""

    path: Path
    rel: str  # posix, package-relative (e.g. "coherence/bus.py")
    text: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def snippet(self, lineno: int) -> str:
        """The stripped source line at 1-based ``lineno``."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


@dataclass
class LintContext:
    """Cross-file facts collected before rules run."""

    # Attribute/variable names annotated or initialized as sets
    # anywhere in the scanned tree (SL002 uses these to recognize
    # `entry.sharers`-style iterables without type inference).
    set_attrs: frozenset[str] = frozenset()
    # Every parsed module, for whole-program (check_project) rules.
    modules: tuple[ModuleSource, ...] = ()
    _project: object = field(default=None, repr=False)

    def project(self):
        """The (lazily built, cached) whole-program call graph."""
        if self._project is None:
            from repro.lint.callgraph import build_project

            self._project = build_project(self.modules)
        return self._project


class Rule:
    """Base class for simlint rules.

    AST rules override :meth:`check_module`; whole-tree rules (the
    protocol-table audit) override :meth:`check_tree`.  ``id`` /
    ``title`` / ``rationale`` feed ``--list-rules`` and the docs.
    """

    id = "SL000"
    title = "abstract rule"
    rationale = ""
    # Package-relative posix paths (or directory prefixes ending in /)
    # exempt from this rule.
    exempt: tuple[str, ...] = ()

    def is_exempt(self, rel: str) -> bool:
        """True if the module at ``rel`` is exempt from this rule."""
        return any(
            rel == e or (e.endswith("/") and rel.startswith(e))
            for e in self.exempt
        )

    def check_module(self, module: ModuleSource, ctx: LintContext) -> Iterator[Finding]:
        """Yield findings for one parsed module (AST rules)."""
        return iter(())

    def check_tree(self) -> Iterator[Finding]:
        """Yield whole-tree findings (table-audit rules)."""
        return iter(())

    def check_project(self, ctx: LintContext) -> Iterator[Finding]:
        """Yield whole-program findings (call-graph / dataflow rules).

        Runs once per invocation with every parsed module available in
        ``ctx.modules`` and the call graph via ``ctx.project()``.
        Implementations must honour :meth:`is_exempt` per finding
        module themselves.
        """
        return iter(())


@dataclass
class LintResult:
    """Outcome of one :func:`run_lint` invocation."""

    findings: list[Finding]          # new findings (not baselined)
    suppressed: list[Finding]        # matched a baseline entry
    unused_baseline: list[str]       # fingerprints that matched nothing
    files_scanned: int
    rules: list[str]
    stats: dict = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True when no new findings remain after suppression."""
        return not self.findings

    def to_json(self) -> dict:
        """The JSON document ``repro-sim lint --format json`` emits."""
        return {
            "version": 1,
            "clean": self.clean,
            "files_scanned": self.files_scanned,
            "rules": self.rules,
            "findings": [f.to_json() for f in self.findings],
            "suppressed": [f.to_json() for f in self.suppressed],
            "unused_baseline": sorted(self.unused_baseline),
            "stats": self.stats,
        }


def _iter_py_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def _relative(path: Path, roots: Sequence[Path]) -> str:
    for root in roots:
        base = root if root.is_dir() else root.parent
        try:
            rel = path.resolve().relative_to(base.resolve()).as_posix()
        except ValueError:
            continue
        if rel != ".":
            return rel
    return path.as_posix()


def _is_set_annotation(node: ast.expr | None) -> bool:
    """True for ``set``, ``set[...]``, ``Set[...]``, ``frozenset[...]``."""
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")
    if isinstance(node, ast.Attribute):  # typing.Set etc.
        return node.attr in ("Set", "FrozenSet", "AbstractSet")
    return False


def _set_assign_target(node: ast.AST) -> ast.expr | None:
    """The target of a set-typed assignment, or None."""
    if isinstance(node, ast.AnnAssign) and _is_set_annotation(node.annotation):
        return node.target
    if isinstance(node, ast.Assign) and len(node.targets) == 1:
        value = node.value
        # x = set() / x = field(default_factory=set)
        factory = (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("set", "frozenset")
        )
        if isinstance(value, ast.Call) and not factory:
            factory = any(
                kw.arg == "default_factory"
                and isinstance(kw.value, ast.Name)
                and kw.value.id in ("set", "frozenset")
                for kw in value.keywords
            )
        if factory:
            return node.targets[0]
    return None


def _collect_set_attrs(trees: Iterable[ast.Module]) -> frozenset[str]:
    """Set-typed *attribute* and module/class-level names, tree-wide.

    Function-local names are deliberately excluded: SL002 tracks those
    per scope, and registering them globally would make every
    same-named attribute elsewhere (e.g. ``ast.Import.names``) look
    like a set.
    """
    names: set[str] = set()

    def visit(node: ast.AST, in_function: bool) -> None:
        target = _set_assign_target(node)
        if target is not None:
            if isinstance(target, ast.Attribute):
                names.add(target.attr)
            elif isinstance(target, ast.Name) and not in_function:
                names.add(target.id)
        entering = in_function or isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        )
        for child in ast.iter_child_nodes(node):
            visit(child, entering)

    for tree in trees:
        visit(tree, False)
    return frozenset(names)


def default_target() -> Path:
    """The installed ``repro`` package directory (the default scan root)."""
    import repro

    return Path(repro.__file__).parent


def all_rules() -> "list[Rule]":
    """Fresh instances of every registered rule, audit rules last."""
    from repro.lint.concurrency import CONCURRENCY_RULES
    from repro.lint.contracts import CONTRACT_RULES
    from repro.lint.rules import AST_RULES
    from repro.lint.table_audit import AUDIT_RULES

    return [
        cls()
        for cls in AST_RULES + CONCURRENCY_RULES + CONTRACT_RULES + AUDIT_RULES
    ]


#: Registry of every rule class, in rule-id order.
def _registry() -> dict:
    return {rule.id: type(rule) for rule in all_rules()}


class _LazyRegistry(dict):
    """Import-cycle-free view of the rule registry (id -> class)."""

    def _fill(self) -> None:
        if not super().__len__():
            super().update(_registry())

    def __getitem__(self, key):  # dict protocol
        self._fill()
        return super().__getitem__(key)

    def __iter__(self):  # dict protocol
        self._fill()
        return super().__iter__()

    def __len__(self):  # dict protocol
        self._fill()
        return super().__len__()

    def __contains__(self, key):  # dict protocol
        self._fill()
        return super().__contains__(key)

    def keys(self):
        """Rule ids (fills the registry on first use)."""
        self._fill()
        return super().keys()

    def items(self):
        """(id, class) pairs (fills the registry on first use)."""
        self._fill()
        return super().items()

    def values(self):
        """Rule classes (fills the registry on first use)."""
        self._fill()
        return super().values()


ALL_RULES = _LazyRegistry()


def run_lint(
    paths: Sequence[Path | str] | None = None,
    rules: Sequence[str] | None = None,
    baseline=None,
    audit: bool = True,
) -> LintResult:
    """Run simlint and return a :class:`LintResult`.

    ``paths`` defaults to the installed ``repro`` package; ``rules``
    filters by rule id (unknown ids raise ``ValueError``); ``baseline``
    is a :class:`~repro.lint.baseline.Baseline` (or None); ``audit``
    switches the protocol-table audit layer on/off.
    """
    roots = [Path(p) for p in paths] if paths else [default_target()]
    selected = _select_rules(rules, audit)
    if audit:
        from repro.lint.table_audit import _AuditRule

        _AuditRule.reset_cache()

    modules: list[ModuleSource] = []
    findings: list[Finding] = []
    for path in _iter_py_files(roots):
        text = path.read_text()
        rel = _relative(path, roots)
        try:
            tree = ast.parse(text)
        except SyntaxError as exc:
            findings.append(Finding(
                rule="SL000", path=rel, line=exc.lineno or 0,
                message=f"syntax error: {exc.msg}",
            ))
            continue
        modules.append(ModuleSource(
            path=path, rel=rel, text=text, tree=tree,
            lines=text.splitlines(),
        ))

    ctx = LintContext(
        set_attrs=_collect_set_attrs(m.tree for m in modules),
        modules=tuple(modules),
    )
    for rule in selected:
        for module in modules:
            if rule.is_exempt(module.rel):
                continue
            findings.extend(rule.check_module(module, ctx))
        findings.extend(rule.check_tree())
        findings.extend(rule.check_project(ctx))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    new, suppressed, unused = findings, [], []
    if baseline is not None:
        new, suppressed, unused = baseline.partition(findings)

    stats: dict = {
        "files_scanned": len(modules),
        "rules_run": len(selected),
        "findings_per_rule": {},
    }
    per_rule: dict[str, int] = {}
    for finding in findings:
        per_rule[finding.rule] = per_rule.get(finding.rule, 0) + 1
    stats["findings_per_rule"] = dict(sorted(per_rule.items()))
    if ctx._project is not None:
        project = ctx.project()
        stats["callgraph"] = {
            "functions": len(project.functions),
            "classes": sum(len(v) for v in project.classes.values()),
            "edges": project.edge_count,
        }
    return LintResult(
        findings=new,
        suppressed=suppressed,
        unused_baseline=unused,
        files_scanned=len(modules),
        rules=[r.id for r in selected],
        stats=stats,
    )


def _select_rules(rules: Sequence[str] | None, audit: bool) -> "list[Rule]":
    instances = all_rules()
    if not audit:
        instances = [r for r in instances if not r.id.startswith("SL1")]
    if rules:
        known = {r.id for r in instances}
        unknown = sorted(set(rules) - known)
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(unknown)} "
                f"(choose from {', '.join(sorted(known))})"
            )
        wanted = set(rules)
        instances = [r for r in instances if r.id in wanted]
    return instances
