"""Protocol logic base class and dispatch.

A :class:`ProtocolLogic` encodes the *state transition rules* of one
protocol; the :class:`~repro.coherence.controller.CoherenceController`
drives the generic request/snoop flow and delegates every state
decision here.  Snooping is two-phase to match the atomic-bus model:

1. ``snoop_query`` — read-only: would this cache assert the shared
   line, and can it supply the data?
2. ``snoop_apply`` — performs the state transition, knowing the
   aggregate :class:`~repro.coherence.messages.SnoopResult` (e.g. a
   T-state line only survives a Read if no dirty owner flushed a new
   value).

The concrete subclasses live in :mod:`repro.coherence.mesi`,
:mod:`~repro.coherence.moesi`, :mod:`~repro.coherence.mesti`, and
:mod:`~repro.coherence.emesti`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.config import ProtocolConfig, ProtocolKind
from repro.common.errors import ProtocolError
from repro.coherence.messages import SnoopResult, TxnKind
from repro.coherence.states import LineState
from repro.memory.cache import CacheLine


@dataclass
class SnoopQuery:
    """Read-only snoop answer from one remote cache."""

    assert_shared: bool = False
    can_supply: bool = False


@dataclass(frozen=True)
class TransitionRecord:
    """One exercised row of a protocol's transition table.

    ``side`` is ``"remote"`` for snooped transitions and ``"local"``
    for requester-side ones (fills, upgrades, validates, evictions).
    ``pre`` is the state letter before the event (``"-"`` for an
    absent line), ``event`` a row label such as ``"ReadX+flush"`` or
    ``"fill.Read.S"``, and ``post`` the state letter afterwards.
    """

    side: str
    pre: str
    event: str
    post: str

    @property
    def key(self) -> tuple[str, str, str]:
        """The (side, pre, event) row identity, ignoring the outcome."""
        return (self.side, self.pre, self.event)


TransitionObserver = Callable[[TransitionRecord], None]


class ProtocolLogic:
    """Base class for all protocol variants.

    Subclasses override the three capability properties and, where the
    behavior differs, the transition hooks.  The base implements plain
    MESI; every extension is expressed as a delta.
    """

    kind: ProtocolKind = ProtocolKind.MESI

    def __init__(self, config: ProtocolConfig):
        self.config = config
        # Transition observer (verification hook): when set, every
        # applied snoop transition — and any requester-side transition
        # the caller reports via :meth:`note_transition` — is recorded.
        # The model checker uses this for table-coverage reporting; it
        # is ``None`` (a single attribute test) in simulation runs.
        self.observer: Optional[TransitionObserver] = None

    # -- capabilities ---------------------------------------------------

    @property
    def has_owned(self) -> bool:
        """Protocol includes the O (dirty shared) state."""
        return self.kind.has_owned_state

    @property
    def has_temporal(self) -> bool:
        """Protocol includes the T (temporally invalid) state."""
        return self.kind.has_temporal_state

    @property
    def enhanced(self) -> bool:
        """Protocol includes Validate_Shared + the useful snoop response."""
        return False

    # -- introspection (verification support) ---------------------------

    def states(self) -> tuple[LineState, ...]:
        """The stable states this protocol variant can install."""
        out = [LineState.I, LineState.S, LineState.E, LineState.M]
        if self.has_owned:
            out.append(LineState.O)
        if self.has_temporal:
            out.append(LineState.T)
        if self.enhanced:
            out.append(LineState.VS)
        return tuple(out)

    @property
    def name(self) -> str:
        """Human-readable variant name (``E-MESTI`` for the enhanced one)."""
        return f"E-{self.kind.value}" if self.enhanced else self.kind.value

    def note_transition(self, side: str, pre: str, event: str, post: str) -> None:
        """Report one exercised transition-table row to the observer."""
        if self.observer is not None:
            self.observer(TransitionRecord(side, pre, event, post))

    def remote_event_labels(self) -> tuple[str, ...]:
        """Every remote-side row label this protocol's table can see.

        Reads/ReadXs split into plain and ``+flush`` variants (see
        :meth:`snoop_event_label`); the rest appear once.  Static
        tooling (``repro-sim lint``'s table audit, the verify coverage
        probe) crosses these with :meth:`states` to enumerate the full
        table.
        """
        labels: list[str] = []
        for kind in TxnKind:
            labels.append(kind.value)
            if kind in (TxnKind.READ, TxnKind.READX):
                labels.append(f"{kind.value}+flush")
        return tuple(labels)

    def probe_remote(self, pre: LineState, label: str) -> str:
        """Statically probe one remote table row, without a simulation.

        Runs the real ``snoop_query`` + ``snoop_apply`` code against a
        synthetic one-word line in state ``pre`` for the event
        ``label`` (a :meth:`remote_event_labels` entry).  Returns the
        post-state letter, or ``"illegal"`` when the implementation
        deliberately raises :class:`ProtocolError`.  Any *other*
        exception propagates — to a static auditor that is a table
        hole, not a legal outcome.  The observer is suppressed for the
        duration: probes are not coverage.
        """
        flush = label.endswith("+flush")
        kind = TxnKind(label.removesuffix("+flush"))
        line = CacheLine(1)
        line.base = 0
        line.state = pre
        line.data = [0]
        line.visible = [0]
        result = SnoopResult(dirty_owner=0 if flush else None)
        saved, self.observer = self.observer, None
        try:
            self.snoop_query(line, kind)
            self.snoop_apply(line, kind, result)
        except ProtocolError:
            return "illegal"
        finally:
            self.observer = saved
        return line.state.value

    @staticmethod
    def snoop_event_label(kind: TxnKind, result: SnoopResult) -> str:
        """Coverage row label for a snooped transaction.

        Reads and ReadXs behave differently at a T copy depending on
        whether a dirty owner flushed (a new value became globally
        visible), so the flush variant is a distinct table row.
        """
        flush = result.dirty_owner is not None and kind in (
            TxnKind.READ, TxnKind.READX
        )
        return f"{kind.value}+flush" if flush else kind.value

    # -- requester-side transitions -------------------------------------

    def fill_state(self, kind: TxnKind, result: SnoopResult) -> LineState:
        """State installed at the requester when its transaction completes."""
        if kind is TxnKind.READ:
            return LineState.S if result.shared else LineState.E
        if kind in (TxnKind.READX, TxnKind.UPGRADE):
            return LineState.M
        raise ProtocolError(f"no fill state for {kind}")

    def post_validate_state(self) -> LineState:
        """Owner state after broadcasting a validate.

        The owner forgoes exclusivity (§2.2).  With an O state the dirty
        reverted data stays on-chip as dirty-shared; without one the
        validate implies a writeback so memory matches the shared copy.
        """
        return LineState.O if self.has_owned else LineState.S

    @property
    def validate_writes_back(self) -> bool:
        """True if a validate must also update memory (no O state)."""
        return not self.has_owned

    def revalidated_state(self) -> LineState:
        """State a remote T line enters on receiving a validate."""
        return LineState.S

    # -- remote-side snooping --------------------------------------------

    def snoop_query(self, line: CacheLine, kind: TxnKind) -> SnoopQuery:
        """Phase 1: shared-line assertion and data-supply capability."""
        state = line.state
        if kind in (TxnKind.READ, TxnKind.READX):
            return SnoopQuery(
                assert_shared=self._asserts_shared(state, kind),
                can_supply=state.dirty,
            )
        if kind is TxnKind.UPGRADE:
            if state in (LineState.M, LineState.E):
                raise ProtocolError(
                    f"remote {state.value} line snooped an Upgrade: the "
                    f"requester cannot have held a shared copy"
                )
            return SnoopQuery(assert_shared=self._asserts_shared(state, kind))
        return SnoopQuery()

    def _asserts_shared(self, state: LineState, kind: TxnKind) -> bool:
        """Whether ``state`` asserts the shared line for ``kind``.

        Plain protocols assert it from any valid state.  Enhanced MESTI
        overrides this for Validate_Shared on invalidating transactions
        (the useful snoop response, Figure 3).
        """
        return state.valid

    def snoop_apply(
        self, line: CacheLine, kind: TxnKind, result: SnoopResult
    ) -> None:
        """Phase 2: apply this remote cache's state transition."""
        state = line.state
        if kind is TxnKind.READ:
            self._apply_read(line, state, result)
        elif kind in (TxnKind.READX, TxnKind.UPGRADE):
            self._apply_invalidate(line, state, kind, result)
        elif kind is TxnKind.VALIDATE:
            self._apply_validate(line, state)
        elif kind is TxnKind.WRITEBACK:
            self._apply_writeback(line, state)
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"unknown transaction kind {kind}")
        if self.observer is not None:
            self.note_transition(
                "remote",
                state.value,
                self.snoop_event_label(kind, result),
                line.state.value,
            )

    def _apply_read(
        self, line: CacheLine, state: LineState, result: SnoopResult
    ) -> None:
        if state is LineState.M:
            # Our data was flushed to the requester: it is now globally
            # visible.  Without an O state we also write back to memory
            # (the controller performs the memory update).
            line.visible = list(line.data)
            line.diverged = False
            line.state = LineState.O if self.has_owned else LineState.S
            if not self.has_owned:
                line.dirty_mask = 0
        elif state is LineState.E:
            line.state = LineState.S
        elif state is LineState.T:
            # A dirty flush makes a new value globally visible; the
            # saved version can no longer match a future validate.
            if result.dirty_owner is not None:
                line.state = LineState.I
        # S, O, VS, I: unchanged on a Read.

    def _apply_invalidate(
        self, line: CacheLine, state: LineState, kind: TxnKind, result: SnoopResult
    ) -> None:
        if state is LineState.T:
            # The saved value survives an Upgrade (the upgrader held the
            # same globally visible copy we saved) but not a ReadX whose
            # data came from a dirty owner (a newer value became
            # visible in the flush).
            if kind is TxnKind.READX and result.dirty_owner is not None:
                line.state = LineState.I
            return
        if not state.valid:
            return
        if self.has_temporal:
            # Figure 2: a valid copy enters T on an invalidate, saving
            # the last globally visible value it currently holds.
            line.state = LineState.T
            line.dirty_mask = 0
        else:
            line.state = LineState.I
            line.dirty_mask = 0

    def _apply_validate(self, line: CacheLine, state: LineState) -> None:
        if state is LineState.T:
            line.state = self.revalidated_state()
        elif state in (LineState.S, LineState.VS):
            # A read granted between the validate's issue and its grant
            # gave us the (already reverted) value; nothing to do.
            pass
        elif state.valid:
            raise ProtocolError(
                f"validate snooped by a line in {state.value}: the "
                f"validating owner must have held the only valid copy"
            )
        # I: stays I (no saved value to re-install).

    def _apply_writeback(self, line: CacheLine, state: LineState) -> None:
        if state is LineState.T:
            # Conservative: a writeback publishes the owner's (possibly
            # new) value to memory; drop the saved version.
            line.state = LineState.I


def make_protocol(config: ProtocolConfig) -> ProtocolLogic:
    """Instantiate the protocol logic selected by ``config``."""
    from repro.coherence.emesti import EnhancedMestiProtocol
    from repro.coherence.mesi import MesiProtocol
    from repro.coherence.mesti import MestiProtocol, MoestiProtocol
    from repro.coherence.moesi import MoesiProtocol

    if config.enhanced:
        return EnhancedMestiProtocol(config)
    table = {
        ProtocolKind.MESI: MesiProtocol,
        ProtocolKind.MOESI: MoesiProtocol,
        ProtocolKind.MESTI: MestiProtocol,
        ProtocolKind.MOESTI: MoestiProtocol,
    }
    return table[config.kind](config)
