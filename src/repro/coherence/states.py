"""Cache line coherence states.

The union of all states used by the protocol family:

* ``M``, ``E``, ``S``, ``I`` — conventional MESI.
* ``O`` — dirty shared owner (MOESI baseline, Gigaplane-XB style).
* ``T`` — *temporally invalid* (MESTI, Figure 2): the line is invalid
  for access but retains the last globally visible value so a validate
  can re-install it.
* ``VS`` — *Validate_Shared* (Enhanced MESTI, Figure 3): entered from T
  on a validate; semantically S for local requests, but it does **not**
  assert the shared snoop response on an external ReadX/Upgrade, which
  is how the useful snoop response distinguishes validates that
  prevented a miss from useless ones.
"""

from __future__ import annotations

import enum


class LineState(enum.Enum):
    """Coherence state of one cache line (union over all protocols)."""

    I = "I"  # noqa: E741 - conventional protocol letter
    S = "S"
    E = "E"
    M = "M"
    O = "O"  # noqa: E741 - conventional protocol letter
    T = "T"
    VS = "VS"

    @property
    def readable(self) -> bool:
        """Line satisfies loads locally without a bus transaction."""
        return self in _READABLE

    @property
    def writable(self) -> bool:
        """Line satisfies stores locally without a bus transaction."""
        return self in (LineState.M, LineState.E)

    @property
    def dirty(self) -> bool:
        """This cache is responsible for the only up-to-date copy."""
        return self in (LineState.M, LineState.O)

    @property
    def valid(self) -> bool:
        """Line holds architecturally current data."""
        return self in _READABLE

    @property
    def holds_stale_data(self) -> bool:
        """Line data is present but stale (usable for LVP / validates)."""
        return self is LineState.T

    @property
    def index(self) -> int:
        """Stable small integer for canonical state encodings.

        The model checker (:mod:`repro.verify`) encodes global states as
        tuples of ints so symmetric states compare and hash cheaply.
        """
        return _STATE_ORDER[self]

    @classmethod
    def parse(cls, text: str) -> "LineState":
        """Parse a state letter (case-insensitive), raising ``KeyError``."""
        return cls[text.upper()]


_READABLE = frozenset(
    {LineState.S, LineState.E, LineState.M, LineState.O, LineState.VS}
)

_STATE_ORDER = {state: i for i, state in enumerate(LineState)}
