"""Coherence substrate: snooping bus, protocol FSMs, validate prediction.

The protocol family implemented here follows the paper's Figure 2
(MESTI), Figure 3 (Enhanced MESTI with the useful snoop response), and
Figure 4 (the address-based useful-validate predictor), layered over
conventional MESI/MOESI bases.
"""

from repro.coherence.states import LineState
from repro.coherence.messages import BusTransaction, SnoopResult, TxnKind
from repro.coherence.protocol import ProtocolLogic, make_protocol
from repro.coherence.predictor import UsefulValidatePredictor
from repro.coherence.bus import SnoopBus
from repro.coherence.controller import CoherenceController

__all__ = [
    "LineState",
    "BusTransaction",
    "SnoopResult",
    "TxnKind",
    "ProtocolLogic",
    "make_protocol",
    "UsefulValidatePredictor",
    "SnoopBus",
    "CoherenceController",
]
