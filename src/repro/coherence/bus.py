"""Split-transaction snooping bus with an atomic-grant coherence model.

Address transactions queue for the shared address bus (FIFO, one grant
per ``addr_occupancy`` cycles).  At grant time the transaction is
*atomic*: all remote caches are snoop-queried, the aggregate result is
applied everywhere, and memory updates happen instantly — so the
protocol has no transient states.  All latency is modeled around that
atomic point: the requester's completion fires ``addr_latency`` cycles
after grant for dataless transactions and after the data-network
delivery (min ``data_latency``, serialized at ``data_occupancy``) for
Read/ReadX.

Per-transaction jitter (``MachineConfig.latency_jitter``) injects the
small timing perturbations used by the Alameldeen–Wood variability
methodology the paper adopts for its 95% confidence intervals.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.common.config import BusConfig
from repro.common.events import Scheduler
from repro.common.rng import SplitRng
from repro.common.stats import ScopedStats
from repro.coherence.messages import BusTransaction, TxnKind
from repro.memory.mainmem import MainMemory
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER


class SnoopClient(Protocol):
    """What the bus needs from each attached coherence controller."""

    node_id: int

    def pre_grant(self, txn: BusTransaction) -> bool:
        """Fix up or cancel the requester's transaction at grant."""

    def on_grant(self, txn: BusTransaction, data: "list[int] | None") -> None:
        """Install the requester's state change at the atomic grant."""

    def snoop_query(self, txn: BusTransaction) -> "object":
        """Phase 1: shared/supply responses for a remote transaction."""

    def snoop_apply(self, txn: BusTransaction) -> None:
        """Phase 2: apply this cache's state transition."""

    def supply_data(self, txn: BusTransaction) -> list[int]:
        """Flush the dirty line's data to the requester."""


CompletionCallback = Callable[[BusTransaction, "list[int] | None"], None]


class SnoopBus:
    """The address network plus the data crossbar."""

    def __init__(
        self,
        scheduler: Scheduler,
        config: BusConfig,
        memory: MainMemory,
        stats: ScopedStats,
        jitter: int = 0,
        rng: SplitRng | None = None,
        tracer=NULL_TRACER,
        metrics=NULL_METRICS,
    ):
        self.scheduler = scheduler
        self.config = config
        self.memory = memory
        self.stats = stats
        self.tracer = tracer
        self._jitter = jitter
        self._rng = rng or SplitRng("bus")
        self._clients: list[SnoopClient] = []
        self._addr_free_at = 0
        self._data_free_at = 0
        self._queue_hist = metrics.bind_histogram(
            stats.histogram("queue_depth"),
            "repro_bus_queue_depth", "Address-network queue depth at request",
            network="bus",
        )
        # Per-kind transaction counters, resolved once: the bus grants
        # millions of transactions, so the hot path must not rebuild
        # counter names (or label lookups) per grant.
        self._txn_counters = {
            kind: metrics.bound_counter(
                stats, f"txn.{kind.value.lower()}",
                "repro_bus_txn_total", "Address transactions by kind",
                kind=kind.value.lower(),
            )
            for kind in TxnKind
        }
        self._txn_cancelled = metrics.bound_counter(
            stats, "txn.cancelled",
            "repro_bus_txn_total", "Address transactions by kind",
            kind="cancelled",
        )
        self._txn_total = stats.counter("txn.total")
        self._data_from_cache = metrics.bound_counter(
            stats, "txn.cache_to_cache",
            "repro_bus_data_source_total", "Data responses by source",
            source="cache",
        )
        self._data_from_memory = metrics.bound_counter(
            stats, "txn.from_memory",
            "repro_bus_data_source_total", "Data responses by source",
            source="memory",
        )

    def attach(self, client: SnoopClient) -> None:
        """Register a coherence controller on the bus."""
        self._clients.append(client)

    @property
    def n_clients(self) -> int:
        """Number of attached controllers."""
        return len(self._clients)

    def request(
        self, txn: BusTransaction, on_complete: CompletionCallback | None = None
    ) -> None:
        """Queue an address transaction; ``on_complete`` fires at completion."""
        grant = max(self.scheduler.now, self._addr_free_at)
        # Queue depth in transactions ahead of this one (the wait for
        # the address bus, in occupancy slots).
        self._queue_hist.record(
            (grant - self.scheduler.now) // self.config.addr_occupancy
        )
        self._addr_free_at = grant + self.config.addr_occupancy
        self.scheduler.at(grant, lambda: self._execute(txn, on_complete))

    # ------------------------------------------------------------------

    def _execute(self, txn: BusTransaction, on_complete: CompletionCallback | None) -> None:
        now = self.scheduler.now
        txn.grant_time = now

        # Give the requester a pre-grant fixup opportunity: an Upgrade
        # whose shared copy was invalidated while queued converts to a
        # ReadX; a Validate whose line changed underneath is cancelled.
        requester = self._clients[txn.requester]
        if not requester.pre_grant(txn):
            self._txn_cancelled.inc()
            self.tracer.emit(
                "bus.cancel", node=txn.requester, base=txn.base,
                txn=txn.kind.value, span=txn.span,
            )
            self.tracer.span_end(txn.span, node=txn.requester, base=txn.base,
                                 cancelled=True)
            return
        self._txn_counters[txn.kind].inc()
        self._txn_total.inc()

        result = txn.result
        remotes = [c for c in self._clients if c.node_id != txn.requester]
        for client in remotes:
            query = client.snoop_query(txn)
            if query.assert_shared:
                result.shared = True
            if query.can_supply:
                result.dirty_owner = client.node_id

        # Capture the data payload at the atomic point, before state
        # transitions disturb it.
        data: list[int] | None = None
        if txn.kind.carries_data_response:
            if result.dirty_owner is not None:
                owner = self._clients[result.dirty_owner]
                data = owner.supply_data(txn)
                result.owner_data = data
                self._data_from_cache.inc()
            else:
                data = self.memory.read_line(txn.base)
                self._data_from_memory.inc()
        elif txn.kind is TxnKind.WRITEBACK:
            assert txn.data is not None
            self.memory.write_line(txn.base, txn.data)

        self.tracer.emit(
            "bus.grant", node=txn.requester, base=txn.base,
            txn=txn.kind.value, shared=result.shared,
            owner=result.dirty_owner, span=txn.span,
        )

        for client in remotes:
            client.snoop_apply(txn)

        # The requester's state change is part of the atomic grant:
        # later transactions must observe the new owner/sharer.  Data
        # delivery (below) only models latency.
        requester.on_grant(txn, data)

        done = now + self._completion_delay(txn)
        self.tracer.span_end(
            txn.span, node=txn.requester, base=txn.base,
            shared=result.shared, owner=result.dirty_owner, done=done,
        )
        if on_complete is not None:
            self.scheduler.at(done, lambda: on_complete(txn, data))

    def _completion_delay(self, txn: BusTransaction) -> int:
        jitter = self._rng.randrange(self._jitter + 1) if self._jitter else 0
        if not txn.kind.carries_data_response:
            return self.config.addr_latency + jitter
        # Data network: a shared resource with per-transfer occupancy.
        now = self.scheduler.now
        start = max(now, self._data_free_at)
        self._data_free_at = start + self.config.data_occupancy
        return (start - now) + self.config.data_latency + jitter
