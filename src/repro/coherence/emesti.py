"""Enhanced MESTI (paper Figure 3, §2.3).

Adds to MOESTI:

* the **Validate_Shared (VS)** stable state, entered from T on a
  validate.  VS is semantically S for local requests (a local access
  demotes it to plain S), and
* the **useful snoop response**: on an external ReadX/Upgrade a VS line
  invalidates *without asserting the shared line*.

Because a cache that consumed validated data has moved VS→S, the shared
line observed at the writer's next intermediate-value-store upgrade
tells it, for free and distributed across the system, whether the
previous validate prevented any remote miss.  The useful-validate
predictor (:mod:`repro.coherence.predictor`) trains on exactly this
signal.
"""

from __future__ import annotations

from repro.common.config import ProtocolKind
from repro.coherence.messages import SnoopResult, TxnKind
from repro.coherence.protocol import ProtocolLogic
from repro.coherence.states import LineState
from repro.memory.cache import CacheLine


class EnhancedMestiProtocol(ProtocolLogic):
    """MOESTI + Validate_Shared + useful snoop response."""

    kind = ProtocolKind.MOESTI

    @property
    def enhanced(self) -> bool:
        """True: this protocol includes VS + the useful snoop response."""
        return True

    def revalidated_state(self) -> LineState:
        """Validates re-install remote T lines in VS, not S."""
        return LineState.VS

    def _asserts_shared(self, state: LineState, kind: TxnKind) -> bool:
        """VS withholds the shared line on invalidating transactions.

        This is the useful snoop response: lack of the shared signal at
        an intermediate-value-store upgrade means no remote processor
        touched the line since it was validated, so future validates
        are likely useless.
        """
        if state is LineState.VS and kind.invalidating:
            return False
        return state.valid

    def _apply_invalidate(
        self, line: CacheLine, state: LineState, kind: TxnKind, result: SnoopResult
    ) -> None:
        if state is LineState.VS:
            # Behave as MESTI specifies for a valid copy (enter T,
            # saving the value) — only the shared response differs.
            line.state = LineState.T
            line.dirty_mask = 0
            return
        super()._apply_invalidate(line, state, kind, result)

    def on_local_access(self, line: CacheLine) -> None:
        """Any local request demotes Validate_Shared to plain S."""
        if line.state is LineState.VS:
            line.state = LineState.S
