"""Validate broadcast policies (§2.2–§2.4).

Each detected temporal silence asks the policy whether to broadcast a
validate.  Broadcasting can eliminate remote communication misses but
forfeits exclusivity (the next non-silent store needs an upgrade) and
adds address traffic; *useless validates* were shown to add 10–100%
address transactions, hence the smarter policies.
"""

from __future__ import annotations

from repro.common.config import PredictorConfig, ValidatePolicy
from repro.common.errors import ConfigError
from repro.common.stats import ScopedStats
from repro.coherence.messages import SnoopResult, TxnKind
from repro.coherence.predictor import UsefulValidatePredictor
from repro.memory.cache import CacheLine
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER


class ValidatePolicyBase:
    """Decides, per detected temporal silence, whether to validate."""

    def should_validate(self, line: CacheLine, span: int | None = None) -> bool:
        """Decide whether this temporal silence broadcasts a validate.

        ``span`` is the validate-episode trace span, threaded through
        so predictor decisions are attributable to the episode.
        """
        raise NotImplementedError

    # Hooks the controller calls so policies can observe the system.

    def on_line_filled(self, line: CacheLine) -> None:
        """A line was freshly allocated in the L2."""

    def on_invalidating_response(self, line: CacheLine, result: SnoopResult) -> None:
        """Our ReadX/Upgrade for ``line`` completed with ``result``."""

    def on_external_request(self, line: CacheLine, kind: TxnKind) -> None:
        """A remote transaction touched our line."""

    def on_intermediate_store(self, line: CacheLine, needs_upgrade: bool) -> None:
        """A local non-update-silent store hit the line."""

    def on_upgrade_response(self, line: CacheLine, useful: bool) -> None:
        """Snoop responses for our intermediate-value-store upgrade."""


class AlwaysValidate(ValidatePolicyBase):
    """Broadcast a validate for every detected temporal silence."""

    def should_validate(self, line: CacheLine, span: int | None = None) -> bool:
        """Decide whether this temporal silence broadcasts a validate."""
        return True


class SnoopAwareValidate(ValidatePolicyBase):
    """The snoop-aware validate policy (§2.3, from [22]).

    At each ReadX/Upgrade the requester collects the shared snoop
    response; if no remote node held a valid copy at the intermediate
    value store, no cache can be in T state, so any validate is
    provably useless and is aborted.  No opportunity is sacrificed.
    """

    def should_validate(self, line: CacheLine, span: int | None = None) -> bool:
        """Decide whether this temporal silence broadcasts a validate."""
        return not line.validate_suppressed

    def on_invalidating_response(self, line: CacheLine, result: SnoopResult) -> None:
        """Record the snoop responses of our ReadX/Upgrade."""
        line.validate_suppressed = not result.shared


class PredictorValidate(ValidatePolicyBase):
    """Confidence-predicted validates (§2.4), requires Enhanced MESTI."""

    def __init__(
        self,
        config: PredictorConfig,
        stats: ScopedStats,
        tracer=NULL_TRACER,
        node_id: int = 0,
        metrics=NULL_METRICS,
    ):
        self.predictor = UsefulValidatePredictor(
            config, stats, tracer=tracer, node_id=node_id, metrics=metrics
        )

    def should_validate(self, line: CacheLine, span: int | None = None) -> bool:
        """Decide whether this temporal silence broadcasts a validate."""
        return self.predictor.on_ts_detect(line, span=span)

    def on_line_filled(self, line: CacheLine) -> None:
        """Initialize per-line predictor state on a fresh fill."""
        self.predictor.init_line(line)

    def on_external_request(self, line: CacheLine, kind: TxnKind) -> None:
        """Train on a remote request touching our line."""
        self.predictor.on_external_request(line)

    def on_intermediate_store(self, line: CacheLine, needs_upgrade: bool) -> None:
        """Track a local non-update-silent store."""
        if needs_upgrade:
            self.predictor.on_intermediate_store_upgrade(line)
        else:
            self.predictor.on_intermediate_store_exclusive(line)

    def on_upgrade_response(self, line: CacheLine, useful: bool) -> None:
        """Train on the useful snoop response of our upgrade."""
        self.predictor.on_upgrade_response(line, useful)


def make_validate_policy(
    policy: ValidatePolicy,
    predictor_config: PredictorConfig,
    stats: ScopedStats,
    tracer=NULL_TRACER,
    node_id: int = 0,
    metrics=NULL_METRICS,
) -> ValidatePolicyBase:
    """Build the policy object selected by the configuration."""
    if policy is ValidatePolicy.ALWAYS:
        return AlwaysValidate()
    if policy is ValidatePolicy.SNOOP_AWARE:
        return SnoopAwareValidate()
    if policy is ValidatePolicy.PREDICTOR:
        return PredictorValidate(predictor_config, stats, tracer, node_id, metrics)
    raise ConfigError(f"unknown validate policy {policy}")
