"""MOESI: MESI plus the O (dirty shared owner) state.

This is the paper's baseline — the Gigaplane-XB protocol of the
simulated machine (Table 1).  A modified line servicing a remote read
stays on-chip as the dirty owner instead of writing back to memory.
"""

from __future__ import annotations

from repro.common.config import ProtocolKind
from repro.coherence.protocol import ProtocolLogic


class MoesiProtocol(ProtocolLogic):
    """5-state invalidate protocol with cache-to-cache dirty sharing."""

    kind = ProtocolKind.MOESI
