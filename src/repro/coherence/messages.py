"""Bus transaction and snoop response types.

The address network carries five transaction kinds.  ``READ``,
``READX`` (read with intent to modify), and ``UPGRADE`` are
conventional; ``VALIDATE`` is MESTI's broadcast that communicates
"this line has reverted to the last globally visible value" so remote
T-state copies can return to shared; ``WRITEBACK`` retires dirty
evictions to memory.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional


class TxnKind(enum.Enum):
    """Address-network transaction type."""

    READ = "Read"
    READX = "ReadX"
    UPGRADE = "Upgrade"
    VALIDATE = "Validate"
    WRITEBACK = "Writeback"

    @property
    def invalidating(self) -> bool:
        """True for transactions that invalidate remote copies."""
        return self in (TxnKind.READX, TxnKind.UPGRADE)

    @property
    def carries_data_response(self) -> bool:
        """True if a data transfer to the requester follows."""
        return self in (TxnKind.READ, TxnKind.READX)


@dataclass
class SnoopResult:
    """Aggregated snoop responses for one transaction.

    ``shared`` is the conventional shared line (asserted by remote
    caches holding a valid copy).  On a ReadX/Upgrade under Enhanced
    MESTI this doubles as the *useful snoop response*: caches in
    Validate_Shared deliberately withhold it, so its presence means a
    previous validate was consumed (§2.3).  ``dirty_owner`` is the node
    index of a remote M/O cache that will source the data (else data
    comes from memory).
    """

    shared: bool = False
    dirty_owner: int | None = None
    owner_data: list[int] | None = None

    def merge_shared(self) -> None:
        """Assert the shared line in the aggregate result."""
        self.shared = True


@dataclass
class BusTransaction:
    """One address-network transaction."""

    kind: TxnKind
    base: int
    requester: int
    data: list[int] | None = None  # writeback payload
    grant_time: int | None = None
    result: SnoopResult = field(default_factory=SnoopResult)
    # Fired synchronously at the atomic grant point, after the
    # requester's state is installed.  Store-like operations apply
    # their architectural write here — atomically with ownership — so
    # store-conditionals resolve exactly as LL/SC does at the
    # coherence point (first grant wins; no completion-window races).
    grant_callback: Optional[Callable[[], None]] = None
    # Trace span id minted by the issuing controller (None untraced);
    # the interconnect closes the span at grant or cancel.
    span: int | None = None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"BusTransaction({self.kind.value} base={self.base:#x} "
            f"req=P{self.requester})"
        )
