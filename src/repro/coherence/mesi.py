"""Plain MESI: the base :class:`ProtocolLogic` with no extensions."""

from __future__ import annotations

from repro.common.config import ProtocolKind
from repro.coherence.protocol import ProtocolLogic


class MesiProtocol(ProtocolLogic):
    """Conventional 4-state invalidate protocol."""

    kind = ProtocolKind.MESI
