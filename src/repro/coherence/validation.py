"""Runtime coherence-invariant checking.

``CoherenceChecker`` attaches to a built system and audits the global
cache state after every bus/directory grant — the moments at which the
atomic-grant model promises consistency:

* **single-writer**: at most one M/E copy of any line;
* **writer exclusivity**: an M/E copy excludes every other valid copy;
* **single-value**: all valid copies of a line agree on its contents;
* **dirty conservation**: if nobody holds the line dirty, memory holds
  the same value as any valid copy;
* **T-copy discipline** (MESTI): every T copy of a line agrees with
  every other T copy (single saved value), and — on the bus, where
  every T copy observes every visibility event — the saved value is
  the line's last *globally visible* value (the dirty owner's
  published shadow, or memory when nothing is dirty).  The fuzz
  campaign found the second half missing: a lone rotten T copy has no
  peer to disagree with, so the mutual-agreement check alone let
  ``t-ignores-flush`` counterexamples replay clean.

The checker costs a full scan per transaction, so it is a *debugging*
tool: enable it in tests or when chasing a protocol bug, not in
experiment runs.  PHARMsim's functional validation against SimOS-PPC
played this role in the paper (§5.2); this is our equivalent,
per-transaction instead of per-instruction.
"""

from __future__ import annotations

from repro.common.errors import ProtocolError
from repro.coherence.states import LineState


class CoherenceChecker:
    """Audits every line's global state after each transaction grant."""

    def __init__(self, system):
        from repro.common.config import InterconnectKind

        self.system = system
        self.checks = 0
        # On the snooping bus every T copy observes every visibility
        # event, so all saved values agree.  A directory stops
        # *tracking* T copies it will never contact again; those rot
        # with stale saved values but can never be re-installed (no
        # validate will reach them), so cross-copy agreement is not an
        # invariant there.
        self._t_copies_globally_consistent = (
            system.config.interconnect is InterconnectKind.BUS
        )
        self._wrap(system.bus)

    def _wrap(self, bus) -> None:
        original = bus._execute

        def checked(txn, on_complete):
            original(txn, on_complete)
            self.check_line(txn.base)
            self.checks += 1

        bus._execute = checked

    # ------------------------------------------------------------------

    def check_line(self, base: int) -> None:
        """Raise :class:`ProtocolError` if any invariant fails for ``base``."""
        copies = []
        for ctrl in self.system.controllers:
            line = ctrl.lookup(base)
            if line is not None and line.has_data:
                copies.append((ctrl.node_id, line))

        writers = [(n, l) for n, l in copies
                   if l.state in (LineState.M, LineState.E)]
        valid = [(n, l) for n, l in copies if l.state.valid]
        dirty = [(n, l) for n, l in copies if l.state.dirty]
        t_copies = [(n, l) for n, l in copies if l.state is LineState.T]

        if len(writers) > 1:
            raise ProtocolError(
                f"{base:#x}: multiple M/E owners "
                f"{[(n, l.state.value) for n, l in writers]}"
            )
        if writers and len(valid) > 1:
            raise ProtocolError(
                f"{base:#x}: M/E owner P{writers[0][0]} coexists with "
                f"valid copies {[(n, l.state.value) for n, l in valid]}"
            )
        if len(dirty) > 1:
            raise ProtocolError(
                f"{base:#x}: multiple dirty copies "
                f"{[(n, l.state.value) for n, l in dirty]}"
            )
        values = {tuple(l.data) for _, l in valid}
        if len(values) > 1:
            raise ProtocolError(
                f"{base:#x}: valid copies disagree: "
                f"{[(n, l.state.value, l.data) for n, l in valid]}"
            )
        if valid and not dirty:
            memory_words = self.system.memory.read_line(base)
            if tuple(memory_words) not in values:
                raise ProtocolError(
                    f"{base:#x}: no dirty copy but memory "
                    f"{memory_words} != cached {values}"
                )
        saved = {tuple(l.data) for _, l in t_copies}
        if len(saved) > 1 and self._t_copies_globally_consistent:
            raise ProtocolError(
                f"{base:#x}: T copies saved different values: "
                f"{[(n, l.data) for n, l in t_copies]}"
            )
        if t_copies and self._t_copies_globally_consistent:
            # The model's full t-discipline predicate: a T copy saved
            # the last globally visible value.  At a grant point that
            # is the dirty owner's ``visible`` shadow (set when it
            # last published a value) or, with no dirty copy, memory.
            expected = None
            if dirty:
                owner_visible = dirty[0][1].visible
                if owner_visible is not None:
                    expected = tuple(owner_visible)
            else:
                expected = tuple(self.system.memory.read_line(base))
            if expected is not None:
                for n, line in t_copies:
                    if tuple(line.data) != expected:
                        raise ProtocolError(
                            f"{base:#x}: P{n} saved {line.data} in T but "
                            f"the last globally visible value is "
                            f"{list(expected)}"
                        )

    def check_all(self) -> None:
        """Audit every line resident anywhere (end-of-run sweep)."""
        bases = set()
        for ctrl in self.system.controllers:
            for line in ctrl.l2.resident_lines():
                bases.add(line.base)
        # Sorted so the first-reported violation (and any stats the
        # checks bump) is independent of set hash order.
        for base in sorted(bases):
            self.check_line(base)
