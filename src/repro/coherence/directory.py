"""Directory-based interconnect (the paper's §6 future-work variant).

"MESTI, LVP, and SLE can be implemented directly in directory-based
systems [31][20].  However, mechanisms for coherence prediction in
MESTI relying on the useful snoop response may need modification since
generating this response is more complicated..."  This module builds
that variant: a home directory per line tracks the owner, the sharer
set, and — the MESTI-specific addition — the **T-sharer set** (nodes
holding temporally-invalid copies), so that:

* invalidations contact only actual sharers (no broadcast);
* validates are *multicast to the T-sharers* instead of broadcast;
* the useful snoop response is computed at the home from the contacted
  sharers' responses (feasible here precisely because the directory
  knows whom to ask — the paper's concern for snooping-style broadcast
  responses).

Timing: requests indirect through the home (one extra hop,
``dir_hop_latency``); dirty data is forwarded owner→requester (3-hop
reads).  The serialization point is the home directory, modeled with
the same atomic-grant discipline as the bus: state everywhere changes
at the grant, data delivery is delayed.

The class is interface-compatible with
:class:`~repro.coherence.bus.SnoopBus` (``attach`` / ``request`` /
``n_clients``), so every controller, protocol, and policy works
unmodified — select it with ``MachineConfig.interconnect =
"directory"``.

Directory imprecision: silent evictions of S/T copies are invisible to
the home, so the sharer/T-sharer sets may include nodes that dropped
the line; contacting them is a harmless no-op, exactly as in real
imprecise directories.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import BusConfig
from repro.common.events import Scheduler
from repro.common.rng import SplitRng
from repro.common.stats import ScopedStats
from repro.coherence.bus import CompletionCallback, SnoopClient
from repro.coherence.messages import BusTransaction, TxnKind
from repro.memory.mainmem import MainMemory
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER


@dataclass
class DirectoryEntry:
    """Home-node state for one line."""

    owner: int | None = None  # node holding M/E/O
    sharers: set[int] = field(default_factory=set)
    t_sharers: set[int] = field(default_factory=set)  # MESTI extension


class DirectoryNetwork:
    """Point-to-point interconnect with a home directory per line."""

    def __init__(
        self,
        scheduler: Scheduler,
        config: BusConfig,
        memory: MainMemory,
        stats: ScopedStats,
        jitter: int = 0,
        rng: SplitRng | None = None,
        hop_latency: int | None = None,
        tracer=NULL_TRACER,
        metrics=NULL_METRICS,
    ):
        self.scheduler = scheduler
        self.config = config
        self.memory = memory
        self.stats = stats
        self.tracer = tracer
        self._jitter = jitter
        self._rng = rng or SplitRng("directory")
        # One extra hop through the home; default half the address
        # latency (the DSI/timestamp-snooping literature's indirection
        # cost the paper contrasts snooping against).
        self.hop_latency = hop_latency if hop_latency is not None else config.addr_latency
        self._clients: list[SnoopClient] = []
        self._home_free_at = 0
        self._data_free_at = 0
        self._entries: dict[int, DirectoryEntry] = {}
        self._queue_hist = metrics.bind_histogram(
            stats.histogram("queue_depth"),
            "repro_bus_queue_depth", "Address-network queue depth at request",
            network="directory",
        )
        self._txn_counters = {
            kind: metrics.bound_counter(
                stats, f"txn.{kind.value.lower()}",
                "repro_bus_txn_total", "Address transactions by kind",
                kind=kind.value.lower(),
            )
            for kind in TxnKind
        }
        self._txn_cancelled = metrics.bound_counter(
            stats, "txn.cancelled",
            "repro_bus_txn_total", "Address transactions by kind",
            kind="cancelled",
        )
        self._txn_total = stats.counter("txn.total")
        self._data_from_cache = metrics.bound_counter(
            stats, "txn.cache_to_cache",
            "repro_bus_data_source_total", "Data responses by source",
            source="cache",
        )
        self._data_from_memory = metrics.bound_counter(
            stats, "txn.from_memory",
            "repro_bus_data_source_total", "Data responses by source",
            source="memory",
        )

    # -- SnoopBus-compatible surface -------------------------------------

    def attach(self, client: SnoopClient) -> None:
        """Register a coherence controller on the interconnect."""
        self._clients.append(client)

    @property
    def n_clients(self) -> int:
        """Number of attached controllers."""
        return len(self._clients)

    def request(
        self, txn: BusTransaction, on_complete: CompletionCallback | None = None
    ) -> None:
        """Route a transaction through the line's home directory."""
        # Request hop to the home, then serialize on the home's
        # occupancy (the directory is the ordering point).
        arrive = self.scheduler.now + self.hop_latency
        grant = max(arrive, self._home_free_at)
        self._queue_hist.record(
            (grant - arrive) // self.config.addr_occupancy
        )
        self._home_free_at = grant + self.config.addr_occupancy
        self.scheduler.at(grant, lambda: self._execute(txn, on_complete))

    # -- internals --------------------------------------------------------

    def entry(self, base: int) -> DirectoryEntry:
        """The directory entry for ``base`` (created on demand)."""
        e = self._entries.get(base)
        if e is None:
            e = DirectoryEntry()
            self._entries[base] = e
        return e

    def _execute(self, txn: BusTransaction, on_complete: CompletionCallback | None) -> None:
        now = self.scheduler.now
        txn.grant_time = now
        requester = self._clients[txn.requester]
        if not requester.pre_grant(txn):
            self._txn_cancelled.inc()
            self.tracer.emit(
                "bus.cancel", node=txn.requester, base=txn.base,
                txn=txn.kind.value, span=txn.span,
            )
            self.tracer.span_end(txn.span, node=txn.requester, base=txn.base,
                                 cancelled=True)
            return
        self._txn_counters[txn.kind].inc()
        self._txn_total.inc()

        entry = self.entry(txn.base)
        targets = self._targets(entry, txn)
        self.stats.add("messages", 1 + len(targets))

        result = txn.result
        for node in targets:
            query = self._clients[node].snoop_query(txn)
            if query.assert_shared:
                result.shared = True
            if query.can_supply:
                result.dirty_owner = node
        if txn.kind is TxnKind.READ and not result.shared:
            # Clean sharers are not contacted on a read; the *home*
            # supplies the sharing indication so the requester fills S,
            # not E.  (On ReadX/Upgrade every sharer is contacted, so
            # the aggregated responses — including Validate_Shared's
            # deliberate withholding — stand on their own.)
            others = set(entry.sharers)
            if entry.owner is not None:
                others.add(entry.owner)
            others.discard(txn.requester)
            if others:
                result.shared = True

        data: list[int] | None = None
        if txn.kind.carries_data_response:
            if result.dirty_owner is not None:
                data = self._clients[result.dirty_owner].supply_data(txn)
                result.owner_data = data
                self._data_from_cache.inc()
            else:
                data = self.memory.read_line(txn.base)
                self._data_from_memory.inc()
        elif txn.kind is TxnKind.WRITEBACK:
            assert txn.data is not None
            self.memory.write_line(txn.base, txn.data)

        self.tracer.emit(
            "bus.grant", node=txn.requester, base=txn.base,
            txn=txn.kind.value, shared=result.shared,
            owner=result.dirty_owner, targets=len(targets), span=txn.span,
        )
        for node in targets:
            self._clients[node].snoop_apply(txn)
        requester.on_grant(txn, data)
        self._update_directory(entry, txn, result)

        done = now + self._completion_delay(txn, result)
        self.tracer.span_end(
            txn.span, node=txn.requester, base=txn.base,
            shared=result.shared, owner=result.dirty_owner, done=done,
        )
        if on_complete is not None:
            self.scheduler.at(done, lambda: on_complete(txn, data))

    def _targets(self, entry: DirectoryEntry, txn: BusTransaction) -> list[int]:
        """Which nodes the home must contact for this transaction."""
        req = txn.requester
        if txn.kind is TxnKind.READ:
            # Only a dirty owner needs contacting; clean sharers are
            # unaffected by a read.
            return [n for n in ((entry.owner,) if entry.owner is not None else ()) if n != req]
        if txn.kind in (TxnKind.READX, TxnKind.UPGRADE):
            out = set(entry.sharers) | set(entry.t_sharers)
            if entry.owner is not None:
                out.add(entry.owner)
            out.discard(req)
            return sorted(out)
        if txn.kind is TxnKind.VALIDATE:
            # The MESTI extension: multicast to tracked T-copies only.
            return sorted(set(entry.t_sharers) - {req})
        if txn.kind is TxnKind.WRITEBACK:
            # T-copies must observe the visibility event (conservative
            # single-saved-value rule).
            return sorted(set(entry.t_sharers) - {req})
        return []

    def _update_directory(self, entry: DirectoryEntry, txn: BusTransaction, result) -> None:
        req = txn.requester
        kind = txn.kind
        if kind is TxnKind.READ:
            entry.t_sharers.discard(req)
            if result.dirty_owner is not None:
                # A dirty flush made a new value globally visible.  The
                # home is not contacting T-sharers on reads, so instead
                # it stops tracking them: their saved copies can never
                # be re-installed (no future validate will reach them),
                # which preserves the single-saved-value rule safely —
                # they simply rot as LVP residue.  The MOESTI owner
                # retires to O and remains the forwarding point.
                entry.t_sharers.clear()
                entry.sharers.add(req)
            else:
                # Mirror the sharing indication sent to the requester:
                # the home discarded the requester itself (a stale
                # self-listing from a silent eviction must not force an
                # S fill), so the update must discard it too, or a
                # re-reading stale sharer fills E while the home thinks
                # nobody owns the line — and the next read would not
                # contact the E (or silently upgraded M) copy.
                others = set(entry.sharers)
                if entry.owner is not None:
                    others.add(entry.owner)
                others.discard(req)
                if not others:
                    # Sole copy: the requester filled exclusive; track
                    # it as the owner so its silent E->M upgrade keeps
                    # the directory accurate.
                    entry.sharers.discard(req)
                    entry.owner = req
                else:
                    if entry.owner is not None and entry.owner != req:
                        # Clean (E) owner demoted to a plain sharer.
                        entry.sharers.add(entry.owner)
                        entry.owner = None
                    entry.sharers.add(req)
        elif kind in (TxnKind.READX, TxnKind.UPGRADE):
            moved = (
                entry.sharers | {entry.owner}
                if entry.owner is not None
                else set(entry.sharers)
            )
            moved.discard(req)
            moved.discard(None)
            # Invalidated copies become T-copies under a T-protocol;
            # tracking them unconditionally is safe (imprecise supersets
            # only cost messages, never correctness).
            entry.t_sharers |= {n for n in moved if n is not None}
            entry.t_sharers.discard(req)
            entry.sharers.clear()
            entry.owner = req
        elif kind is TxnKind.VALIDATE:
            entry.sharers |= set(entry.t_sharers)
            entry.t_sharers.clear()
            entry.sharers.add(req)
            # The validating owner retires to O/S but remains the
            # forwarding point in MOESTI.
            entry.owner = req
        elif kind is TxnKind.WRITEBACK:
            if entry.owner == req:
                entry.owner = None
            entry.t_sharers.clear()

    def _completion_delay(self, txn: BusTransaction, result) -> int:
        jitter = self._rng.randrange(self._jitter + 1) if self._jitter else 0
        if not txn.kind.carries_data_response:
            # Home processing + acknowledgment hop back.
            return self.hop_latency + jitter
        now = self.scheduler.now
        start = max(now, self._data_free_at)
        self._data_free_at = start + self.config.data_occupancy
        base_delay = (start - now) + self.config.data_latency + jitter
        if result.dirty_owner is not None:
            # 3-hop: home forwarded the request to the owner.
            base_delay += self.hop_latency
        return base_delay
