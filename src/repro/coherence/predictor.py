"""Address-based useful-validate predictor (paper Figure 4, §2.4).

Per-line predictor storage (two Mealy-machine state bits plus a
saturating confidence counter) lives directly in the L2 tags — the
fields travel with each :class:`~repro.memory.cache.CacheLine` — so the
mechanism requires no PC or core-side information and can be built
entirely outside the processor (§5.1.1).

State machine (Figure 4B):

* ``Start`` --TS detect--> ``TS Detected``; the confidence counter is
  read at this transition (*) to decide whether to broadcast a validate.
* ``TS Detected`` --external request--> ``Start``, confidence **+**
  (the temporal silence was useful: a remote processor wanted the line).
* ``TS Detected`` --local intermediate-value store--> ``L2 Upgrade
  Request``; the upgrade's *useful snoop response* then gives
  confidence **+** (asserted: someone consumed the validated data) or
  **-** (not asserted: the validate was useless), returning to
  ``Start``.  This is what makes training *continuous* even while
  validates are successfully eliminating the misses that would
  otherwise train the predictor (§2.4.1).
"""

from __future__ import annotations

from repro.common.config import PredictorConfig
from repro.common.stats import ScopedStats
from repro.memory.cache import (
    PRED_START,
    PRED_TS_DETECTED,
    PRED_UPGRADE_WAIT,
    CacheLine,
)
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER


class UsefulValidatePredictor:
    """Drives the per-line confidence state stored in the L2 tags."""

    def __init__(
        self,
        config: PredictorConfig,
        stats: ScopedStats,
        tracer=NULL_TRACER,
        node_id: int = 0,
        metrics=NULL_METRICS,
    ):
        config.validate()
        self.config = config
        self._stats = stats
        self._tracer = tracer
        self._node_id = node_id
        self._m_ts_detects = metrics.bound_counter(
            stats, "ts_detects",
            "repro_predictor_ts_detects_total",
            "Temporal-silence detections observed by the predictor",
            node=node_id,
        )
        self._m_send = metrics.bound_counter(
            stats, "validates_sent",
            "repro_predictor_decisions_total",
            "Predictor validate decisions at TS detect",
            node=node_id, decision="send",
        )
        self._m_suppress = metrics.bound_counter(
            stats, "validates_suppressed",
            "repro_predictor_decisions_total",
            "Predictor validate decisions at TS detect",
            node=node_id, decision="suppress",
        )
        self._m_useful_external = metrics.bound_counter(
            stats, "useful_by_external_req",
            "repro_predictor_transitions_total",
            "Predictor confidence transitions by cause",
            node=node_id, cause="external_request",
        )
        self._m_useful_snoop = metrics.bound_counter(
            stats, "useful_by_snoop_response",
            "repro_predictor_transitions_total",
            "Predictor confidence transitions by cause",
            node=node_id, cause="useful_snoop",
        )
        self._m_useless_snoop = metrics.bound_counter(
            stats, "useless_by_snoop_response",
            "repro_predictor_transitions_total",
            "Predictor confidence transitions by cause",
            node=node_id, cause="useless_snoop",
        )

    def init_line(self, line: CacheLine) -> None:
        """Cold-allocate predictor storage for a newly filled line."""
        line.pred_state = PRED_START
        line.pred_conf = self.config.initial_confidence

    def on_ts_detect(self, line: CacheLine, span: int | None = None) -> bool:
        """Temporal silence detected: return True to broadcast a validate.

        This is the (*) transition in Figure 4: the confidence counter
        is read, and the machine moves to ``TS Detected`` either way.
        ``span`` tags the decision with its validate-episode span.
        """
        line.pred_state = PRED_TS_DETECTED
        send = line.pred_conf >= self.config.threshold
        self._m_ts_detects.inc()
        (self._m_send if send else self._m_suppress).inc()
        self._tracer.emit(
            "predictor.decide", node=self._node_id, base=line.base,
            conf=line.pred_conf, send=send, span=span,
        )
        return send

    def on_external_request(self, line: CacheLine) -> None:
        """A remote request arrived while the line was temporally silent."""
        if line.pred_state == PRED_TS_DETECTED:
            self._bump(line, self.config.increment)
            line.pred_state = PRED_START
            self._m_useful_external.inc()
            self._tracer.emit(
                "predictor.train", node=self._node_id, base=line.base,
                conf=line.pred_conf, cause="external_request",
            )

    def on_intermediate_store_upgrade(self, line: CacheLine) -> None:
        """A non-update-silent store hit a validated (shared) line."""
        if line.pred_state == PRED_TS_DETECTED:
            line.pred_state = PRED_UPGRADE_WAIT

    def on_upgrade_response(self, line: CacheLine, useful: bool) -> None:
        """The upgrade's snoop responses arrived; train on usefulness."""
        if line.pred_state != PRED_UPGRADE_WAIT:
            return
        if useful:
            self._bump(line, self.config.increment)
            self._m_useful_snoop.inc()
        else:
            self._bump(line, -self.config.decrement)
            self._m_useless_snoop.inc()
        line.pred_state = PRED_START
        self._tracer.emit(
            "predictor.train", node=self._node_id, base=line.base,
            conf=line.pred_conf,
            cause="useful_snoop" if useful else "useless_snoop",
        )

    def on_intermediate_store_exclusive(self, line: CacheLine) -> None:
        """A non-update-silent store hit while we retained exclusivity.

        This happens when the previous temporal silence did not
        broadcast a validate (confidence below threshold): no upgrade
        occurs, so no snoop response is available; the machine simply
        returns to Start.  Recovery to validating relies on external
        requests observed during future TS episodes.
        """
        if line.pred_state == PRED_TS_DETECTED:
            line.pred_state = PRED_START

    def _bump(self, line: CacheLine, delta: int) -> None:
        line.pred_conf = max(0, min(self.config.saturation, line.pred_conf + delta))
