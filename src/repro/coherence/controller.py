"""Per-node coherence controller.

Owns the node's L2 (the coherence point), applies the protocol logic to
local requests and remote snoops, detects temporal silence on stores,
and runs the validate policy.  The node's L1/MSHR/store-path timing
lives in :class:`repro.memory.hierarchy.NodeMemory`, which drives this
controller; the split keeps protocol state transitions testable in
isolation from timing.

Data model notes:

* The L2 line holds the node's authoritative copy of the data; the L1
  is a tag/dirty-bit subset (inclusive), so snoops never need an
  L1 sync step.
* ``line.visible`` tracks the last *globally visible* value of a line
  held by this node (set at fill, updated when the node's dirty data is
  flushed to a remote requester).  Ideal temporal-silence detection
  compares against it; the explicit Figure-5 detector is consulted
  instead when configured.
* Dirty evictions update memory immediately at the eviction point (the
  WRITEBACK transaction is issued for timing, traffic accounting, and
  remote-T invalidation only), which keeps the atomic-grant model free
  of write-ordering races.
"""

from __future__ import annotations

from typing import Callable

from repro.common.config import MachineConfig, StaleDetectionMode
from repro.common.errors import ProtocolError
from repro.common.stats import ScopedStats
from repro.coherence.bus import SnoopBus
from repro.coherence.messages import BusTransaction, TxnKind
from repro.coherence.policies import make_validate_policy
from repro.coherence.protocol import SnoopQuery, make_protocol
from repro.coherence.states import LineState
from repro.memory.cache import CacheLine, SetAssocCache
from repro.memory.mainmem import MainMemory
from repro.memory.stale import ExplicitStaleDetector
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER


class CoherenceController:
    """L2 + protocol FSM + validate policy for one node."""

    def __init__(
        self,
        node_id: int,
        config: MachineConfig,
        bus: SnoopBus,
        memory: MainMemory,
        stats: ScopedStats,
        tracer=NULL_TRACER,
        metrics=NULL_METRICS,
    ):
        self.node_id = node_id
        self.config = config
        self.bus = bus
        self.memory = memory
        self.stats = stats
        self.tracer = tracer
        self.l2 = SetAssocCache(config.l2, f"P{node_id}.L2")
        self.protocol = make_protocol(config.protocol)
        self.policy = make_validate_policy(
            config.protocol.validate_policy,
            config.protocol.predictor,
            stats.scoped("predictor"),
            tracer=tracer,
            node_id=node_id,
            metrics=metrics,
        )
        # Validate-to-reuse distance: cycle of the last revalidation of
        # each line, consumed at the node's next local touch of it.
        self._revalidated_at: dict[int, int] = {}
        # Intermediate-value distance per diverged line (traced runs
        # only; stays empty — and free — under NULL_TRACER).
        self._ivd: dict[int, int] = {}
        self._reuse_hist = metrics.bind_histogram(
            stats.histogram("validate_reuse_distance"),
            "repro_validate_reuse_distance",
            "Cycles from revalidation to next local touch", node=node_id,
        )
        # Paper-level counters as first-class metric series (Table 2 /
        # Figure 8 inputs): temporally silent stores, validate fate.
        self._m_ts_stores = metrics.bound_counter(
            stats, "ts_stores",
            "repro_ts_stores_total", "Temporally silent stores detected",
            node=node_id,
        )
        self._m_validates_broadcast = metrics.bound_counter(
            stats, "validates_broadcast",
            "repro_validates_total", "Validate broadcasts by outcome",
            node=node_id, outcome="broadcast",
        )
        self._m_validates_suppressed = metrics.bound_counter(
            stats, "validates_suppressed",
            "repro_validates_total", "Validate broadcasts by outcome",
            node=node_id, outcome="suppressed",
        )
        self._m_validates_cancelled = metrics.bound_counter(
            stats, "validates_cancelled",
            "repro_validates_total", "Validate broadcasts by outcome",
            node=node_id, outcome="cancelled",
        )
        self._m_revalidations = metrics.bound_counter(
            stats, "revalidations",
            "repro_revalidations_total",
            "T-state copies re-installed by a remote validate",
            node=node_id,
        )
        self.stale_detector: ExplicitStaleDetector | None = None
        if config.protocol.stale_detection is StaleDetectionMode.EXPLICIT:
            self.stale_detector = ExplicitStaleDetector(
                config.l1, config.protocol.stale_storage_bytes, stats.scoped("stale")
            )
        self.reservation: int | None = None
        # Hooks installed by NodeMemory / the SLE engine.  The
        # invalidation hook receives the line's data at the moment of
        # invalidation (the snapshot miss classification compares
        # against, and the value remote T copies saved).
        self.on_line_invalidated: Callable[[int, list[int]], None] | None = None
        self.on_line_evicted: Callable[[int], None] | None = None
        self.on_remote_txn: Callable[[BusTransaction], None] | None = None
        bus.attach(self)

    # ------------------------------------------------------------------
    # Local (requester) side
    # ------------------------------------------------------------------

    def lookup(self, base: int) -> CacheLine | None:
        """The L2 line for ``base`` (any state, including stale residue)."""
        return self.l2.lookup(base)

    def local_access(self, line: CacheLine) -> None:
        """Bookkeeping for a local hit (LRU touch, VS demotion)."""
        self.l2.touch(line)
        if self._revalidated_at:
            revalidated = self._revalidated_at.pop(line.base, None)
            if revalidated is not None:
                self._reuse_hist.record(self.bus.scheduler.now - revalidated)
        demote = getattr(self.protocol, "on_local_access", None)
        if demote is not None:
            demote(line)

    def issue(
        self,
        kind: TxnKind,
        base: int,
        on_done: Callable[[BusTransaction, list[int] | None], None],
        on_granted: Callable[[], None] | None = None,
        parent: int | None = None,
    ) -> None:
        """Issue a Read/ReadX/Upgrade.

        The state change installs at the atomic grant; ``on_granted``
        (if given) then fires synchronously — store paths apply their
        writes there.  ``on_done`` fires at the timing-model completion
        (address latency, or data delivery for Read/ReadX).  ``parent``
        links the transaction's trace span under a causing span (e.g.
        the MSHR miss span).
        """
        txn = BusTransaction(
            kind=kind, base=base, requester=self.node_id, grant_callback=on_granted
        )
        txn.span = self.tracer.span_begin(
            "txn", node=self.node_id, base=base, parent=parent,
            txn=kind.value,
        )
        self.bus.request(txn, lambda t, data: self._complete(t, data, on_done))

    def on_grant(self, txn: BusTransaction, data: list[int] | None) -> None:
        """Install our own transaction's state change at the atomic point.

        Done at grant (not data delivery) so transactions granted in
        between observe — and can invalidate — the new copy; otherwise
        a Read's fill could install data made stale by an intervening
        remote ReadX.
        """
        if txn.kind in (TxnKind.READ, TxnKind.READX):
            self._install_fill(txn, data)
        elif txn.kind is TxnKind.UPGRADE:
            self._install_upgrade(txn)
        if txn.grant_callback is not None:
            txn.grant_callback()

    def _complete(
        self,
        txn: BusTransaction,
        data: list[int] | None,
        on_done: Callable[[BusTransaction, list[int] | None], None],
    ) -> None:
        on_done(txn, data)

    def _install_fill(self, txn: BusTransaction, data: list[int] | None) -> None:
        assert data is not None
        line = self.l2.lookup(txn.base)
        fresh = line is None
        pre_state = None if fresh else line.state
        if fresh:
            line = self._allocate(txn.base)
        line.state = self.protocol.fill_state(txn.kind, txn.result)
        self.tracer.emit(
            "cache.transition", node=self.node_id, base=txn.base,
            frm=pre_state.value if pre_state is not None else None,
            to=line.state.value, via=txn.kind.value, span=txn.span,
        )
        line.data = list(data)
        line.dirty_mask = 0
        line.visible = list(data)
        line.diverged = False
        line.validate_suppressed = False
        self.l2.touch(line)
        if fresh:
            self.policy.on_line_filled(line)
        if txn.kind is TxnKind.READX:
            self.policy.on_invalidating_response(line, txn.result)

    def pre_grant(self, txn: BusTransaction) -> bool:
        """Fix up or cancel our own transaction at its grant instant.

        An Upgrade whose shared copy was invalidated while it sat in
        the bus queue is converted to a ReadX (as a real split
        transaction bus would retry it); a Validate whose line changed
        underneath (we were invalidated, or we upgraded and stored a
        new value first) is cancelled, since remote T copies could no
        longer match it.
        """
        if txn.kind is TxnKind.UPGRADE:
            line = self.l2.lookup(txn.base)
            if line is None or line.state not in (
                LineState.S,
                LineState.O,
                LineState.VS,
            ):
                txn.kind = TxnKind.READX
                self.stats.add("upgrade_converted_to_readx")
            return True
        if txn.kind is TxnKind.VALIDATE:
            line = self.l2.lookup(txn.base)
            ok = line is not None and line.state in (LineState.S, LineState.O)
            if not ok:
                self._m_validates_cancelled.inc()
            return ok
        return True

    def _install_upgrade(self, txn: BusTransaction) -> None:
        line = self.l2.lookup(txn.base)
        if line is None or line.state not in (LineState.S, LineState.O, LineState.VS):
            raise ProtocolError(
                f"P{self.node_id} completed an Upgrade for {txn.base:#x} "
                f"without a shared copy (pre_grant should have converted it)"
            )
        self.tracer.emit(
            "cache.transition", node=self.node_id, base=txn.base,
            frm=line.state.value, to=LineState.M.value, via=txn.kind.value,
            span=txn.span,
        )
        line.state = LineState.M
        line.dirty_mask = 0
        self.l2.touch(line)
        self.policy.on_invalidating_response(line, txn.result)
        self.policy.on_upgrade_response(line, useful=txn.result.shared)

    def evict_line(self, base: int) -> bool:
        """Forcibly evict ``base`` from the L2 (replay/verification hook).

        Runs the full eviction path — dirty write-back transaction,
        stale-detector and node notifications — exactly as a capacity
        eviction would.  Returns False if the line was not resident.
        """
        view = self.l2.evict(base)
        if view is None:
            return False
        self._handle_eviction(view)
        return True

    def _allocate(self, base: int) -> CacheLine:
        line, evicted = self.l2.allocate(base)
        if evicted is not None:
            self._handle_eviction(evicted)
        return line

    def _handle_eviction(self, evicted) -> None:
        self.stats.add("l2.evictions")
        if self._revalidated_at:
            self._revalidated_at.pop(evicted.base, None)
        if self.on_line_evicted is not None:
            self.on_line_evicted(evicted.base)
        if self.stale_detector is not None:
            self.stale_detector.on_invalidate(evicted.base)
        if self.reservation == evicted.base:
            self.reservation = None
        if evicted.dirty:
            # Memory is updated instantly (see module docstring); the
            # bus transaction models timing/traffic and invalidates
            # remote T copies.
            self.memory.write_line(evicted.base, evicted.data)
            txn = BusTransaction(
                kind=TxnKind.WRITEBACK,
                base=evicted.base,
                requester=self.node_id,
                data=list(evicted.data),
            )
            txn.span = self.tracer.span_begin(
                "txn", node=self.node_id, base=evicted.base,
                txn=TxnKind.WRITEBACK.value,
            )
            self.bus.request(txn)

    # ------------------------------------------------------------------
    # Store-side value locality (update silence, temporal silence)
    # ------------------------------------------------------------------

    def before_nonsilent_store(self, line: CacheLine, needs_upgrade: bool) -> None:
        """Hook fired for every non-update-silent store to a valid line."""
        self.policy.on_intermediate_store(line, needs_upgrade)

    def after_store(self, line: CacheLine) -> None:
        """Detect temporal silence after a store wrote ``line`` (M state).

        If the line's full contents now equal the last globally visible
        value (per the configured detection mechanism), temporal
        silence is detected; the validate policy decides whether to
        broadcast (§2.2–2.4).
        """
        if line.state is not LineState.M:
            return
        candidate = self._ts_candidate(line)
        if candidate is None:
            return
        if line.data != candidate:
            line.diverged = True
            # Intermediate-value distance (paper Figure 2): count the
            # non-reverting stores between divergence and reversion.
            # Traced runs only — the untraced path keeps the dict empty.
            if self.tracer is not NULL_TRACER:
                self._ivd[line.base] = self._ivd.get(line.base, 0) + 1
            return
        if not line.diverged:
            return  # never diverged: not a reversion, nothing to validate
        line.diverged = False
        ivd = self._ivd.pop(line.base, 0) if self._ivd else 0
        # Counted for every protocol (Table 2 reports temporally silent
        # stores); only T-state protocols can act on the detection.
        self._m_ts_stores.inc()
        if not self.protocol.has_temporal:
            return
        # The validate episode span opens at the TS detect, before the
        # policy decision, so the predictor's decide event is tagged
        # with it; it closes at suppression here, or at the VALIDATE
        # transaction's grant/cancel on the interconnect.
        span = self.tracer.span_begin(
            "validate", node=self.node_id, base=line.base, ivd=ivd,
        )
        if self.policy.should_validate(line, span=span):
            self._broadcast_validate(line, span=span, ivd=ivd)
        else:
            self._m_validates_suppressed.inc()
            self.tracer.emit(
                "validate.suppressed", node=self.node_id, base=line.base,
                span=span, ivd=ivd,
            )
            self.tracer.span_end(span, node=self.node_id, base=line.base,
                                 outcome="suppressed")

    def _ts_candidate(self, line: CacheLine) -> list[int] | None:
        if self.stale_detector is not None:
            return self.stale_detector.candidate(line.base)
        return line.visible

    def _broadcast_validate(
        self, line: CacheLine, span: int | None = None, ivd: int = 0
    ) -> None:
        line.state = self.protocol.post_validate_state()
        line.dirty_mask = 0
        line.visible = list(line.data)
        line.diverged = False
        if self.protocol.validate_writes_back:
            self.memory.write_line(line.base, line.data)
        txn = BusTransaction(
            kind=TxnKind.VALIDATE, base=line.base, requester=self.node_id,
            span=span,
        )
        self.bus.request(txn)
        self._m_validates_broadcast.inc()
        self.tracer.emit(
            "validate.broadcast", node=self.node_id, base=line.base,
            to=line.state.value, span=span, ivd=ivd,
        )

    # ------------------------------------------------------------------
    # Reservations (larx/stcx)
    # ------------------------------------------------------------------

    def set_reservation(self, base: int) -> None:
        """Arm the load-linked reservation for ``base``."""
        self.reservation = base

    def reservation_valid(self, base: int) -> bool:
        """True if the reservation covers ``base``."""
        return self.reservation == base

    def clear_reservation(self) -> None:
        """Drop the reservation (successful stcx)."""
        self.reservation = None

    # ------------------------------------------------------------------
    # Remote (snooper) side — called by the bus at the atomic point
    # ------------------------------------------------------------------

    def snoop_query(self, txn: BusTransaction) -> SnoopQuery:
        """Phase 1: shared/supply responses for a remote transaction."""
        line = self.l2.lookup(txn.base)
        if line is None:
            return SnoopQuery()
        return self.protocol.snoop_query(line, txn.kind)

    def supply_data(self, txn: BusTransaction) -> list[int]:
        """Flush the dirty line's data to the requester."""
        line = self.l2.lookup(txn.base)
        if line is None or not line.state.dirty:
            raise ProtocolError(
                f"P{self.node_id} asked to supply {txn.base:#x} without dirty data"
            )
        self.stats.add("flushes")
        return list(line.data)

    def snoop_apply(self, txn: BusTransaction) -> None:
        """Phase 2: apply this cache's state transition."""
        if self.on_remote_txn is not None:
            self.on_remote_txn(txn)
        line = self.l2.lookup(txn.base)
        if line is None:
            return
        pre_state = line.state
        if txn.kind in (TxnKind.READ, TxnKind.READX, TxnKind.UPGRADE):
            self.policy.on_external_request(line, txn.kind)
        supplied = txn.result.dirty_owner == self.node_id
        self.protocol.snoop_apply(line, txn.kind, txn.result)
        if line.state is not pre_state:
            self.tracer.emit(
                "cache.transition", node=self.node_id, base=txn.base,
                frm=pre_state.value, to=line.state.value,
                via=f"snoop:{txn.kind.value}", span=txn.span,
            )
        self._post_snoop_effects(txn, line, pre_state, supplied)

    def _post_snoop_effects(
        self,
        txn: BusTransaction,
        line: CacheLine,
        pre_state: LineState,
        supplied: bool,
    ) -> None:
        base = txn.base
        if txn.kind is TxnKind.READ and supplied and pre_state is LineState.M:
            # Our dirty value just became globally visible.
            if not self.protocol.has_owned:
                self.memory.write_line(base, line.data)
            if self.stale_detector is not None:
                self.stale_detector.on_visibility(base, line.data)
        if txn.kind.invalidating and self.reservation == base:
            # Reservations break on any remote invalidation of the
            # reserved line — including one arriving while our own fill
            # is still in flight (the larx set it at request time).
            self.reservation = None
        if txn.kind.invalidating and pre_state.valid:
            # We lost the line: drop L1 copy and the explicit stale
            # candidate; notify the node (SLE conflicts, miss
            # classification snapshots).
            if self._revalidated_at:
                self._revalidated_at.pop(base, None)
            if self.stale_detector is not None:
                self.stale_detector.on_invalidate(base)
            if self.on_line_invalidated is not None:
                self.on_line_invalidated(base, list(line.data))
        if txn.kind is TxnKind.VALIDATE and pre_state is LineState.T:
            # Re-installed: the saved value is the globally visible one.
            line.visible = list(line.data)
            self._m_revalidations.inc()
            self._revalidated_at[base] = self.bus.scheduler.now
            self.tracer.emit(
                "validate.revalidate", node=self.node_id, base=base,
                by=txn.requester, to=line.state.value, span=txn.span,
            )
