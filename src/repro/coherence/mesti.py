"""MESTI and MOESTI: temporal-silence protocols (paper Figure 2).

The single addition over the base protocol is the **T** (temporally
invalid) state: a valid line receiving an invalidation saves its copy —
by construction the last globally visible value — instead of discarding
it.  When the writer later detects that the line has reverted to that
value it broadcasts a **validate**, and T copies return to shared,
turning what would have been communication misses into hits.

Only a single previous value is saved: any event that makes a *newer*
value globally visible (a dirty flush or a writeback) drops T copies to
I, because a future validate can no longer refer to their saved
version.
"""

from __future__ import annotations

from repro.common.config import ProtocolKind
from repro.coherence.protocol import ProtocolLogic


class MestiProtocol(ProtocolLogic):
    """MESI + T.  Validates imply a memory writeback (no O state)."""

    kind = ProtocolKind.MESTI


class MoestiProtocol(ProtocolLogic):
    """MOESI + T, as simulated in the paper (Table 1: "MOESTI").

    The validating owner retires to O, keeping the reverted dirty line
    on-chip as the ordering point for subsequent reads.
    """

    kind = ProtocolKind.MOESTI
