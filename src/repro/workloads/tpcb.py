"""tpc-b — OLTP (in-memory DB2) model.

The paper's most technique-sensitive workload (highest L2 misses per
instruction, "many times an order of magnitude larger than the
scientific workloads").  Transactions hop between a small set of hot
branch/teller locks and their records in a *migratory* pattern — a
thread reuses a lock a few times, then another thread takes it over —
so acquire/release silent pairs revert invisibly and validates
re-install the next user's copy (E-MESTI's +14% best case; plain MESTI
+6.5%).  Packed per-thread counters supply the false sharing that
makes LVP's contribution (+9%) largely disjoint from E-MESTI's, and
kernel atomic increments add the usual idiom imprecision for SLE.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import MachineConfig
from repro.common.rng import SplitRng
from repro.cpu.program import BlockBuilder
from repro.workloads.base import BenchmarkWorkload
from repro.workloads.fragments import (
    dependent_walk,
    false_share_update,
    migratory_update,
    private_work,
    read_shared,
    ts_flag_pulse,
)
from repro.workloads.locks import KERNEL_ATOMIC_PC, KERNEL_LOCK_PC, atomic_add
from repro.workloads.regions import Region, RegionAllocator


@dataclass
class TpcbLayout:
    """Address-space layout for the tpc-b model."""
    branch_locks: list[int]
    branch_data: list[Region]
    status_flags: Region  # shared status words pulsed and later read
    counters: list[int]  # larx/stcx statistics counters
    history: Region  # append-mostly shared table
    stats: Region  # packed per-thread counters: false sharing
    privates: list[Region]


class TpcbWorkload(BenchmarkWorkload):
    """TPC-B OLTP model (see module docstring)."""
    name = "tpc-b"
    description = "OLTP: migratory hot locks/records, false-shared counters"
    default_iterations = 320
    cracking_ratio = 0.56  # 468M / 841M

    n_branches = 8

    def build_layout(self, config: MachineConfig, rng: SplitRng) -> TpcbLayout:
        """Allocate the shared address-space layout."""
        alloc = RegionAllocator(config.line_size)
        n = config.n_procs
        return TpcbLayout(
            branch_locks=[alloc.lock_line(f"branch_lock{i}") for i in range(self.n_branches)],
            branch_data=[alloc.alloc(f"branch{i}", 3) for i in range(self.n_branches)],
            status_flags=alloc.alloc("status", 8),
            counters=[alloc.alloc(f"counter{i}", 1).word(0, 0) for i in range(4)],
            history=alloc.alloc("history", 64),
            stats=alloc.alloc("stats", 10),
            privates=[alloc.alloc(f"priv{t}", 24) for t in range(n)],
        )

    def thread_main(self, tid: int, config: MachineConfig, layout: TpcbLayout, rng: SplitRng):
        """The generator program executed by one thread."""
        b = BlockBuilder()
        priv = layout.privates[tid]
        branch = rng.randrange(self.n_branches)
        affinity = 0
        for _it in range(self.iterations):
            # Migratory lock reuse: stick with a branch for a few
            # transactions, then hop — the inter-processor gap is what
            # lets validates eliminate the next owner's misses.
            if affinity == 0:
                branch = rng.randrange(self.n_branches)
                affinity = rng.randrange(2, 4)
            affinity -= 1
            yield from migratory_update(
                b, rng, layout.branch_locks[branch], layout.branch_data[branch],
                tid, KERNEL_LOCK_PC, n_words=3, kernel=True,
            )
            # Transaction status word: silent pair read by the other
            # threads monitoring transaction progress — the misses a
            # validate eliminates.
            yield from ts_flag_pulse(
                b, layout.status_flags.word(branch % layout.status_flags.lines, 0),
                work_ops=4, busy_value=tid + 1,
            )
            if rng.random() < 0.9:
                yield from read_shared(b, rng, layout.status_flags, 4)
            # Index lookup: a pointer chase rooted in the (often
            # temporally-silent or falsely-shared) account metadata —
            # the dependent misses are where LVP's early delivery pays.
            yield from dependent_walk(
                b, rng,
                [(layout.status_flags, 0), (layout.history, None),
                 (layout.history, None)],
            )
            # Commit bookkeeping: kernel atomic + false-shared stats.
            if rng.random() < 0.6:
                yield from atomic_add(
                    b, layout.counters[rng.randrange(len(layout.counters))],
                    KERNEL_ATOMIC_PC,
                )
            yield from false_share_update(b, rng, layout.stats, tid, 1)
            # History append + a little private work.
            b.store(
                layout.history.word(rng.randrange(layout.history.lines), tid),
                rng.randrange(1, 1 << 30),
            )
            yield b.take()
            yield from private_work(b, rng, priv, 10, us_prob=0.2)
        yield from self.finish(b)
