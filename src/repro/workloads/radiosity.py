"""radiosity — SPLASH-2 Radiosity model.

Task-queue parallelism: several user-level queue locks with short,
straight-line critical sections (dequeue/enqueue), read-mostly shared
scene data, and private compute.  The elision idiom is *precise* —
larx/stcx only implements the user locks — so SLE succeeds here; the
paper reports E-MESTI ≈ +2.0%, SLE ≈ +2.5%, combined ≈ +3.0% (the
overlap showing lock-transfer elimination is the shared benefit).
Shared per-task status flags pulsed with plain stores supply TSS that
only MESTI can capture.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import MachineConfig
from repro.common.rng import SplitRng
from repro.cpu.program import BlockBuilder
from repro.workloads.base import BenchmarkWorkload
from repro.workloads.fragments import compute_chain, private_work, read_shared
from repro.workloads.locks import USER_PC_BASE, acquire_lock, release_lock
from repro.workloads.regions import Region, RegionAllocator


@dataclass
class RadiosityLayout:
    """Address-space layout for the radiosity model."""
    queue_locks: list[int]
    queue_data: list[Region]
    scene: Region
    flags: Region
    privates: list[Region]


class RadiosityWorkload(BenchmarkWorkload):
    """SPLASH-2 Radiosity model (see module docstring)."""
    name = "radiosity"
    description = "SPLASH-2 Radiosity: task queues with user locks"
    default_iterations = 260
    cracking_ratio = 0.73  # 2.39B / 3.26B

    n_queues = 4

    def build_layout(self, config: MachineConfig, rng: SplitRng) -> RadiosityLayout:
        """Allocate the shared address-space layout."""
        alloc = RegionAllocator(config.line_size)
        return RadiosityLayout(
            queue_locks=[alloc.lock_line(f"qlock{i}") for i in range(self.n_queues)],
            queue_data=[alloc.alloc(f"qdata{i}", 2) for i in range(self.n_queues)],
            scene=alloc.alloc("scene", 128),
            flags=alloc.alloc("flags", 8),
            privates=[alloc.alloc(f"priv{t}", 48) for t in range(config.n_procs)],
        )

    def thread_main(self, tid: int, config: MachineConfig, layout: RadiosityLayout, rng: SplitRng):
        """The generator program executed by one thread."""
        b = BlockBuilder()
        priv = layout.privates[tid]
        for _it in range(self.iterations):
            # Dequeue a task: short straight-line user-lock CS.  Mostly
            # our own queue (distributed task queues), occasionally
            # stealing from another — so concurrent critical sections
            # on one queue are rare and lock migration is moderate.
            if rng.random() < 0.7:
                q = tid % self.n_queues
            else:
                q = rng.randrange(self.n_queues)
            pc = USER_PC_BASE + 0x20 * q
            yield from acquire_lock(b, rng, layout.queue_locks[q], pc, held=tid + 1)
            head = layout.queue_data[q]
            reg = b.fresh()
            b.load(head.word(0, 0), reg)
            b.store(head.word(0, 1), rng.randrange(1, 1 << 30), sregs=(reg,))
            release_lock(b, layout.queue_locks[q], pc=pc + 4)
            yield b.take()
            # Task-status silent pair spanning the whole task body: a
            # *long-distance* temporally silent pair whose intermediate
            # lifetime can exceed the L1 residency of the flag line —
            # the case Figure 6's stale-storage capacities fight over.
            flag = layout.flags.word(rng.randrange(layout.flags.lines), 0)
            publish = rng.random() < 0.4
            if publish:
                b.store(flag, tid + 1)  # busy
            # Task body: radiosity's form-factor math is real compute —
            # enough that task-queue locking stays a modest fraction of
            # runtime (the paper's radiosity runs at the highest IPC).
            yield from read_shared(b, rng, layout.scene, 8)
            yield from private_work(b, rng, priv, 60, us_prob=0.05)
            yield from compute_chain(b, rng.randrange(20, 36), latency=2)
            if publish:
                b.store(flag, 0)  # idle again: the reverting store
                yield b.take()
        yield from self.finish(b)
