"""Synthetic execution-driven workloads modeled on the paper's Table 2.

Each benchmark is a reactive multi-threaded program built from shared
fragments (spin locks, barriers, atomic read-modify-write idioms,
migratory objects, false-sharing updates, temporally-silent flag
pulses, private/streaming compute) with per-benchmark composition and
parameters calibrated to the published workload characteristics:
instruction mix, update/temporally silent store fractions, miss-rate
class, locking style, and operating-system interference level.
"""

from repro.workloads.base import BenchmarkWorkload, WorkloadParams
from repro.workloads.registry import BENCHMARKS, get_benchmark
from repro.workloads.synthetic import SyntheticMix, SyntheticWorkload

__all__ = [
    "BenchmarkWorkload",
    "WorkloadParams",
    "BENCHMARKS",
    "get_benchmark",
    "SyntheticMix",
    "SyntheticWorkload",
]
