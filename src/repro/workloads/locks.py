"""Synchronization fragments: spin locks, barriers, atomic RMW idioms.

These are generator *fragments* composed into thread programs with
``yield from``.  Each yields complete basic blocks through the caller's
:class:`~repro.cpu.program.BlockBuilder` and receives control values
(larx results, stcx success) back — the execution-driven reactivity
that makes lock hand-off, contention, and SLE behavior emerge from the
protocol rather than from a trace.

PowerPC-style conventions: a lock is one padded word, 0 = free; acquire
is a larx/stcx loop writing ``tid+1``; kernel-style acquires append the
isync that protects AIX critical sections (§4.2.2) and funnel through
*shared static PCs* (kernel lock routines), producing the predictor
interference of §4.2.3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import SplitRng
from repro.cpu.program import BlockBuilder

#: Shared static PC modeling kernel synchronization routines: kernel
#: lock acquires AND kernel atomic RMW idioms (list insertion,
#: fetch-and-add, reservation clearing) funnel through the *same*
#: larx/stcx instructions — "few static instructions are participating
#: ... substantial interference in the predictor occurs between
#: critical sections exhibiting different elision behavior" (§4.2.3).
KERNEL_LOCK_PC = 0x1000
KERNEL_ATOMIC_PC = KERNEL_LOCK_PC
USER_PC_BASE = 0x2000

#: Free-lock sentinel.
FREE = 0


def acquire_lock(
    b: BlockBuilder,
    rng: SplitRng,
    lock_addr: int,
    pc: int,
    held: int = 1,
    kernel: bool = False,
    unsafe_isync_prob: float = 0.0,
):
    """Spin-acquire ``lock_addr``; leaves the trailing isync (kernel) pending.

    Yields blocks; the caller continues appending critical-section ops
    to ``b`` after the fragment returns (so the isync leads the CS
    block, as in AIX lock routines).
    """
    spins = 0
    while True:
        if spins:
            # Exponentialish backoff as straight-line filler work.
            for _ in range(min(spins, 6)):
                b.alu(latency=4)
        b.larx(lock_addr, pc=pc)
        observed = yield b.take()
        if observed != FREE:
            spins += 1
            continue
        b.stcx(lock_addr, held, pc=pc, meta={"sle_fallback": ("cas",)})
        ok = yield b.take()
        if ok:
            break
        spins += 1
    if kernel:
        b.isync(unsafe_ctx=rng.random() < unsafe_isync_prob, pc=pc + 1)


def release_lock(b: BlockBuilder, lock_addr: int, pc: int = 0) -> None:
    """Append the release: lwsync + store of the free value.

    The store restores the value the acquire's larx observed — the
    temporally silent half of the store pair.  (No yield: the caller
    flushes, so post-CS work can share the block.)
    """
    b.sync(pc=pc)
    b.store(lock_addr, FREE, pc=pc + 1)


def atomic_add(
    b: BlockBuilder, addr: int, pc: int, delta: int = 1
):
    """larx/stcx fetch-and-add loop; returns the value observed.

    This is the non-lock use of the elision idiom (§4.1): SLE cannot
    distinguish it from a lock acquire at speculation start, and no
    reverting store ever arrives.
    """
    while True:
        b.larx(addr, pc=pc)
        observed = yield b.take()
        b.stcx(addr, observed + delta, pc=pc, meta={"sle_fallback": ("add", delta)})
        ok = yield b.take()
        if ok:
            return observed


@dataclass(frozen=True)
class BarrierSpace:
    """Addresses of a sense-reversing barrier's state."""

    lock_addr: int
    count_addr: int
    flag_addr: int
    n_threads: int


def barrier_wait(
    b: BlockBuilder,
    rng: SplitRng,
    bar: BarrierSpace,
    sense: dict,
    pc: int,
):
    """Sense-reversing barrier (SPLASH-2 style).

    ``sense`` is the thread's mutable local-sense cell
    (``{"sense": 0}``).  The count read inside the critical section is
    a control op, so SLE attempts on barrier locks abort — one of the
    natural imprecision sources.
    """
    sense["sense"] ^= 1
    target = sense["sense"]
    yield from acquire_lock(b, rng, bar.lock_addr, pc, held=1)
    b.load_ctl(bar.count_addr, pc=pc + 2)
    count = yield b.take()
    if count + 1 == bar.n_threads:
        b.store(bar.count_addr, 0, pc=pc + 3)
        b.store(bar.flag_addr, target, pc=pc + 4)
        release_lock(b, bar.lock_addr, pc=pc + 5)
        yield b.take()
    else:
        b.store(bar.count_addr, count + 1, pc=pc + 3)
        release_lock(b, bar.lock_addr, pc=pc + 5)
        yield b.take()
        while True:
            for _ in range(4):
                b.alu(latency=4)
            b.load_ctl(bar.flag_addr, pc=pc + 6)
            flag = yield b.take()
            if flag == target:
                break
