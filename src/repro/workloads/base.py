"""Workload base class.

A :class:`BenchmarkWorkload` builds one reactive thread program per
processor from a shared address-space layout.  ``WorkloadParams.scale``
scales the main-loop iteration count, letting tests run tiny instances
and experiments run full ones from the same definitions.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.common.config import MachineConfig
from repro.common.rng import SplitRng
from repro.cpu.program import BlockBuilder, ThreadProgram


@dataclass
class WorkloadParams:
    """Tuning knobs common to every benchmark."""

    iterations: int | None = None  # override the benchmark default
    scale: float = 1.0  # multiplies the iteration count


class BenchmarkWorkload(abc.ABC):
    """One synthetic benchmark (see the per-module docstrings)."""

    name: str = "?"
    description: str = ""
    default_iterations: int = 300
    #: Instr ≈ cracking_ratio × micro-ops (PowerPC instruction cracking,
    #: calibrated per benchmark from Table 2's Instr/µop columns).
    cracking_ratio: float = 0.80

    def __init__(self, params: WorkloadParams | None = None):
        self.params = params or WorkloadParams()

    @property
    def iterations(self) -> int:
        """Effective main-loop iteration count (scaled)."""
        base = self.params.iterations or self.default_iterations
        return max(1, int(base * self.params.scale))

    def build_programs(self, config: MachineConfig, rng: SplitRng) -> list[ThreadProgram]:
        """Instantiate one program per processor over a fresh layout."""
        layout = self.build_layout(config, rng.split("layout"))
        programs = []
        for tid in range(config.n_procs):
            gen = self.thread_main(tid, config, layout, rng.split(f"thread{tid}"))
            programs.append(ThreadProgram(gen, name=f"{self.name}[{tid}]"))
        return programs

    @abc.abstractmethod
    def build_layout(self, config: MachineConfig, rng: SplitRng):
        """Allocate the shared address-space layout for this benchmark."""

    @abc.abstractmethod
    def thread_main(self, tid: int, config: MachineConfig, layout, rng: SplitRng):
        """The generator program executed by thread ``tid``."""

    @staticmethod
    def finish(b: BlockBuilder):
        """Terminal fragment: emit the END block."""
        b.end()
        yield b.take()
