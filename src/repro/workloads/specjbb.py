"""specjbb — SPEC JBB (server-side Java) model.

Capacity-miss dominated: each warehouse thread streams a footprint far
larger than the L2, so "most misses are capacity misses [and] none of
the techniques provides additional leverage" — except negatively:
object-header flag pulses on effectively *private* lines are perfect
temporal silence, so plain MESTI broadcasts a validate for every pulse
that no remote cache can ever use, flooding the address network (the
paper's −30% MESTI outlier).  E-MESTI's predictor learns the validates
are useless (no remote copies → no useful snoop response) and recovers
to ≈ baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import MachineConfig
from repro.common.rng import SplitRng
from repro.cpu.program import BlockBuilder
from repro.workloads.base import BenchmarkWorkload
from repro.workloads.fragments import private_work, stream_walk, ts_flag_pulse
from repro.workloads.locks import KERNEL_ATOMIC_PC, atomic_add
from repro.workloads.regions import Region, RegionAllocator


@dataclass
class SpecjbbLayout:
    """Address-space layout for the specjbb model."""
    heaps: list[Region]  # per-warehouse object heap (>> L2)
    headers: list[Region]  # per-warehouse object-header flag lines
    privates: list[Region]
    gc_counter: int


class SpecjbbWorkload(BenchmarkWorkload):
    """SPEC JBB model (see module docstring)."""
    name = "specjbb"
    description = "SPEC JBB: capacity-dominated warehouses, private flag pulses"
    default_iterations = 280
    cracking_ratio = 0.57  # 1.08B / 1.91B

    heap_lines = 5000  # ~320 KB/thread: exceeds the scaled 256 KB L2

    def build_layout(self, config: MachineConfig, rng: SplitRng) -> SpecjbbLayout:
        """Allocate the shared address-space layout."""
        alloc = RegionAllocator(config.line_size)
        n = config.n_procs
        return SpecjbbLayout(
            heaps=[alloc.alloc(f"heap{t}", self.heap_lines) for t in range(n)],
            headers=[alloc.alloc(f"headers{t}", 16) for t in range(n)],
            privates=[alloc.alloc(f"priv{t}", 32) for t in range(n)],
            gc_counter=alloc.alloc("gc_counter", 1).word(0, 0),
        )

    def thread_main(self, tid: int, config: MachineConfig, layout: SpecjbbLayout, rng: SplitRng):
        """The generator program executed by one thread."""
        b = BlockBuilder()
        heap = layout.heaps[tid]
        headers = layout.headers[tid]
        priv = layout.privates[tid]
        stream_state: dict = {}
        for _it in range(self.iterations):
            # Transaction: walk fresh objects (capacity misses).
            yield from stream_walk(b, stream_state, heap, 14, write_frac=0.35, rng=rng)
            # Object lock-bit pulses on our own headers: perfect
            # temporal silence that no other processor ever observes —
            # each one costs plain MESTI a useless validate plus the
            # re-upgrade at the next pulse.
            for _ in range(8):
                yield from ts_flag_pulse(
                    b, headers.word(rng.randrange(headers.lines), 0),
                    work_ops=4, busy_value=tid + 1,
                )
            yield from private_work(b, rng, priv, 20, us_prob=0.2)
            # Occasional allocator/GC bookkeeping through the kernel.
            if rng.random() < 0.08:
                yield from atomic_add(b, layout.gc_counter, KERNEL_ATOMIC_PC)
        yield from self.finish(b)
