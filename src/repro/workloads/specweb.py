"""specweb — SPEC web-serving model.

Irregular producer/consumer sharing: worker threads update a shared
session table and connection ring whose consumers vary from episode to
episode, so validate usefulness is only *partially* predictable ("the
sharing pattern is more complicated than the simple predictor can
capture").  Kernel locks (shared static PCs, isync) appear in the
request path, giving SLE its commercial-workload failure mode (the
paper reports ≈ −3% for SLE here); false sharing in per-connection
statistics gives LVP its ancillary target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import MachineConfig
from repro.common.rng import SplitRng
from repro.cpu.program import BlockBuilder
from repro.workloads.base import BenchmarkWorkload
from repro.workloads.fragments import (
    false_share_update,
    kernel_section,
    private_work,
    read_shared,
    stream_walk,
    ts_flag_pulse,
)
from repro.workloads.locks import KERNEL_LOCK_PC
from repro.workloads.regions import Region, RegionAllocator


@dataclass
class SpecwebLayout:
    """Address-space layout for the specweb model."""
    sessions: Region  # shared read-write session table
    ring: Region  # connection ring: shared status flags
    stats: Region  # per-connection stats: false sharing
    kernel_locks: list[int]
    kernel_data: Region
    files: list[Region]  # per-thread file-cache streams
    privates: list[Region]


class SpecwebWorkload(BenchmarkWorkload):
    """SPEC web-serving model (see module docstring)."""
    name = "specweb"
    description = "SPEC web serving: irregular sharing + kernel locks"
    default_iterations = 300
    cracking_ratio = 0.65  # 3.0B / 4.63B

    def build_layout(self, config: MachineConfig, rng: SplitRng) -> SpecwebLayout:
        """Allocate the shared address-space layout."""
        alloc = RegionAllocator(config.line_size)
        n = config.n_procs
        return SpecwebLayout(
            sessions=alloc.alloc("sessions", 64),
            ring=alloc.alloc("ring", 16),
            stats=alloc.alloc("stats", 12),
            # Few kernel locks: the request path funnels through them,
            # so concurrent elided sections conflict on kernel data.
            kernel_locks=[alloc.lock_line(f"klock{i}") for i in range(2)],
            kernel_data=alloc.alloc("kernel_data", 16),
            files=[alloc.alloc(f"files{t}", 1200) for t in range(n)],
            privates=[alloc.alloc(f"priv{t}", 32) for t in range(n)],
        )

    def thread_main(self, tid: int, config: MachineConfig, layout: SpecwebLayout, rng: SplitRng):
        """The generator program executed by one thread."""
        b = BlockBuilder()
        priv = layout.privates[tid]
        files = layout.files[tid]
        stream_state: dict = {}
        for _it in range(self.iterations):
            # Accept/route a request through a kernel critical section.
            lock = layout.kernel_locks[rng.randrange(len(layout.kernel_locks))]
            yield from kernel_section(
                b, rng, lock, layout.kernel_data, KERNEL_LOCK_PC, tid,
                unsafe_isync_prob=0.05,
            )
            # Session state: irregular shared read-write.
            line = rng.randrange(layout.sessions.lines)
            reg = b.fresh()
            b.load(layout.sessions.word(line, rng.randrange(8)), reg)
            b.store(
                layout.sessions.word(line, rng.randrange(8)),
                rng.randrange(1, 1 << 30), sregs=(reg,),
            )
            yield b.take()
            # Connection status pulse: silent pair with irregular readers.
            if rng.random() < 0.4:
                yield from ts_flag_pulse(
                    b, layout.ring.word(rng.randrange(layout.ring.lines), 0),
                    work_ops=4, busy_value=tid + 1,
                )
            if rng.random() < 0.5:
                yield from read_shared(b, rng, layout.ring, 3)
            # Per-connection statistics: false sharing.
            yield from false_share_update(b, rng, layout.stats, tid, 3)
            # Serve the file: stream + private scratch.
            yield from stream_walk(b, stream_state, files, 6, write_frac=0.1, rng=rng)
            yield from private_work(b, rng, priv, 14, us_prob=0.15)
        yield from self.finish(b)
