"""tpc-h — decision support (query 12) model.

Scan-dominated: large table streams (capacity misses) punctuated by
shared aggregation under kernel locks and packed partial-result
accumulators (false sharing → LVP's target).  Sharing is moderate but
the absolute miss rate is high, so the techniques still move the
needle: the paper reports solid E-MESTI/LVP gains and a slight SLE
slowdown (−1.5%) from kernel-lock idiom imprecision.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import MachineConfig
from repro.common.rng import SplitRng
from repro.cpu.program import BlockBuilder
from repro.workloads.base import BenchmarkWorkload
from repro.workloads.fragments import (
    false_share_update,
    kernel_section,
    private_work,
    read_shared,
    stream_walk,
    ts_flag_pulse,
)
from repro.workloads.locks import KERNEL_ATOMIC_PC, KERNEL_LOCK_PC, atomic_add
from repro.workloads.regions import Region, RegionAllocator


@dataclass
class TpchLayout:
    """Address-space layout for the tpc-h model."""
    tables: list[Region]  # per-thread scan partitions (>> L2)
    agg_lock: int
    agg_data: Region
    partials: Region  # packed accumulators: false sharing
    dict_pages: Region  # shared read-mostly dictionary
    work_flags: Region  # scan-progress flags: silent pairs
    scan_counter: int
    privates: list[Region]


class TpchWorkload(BenchmarkWorkload):
    """TPC-H decision-support model (see module docstring)."""
    name = "tpc-h"
    description = "Decision support: scans + shared aggregation"
    default_iterations = 300
    cracking_ratio = 0.51  # 1.61B / 3.18B

    table_lines = 3600

    def build_layout(self, config: MachineConfig, rng: SplitRng) -> TpchLayout:
        """Allocate the shared address-space layout."""
        alloc = RegionAllocator(config.line_size)
        n = config.n_procs
        return TpchLayout(
            tables=[alloc.alloc(f"table{t}", self.table_lines) for t in range(n)],
            agg_lock=alloc.lock_line("agg_lock"),
            agg_data=alloc.alloc("agg_data", 4),
            partials=alloc.alloc("partials", 8),
            dict_pages=alloc.alloc("dict", 48),
            work_flags=alloc.alloc("work_flags", 4),
            scan_counter=alloc.alloc("scan_counter", 1).word(0, 0),
            privates=[alloc.alloc(f"priv{t}", 24) for t in range(n)],
        )

    def thread_main(self, tid: int, config: MachineConfig, layout: TpchLayout, rng: SplitRng):
        """The generator program executed by one thread."""
        b = BlockBuilder()
        priv = layout.privates[tid]
        table = layout.tables[tid]
        stream_state: dict = {}
        for _it in range(self.iterations):
            # Scan a chunk of the partition (capacity misses).
            yield from stream_walk(b, stream_state, table, 14, write_frac=0.05, rng=rng)
            yield from read_shared(b, rng, layout.dict_pages, 4)
            # Accumulate partials: packed per-thread words (false share).
            yield from false_share_update(b, rng, layout.partials, tid, 3)
            # Merge into the global aggregate under a kernel lock.
            if rng.random() < 0.35:
                yield from kernel_section(
                    b, rng, layout.agg_lock, layout.agg_data, KERNEL_LOCK_PC, tid
                )
            # Scan progress: chunk counter + progress-flag silent pair.
            if rng.random() < 0.3:
                yield from atomic_add(b, layout.scan_counter, KERNEL_ATOMIC_PC)
            if rng.random() < 0.3:
                yield from ts_flag_pulse(
                    b, layout.work_flags.word(rng.randrange(layout.work_flags.lines), 0),
                    work_ops=4, busy_value=tid + 1,
                )
            yield from private_work(b, rng, priv, 10, us_prob=0.15)
        yield from self.finish(b)
