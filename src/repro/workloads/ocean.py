"""ocean — SPLASH-2 Ocean (258x258) model.

Barrier-separated phases of grid stencil compute: mostly private,
cache-resident work with a high update-silent store fraction (grid
points rewriting converged values), boundary-row exchange with
neighbors (true sharing), and a lock-protected global error reduction.
An initialization phase models the operating-system interference the
paper observed ("substantial contribution from the operating system,
predominantly during the initialization phase"): kernel-PC atomic
increments and kernel lock sections that poison the elision idiom,
giving ocean its small SLE slowdown despite user locks being precise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import MachineConfig
from repro.common.rng import SplitRng
from repro.cpu.program import BlockBuilder
from repro.workloads.base import BenchmarkWorkload
from repro.workloads.fragments import (
    kernel_section,
    migratory_update,
    private_work,
    read_shared,
)
from repro.workloads.locks import (
    KERNEL_ATOMIC_PC,
    KERNEL_LOCK_PC,
    USER_PC_BASE,
    BarrierSpace,
    atomic_add,
    barrier_wait,
)
from repro.workloads.regions import Region, RegionAllocator


@dataclass
class OceanLayout:
    """Address-space layout for the ocean model."""
    grids: list[Region]  # per-thread grid partition
    boundaries: list[Region]  # boundary rows between neighbors i and i+1
    err_lock: int
    err_data: Region
    kernel_lock: int
    kernel_data: Region
    alloc_counter: int
    barrier: BarrierSpace


class OceanWorkload(BenchmarkWorkload):
    """SPLASH-2 Ocean model (see module docstring)."""
    name = "ocean"
    description = "SPLASH-2 Ocean: barriered grid solver"
    default_iterations = 24  # solver phases
    cracking_ratio = 0.87  # 859M instr / 984M µops

    def build_layout(self, config: MachineConfig, rng: SplitRng) -> OceanLayout:
        """Allocate the shared address-space layout."""
        alloc = RegionAllocator(config.line_size)
        n = config.n_procs
        return OceanLayout(
            grids=[alloc.alloc(f"grid{t}", 64) for t in range(n)],
            boundaries=[alloc.alloc(f"boundary{t}", 4) for t in range(n)],
            err_lock=alloc.lock_line("err_lock"),
            err_data=alloc.alloc("err_data", 2),
            kernel_lock=alloc.lock_line("kernel_lock"),
            kernel_data=alloc.alloc("kernel_data", 8),
            alloc_counter=alloc.alloc("alloc_counter", 1).word(0, 0),
            barrier=BarrierSpace(
                lock_addr=alloc.lock_line("barrier_lock"),
                count_addr=alloc.alloc("barrier_count", 1).word(0, 0),
                flag_addr=alloc.alloc("barrier_flag", 1).word(0, 0),
                n_threads=n,
            ),
        )

    def thread_main(self, tid: int, config: MachineConfig, layout: OceanLayout, rng: SplitRng):
        """The generator program executed by one thread."""
        b = BlockBuilder()
        sense = {"sense": 0}
        n = config.n_procs
        my_grid = layout.grids[tid]
        right = layout.boundaries[tid]
        left = layout.boundaries[(tid - 1) % n]

        # Initialization: memory allocation via kernel services.
        for _ in range(6):
            yield from atomic_add(b, layout.alloc_counter, KERNEL_ATOMIC_PC)
            yield from kernel_section(
                b, rng, layout.kernel_lock, layout.kernel_data, KERNEL_LOCK_PC, tid
            )
            yield from private_work(b, rng, my_grid, 24, us_prob=0.0)
        yield from barrier_wait(b, rng, layout.barrier, sense, USER_PC_BASE)

        # Solver phases.
        for _phase in range(self.iterations):
            for _ in range(5):
                yield from private_work(b, rng, my_grid, 30, us_prob=0.12)
            # Boundary exchange: read neighbors' rows, publish our own.
            yield from read_shared(b, rng, left, 6)
            yield from read_shared(b, rng, right, 2)
            for i in range(4):
                b.store(right.word(i, tid % 8), rng.randrange(1, 1 << 30))
            yield b.take()
            # Global error reduction under a user lock.
            if rng.random() < 0.5:
                yield from migratory_update(
                    b, rng, layout.err_lock, layout.err_data, tid,
                    USER_PC_BASE + 0x10, n_words=2,
                )
            yield from barrier_wait(b, rng, layout.barrier, sense, USER_PC_BASE)
        yield from self.finish(b)
