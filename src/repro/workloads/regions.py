"""Address-space layout for synthetic workloads.

Allocates non-overlapping, line-aligned regions in the flat physical
address space.  Lock variables get a full line each ("all lock-based
data structures ... are padded to minimize coherence conflicts",
Table 2 caption); data regions are sized in lines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.addressing import DEFAULT_LINE_SIZE, WORD_SIZE


@dataclass(frozen=True)
class Region:
    """A named, line-aligned slab of the address space."""

    name: str
    base: int
    lines: int
    line_size: int = DEFAULT_LINE_SIZE

    @property
    def size_bytes(self) -> int:
        """Region size in bytes."""
        return self.lines * self.line_size

    @property
    def end(self) -> int:
        """Append the program-terminating END op."""
        return self.base + self.size_bytes

    def line(self, index: int) -> int:
        """Address of the ``index``-th line (wraps around)."""
        return self.base + (index % self.lines) * self.line_size

    def word(self, line_index: int, word_index: int = 0) -> int:
        """Address of a word within a line of the region."""
        words = self.line_size // WORD_SIZE
        return self.line(line_index) + (word_index % words) * WORD_SIZE


class RegionAllocator:
    """Bump allocator for :class:`Region` slabs, with guard gaps."""

    def __init__(self, line_size: int = DEFAULT_LINE_SIZE, start: int = 0x1_0000):
        self._line_size = line_size
        self._cursor = start
        self.regions: dict[str, Region] = {}

    def alloc(self, name: str, lines: int) -> Region:
        """Allocate ``lines`` cache lines under ``name``."""
        if lines < 1:
            raise ValueError(f"region {name!r}: need at least one line")
        if name in self.regions:
            raise ValueError(f"region {name!r} already allocated")
        region = Region(name, self._cursor, lines, self._line_size)
        # A one-line guard gap prevents accidental adjacency sharing.
        self._cursor = region.end + self._line_size
        self.regions[name] = region
        return region

    def lock_line(self, name: str) -> int:
        """Allocate one padded lock variable; returns its word address."""
        return self.alloc(name, 1).word(0, 0)
