"""User-composable synthetic workloads.

The seven benchmark models are hand-written compositions of the
fragment library; this module exposes the same machinery as a
*declarative* API so downstream users can build their own sharing
mixes without writing generator code:

    from repro.workloads.synthetic import SyntheticMix, SyntheticWorkload

    mix = SyntheticMix(
        iterations=200,
        private_ops=30,
        behaviors={
            "migratory": 1.0,     # lock-protected migratory records
            "false_share": 0.5,   # packed per-thread counters
            "ts_flags": 0.5,      # plain-store silent pairs
            "atomic": 0.25,       # larx/stcx fetch-and-add
            "stream": 0.0,        # > L2 streaming
            "read_shared": 1.0,   # read-mostly data
        },
    )
    result = run_workload(config, SyntheticWorkload(mix), seed=1)

Behavior weights are *expected executions per iteration* (values > 1
repeat, fractional values fire probabilistically).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import MachineConfig
from repro.common.errors import ConfigError
from repro.common.rng import SplitRng
from repro.cpu.program import BlockBuilder
from repro.workloads.base import BenchmarkWorkload, WorkloadParams
from repro.workloads.fragments import (
    dependent_walk,
    false_share_update,
    migratory_update,
    private_work,
    read_shared,
    stream_walk,
    ts_flag_pulse,
)
from repro.workloads.locks import KERNEL_ATOMIC_PC, USER_PC_BASE, atomic_add
from repro.workloads.regions import RegionAllocator

#: Behaviors a mix may reference.
BEHAVIORS = (
    "migratory",
    "false_share",
    "ts_flags",
    "atomic",
    "stream",
    "read_shared",
    "pointer_chase",  # dependent walk rooted in a falsely-shared line
)


@dataclass(frozen=True)
class SyntheticMix:
    """Declarative description of a synthetic workload."""

    iterations: int = 200
    private_ops: int = 20  # cache-resident compute per iteration
    us_prob: float = 0.1  # update-silent store rate in private work
    n_locks: int = 4  # migratory lock/record pairs
    shared_lines: int = 64  # read-mostly region size
    stream_lines: int = 2048  # per-thread streaming footprint
    kernel_locks: bool = False  # migratory locks kernel-style (isync)
    behaviors: dict = field(default_factory=lambda: {"migratory": 1.0})

    def validate(self) -> None:
        """Raise :class:`ConfigError` if the configuration is inconsistent."""
        unknown = set(self.behaviors) - set(BEHAVIORS)
        if unknown:
            raise ConfigError(
                f"unknown behaviors {sorted(unknown)}; choose from {BEHAVIORS}"
            )
        if self.iterations < 1:
            raise ConfigError("iterations must be >= 1")
        if any(w < 0 for w in self.behaviors.values()):
            raise ConfigError("behavior weights must be >= 0")


class SyntheticWorkload(BenchmarkWorkload):
    """A workload assembled from a :class:`SyntheticMix`."""

    name = "synthetic"
    cracking_ratio = 0.75

    def __init__(self, mix: SyntheticMix, params: WorkloadParams | None = None):
        mix.validate()
        super().__init__(params or WorkloadParams(iterations=mix.iterations))
        self.mix = mix

    def build_layout(self, config: MachineConfig, rng: SplitRng):
        """Allocate the shared address-space layout."""
        alloc = RegionAllocator(config.line_size)
        mix = self.mix
        return {
            "locks": [alloc.lock_line(f"lock{i}") for i in range(mix.n_locks)],
            "records": [alloc.alloc(f"rec{i}", 2) for i in range(mix.n_locks)],
            "shared": alloc.alloc("shared", mix.shared_lines),
            "flags": alloc.alloc("flags", 8),
            "stats": alloc.alloc("stats", 8),
            "counters": [alloc.alloc(f"ctr{i}", 1).word(0, 0) for i in range(2)],
            "streams": [
                alloc.alloc(f"stream{t}", mix.stream_lines)
                for t in range(config.n_procs)
            ],
            "privates": [
                alloc.alloc(f"priv{t}", 32) for t in range(config.n_procs)
            ],
        }

    def thread_main(self, tid: int, config: MachineConfig, layout, rng: SplitRng):
        """The generator program executed by one thread."""
        mix = self.mix
        b = BlockBuilder()
        stream_state: dict = {}

        def times(weight: float) -> int:
            whole = int(weight)
            return whole + (1 if rng.random() < weight - whole else 0)

        for _it in range(self.iterations):
            for _ in range(times(mix.behaviors.get("migratory", 0))):
                i = rng.randrange(mix.n_locks)
                yield from migratory_update(
                    b, rng, layout["locks"][i], layout["records"][i], tid,
                    USER_PC_BASE + 0x10 * i, n_words=2,
                    kernel=mix.kernel_locks,
                )
            for _ in range(times(mix.behaviors.get("false_share", 0))):
                yield from false_share_update(b, rng, layout["stats"], tid, 2)
            for _ in range(times(mix.behaviors.get("ts_flags", 0))):
                yield from ts_flag_pulse(
                    b, layout["flags"].word(rng.randrange(8), 0),
                    work_ops=4, busy_value=tid + 1,
                )
            for _ in range(times(mix.behaviors.get("atomic", 0))):
                yield from atomic_add(
                    b, layout["counters"][rng.randrange(2)], KERNEL_ATOMIC_PC
                )
            for _ in range(times(mix.behaviors.get("stream", 0))):
                yield from stream_walk(
                    b, stream_state, layout["streams"][tid], 8,
                    write_frac=0.25, rng=rng,
                )
            for _ in range(times(mix.behaviors.get("read_shared", 0))):
                yield from read_shared(b, rng, layout["shared"], 4)
            for _ in range(times(mix.behaviors.get("pointer_chase", 0))):
                # Root on our own (read-only) word of the falsely
                # shared stats region: a correct LVP prediction lets
                # the dependent streaming misses launch early.
                yield from dependent_walk(
                    b, rng,
                    [(layout["stats"], tid), (layout["streams"][tid], None),
                     (layout["streams"][tid], None)],
                )
            if mix.private_ops:
                yield from private_work(
                    b, rng, layout["privates"][tid], mix.private_ops,
                    us_prob=mix.us_prob,
                )
        yield from self.finish(b)


class LocksWorkload(SyntheticWorkload):
    """Contended-locks microbenchmark (``locks``).

    A pure lock-handoff stressor: every thread loops acquiring one of
    a few shared locks, mutating the protected record, and releasing —
    the canonical temporally-silent store pair — plus a sprinkle of
    atomic increments.  The densest source of validates, T-state
    transitions, and SLE candidates per simulated cycle, which makes it
    the default workload for exercising the tracing/observability
    stack.  Registered under ``EXTRA_BENCHMARKS`` (runnable by name,
    excluded from the Table 2 experiment matrix).
    """

    name = "locks"
    description = "contended lock handoff microbenchmark"
    default_iterations = 120
    cracking_ratio = 0.72

    def __init__(self, params: WorkloadParams | None = None):
        super().__init__(
            SyntheticMix(
                n_locks=2,
                private_ops=6,
                behaviors={"migratory": 1.0, "atomic": 0.25},
            ),
            params,
        )
