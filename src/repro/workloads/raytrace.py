"""raytrace — SPLASH-2 Raytrace (teapot) model.

The defining behavior is a *contended global work lock* guarding
per-thread **disjoint** data (conservatively-locked tile buffers):
without SLE the lock serializes threads and ping-pongs between caches;
with SLE the non-conflicting critical sections execute concurrently —
the paper's standout SLE result (+9%, beyond what E-MESTI or LVP can
reach, "indicating that it is exposing additional parallelism").  The
idiom is precise: larx/stcx only implements this lock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import MachineConfig
from repro.common.rng import SplitRng
from repro.cpu.program import BlockBuilder
from repro.workloads.base import BenchmarkWorkload
from repro.workloads.fragments import (
    compute_chain,
    conservative_cs,
    private_work,
    read_shared,
)
from repro.workloads.locks import USER_PC_BASE
from repro.workloads.regions import Region, RegionAllocator


@dataclass
class RaytraceLayout:
    """Address-space layout for the raytrace model."""
    work_lock: int
    tiles: Region  # per-thread disjoint tile slabs
    scene: Region
    privates: list[Region]


class RaytraceWorkload(BenchmarkWorkload):
    """SPLASH-2 Raytrace model (see module docstring)."""
    name = "raytrace"
    description = "SPLASH-2 Raytrace: conservative global lock, disjoint tiles"
    default_iterations = 40
    cracking_ratio = 0.74  # 418M / 567M

    #: Contention shape: rays per lock episode and the serial
    #: intersection-chain length (cycles of compute ~ 4x ops).  Tuned
    #: so the global lock is contended enough that SLE's concurrent
    #: non-conflicting sections win ~10-15% while plain temporal-silence
    #: capture of the (usually observed) lock hand-off stays small.
    rays_per_tile = 6
    chain_ops = (300, 380)

    def build_layout(self, config: MachineConfig, rng: SplitRng) -> RaytraceLayout:
        """Allocate the shared address-space layout."""
        alloc = RegionAllocator(config.line_size)
        return RaytraceLayout(
            work_lock=alloc.lock_line("work_lock"),
            tiles=alloc.alloc("tiles", 16 * config.n_procs),
            scene=alloc.alloc("scene", 96),
            privates=[alloc.alloc(f"priv{t}", 32) for t in range(config.n_procs)],
        )

    def thread_main(self, tid: int, config: MachineConfig, layout: RaytraceLayout, rng: SplitRng):
        """The generator program executed by one thread."""
        b = BlockBuilder()
        priv = layout.privates[tid]
        for _it in range(self.iterations):
            # Grab the (over-conservative) work lock; write our own tile.
            yield from conservative_cs(
                b, rng, layout.work_lock, layout.tiles, tid, config.n_procs,
                USER_PC_BASE, n_ops=6,
            )
            # Trace the rays of this tile: serial intersection chains
            # plus scene reads and private state — the work between
            # lock episodes that sets the contention level.
            for _ray in range(self.rays_per_tile):
                lo, hi = self.chain_ops
                yield from compute_chain(b, rng.randrange(lo, hi), latency=4)
                yield from read_shared(b, rng, layout.scene, 5)
                yield from private_work(b, rng, priv, 12, us_prob=0.12)
        yield from self.finish(b)
