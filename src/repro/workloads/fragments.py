"""Data-access fragments: the sharing behaviors the paper's taxonomy
(Figure 1) distinguishes.

Each fragment is a generator composed with ``yield from``; all flush
the blocks they build.  The important sharing archetypes:

* ``private_work``     — cache-resident compute; update-silent stores
  injected at a controllable rate (duplicate stores of the just-written
  value).
* ``stream_walk``      — line-stride walk of a footprint larger than
  the L2: capacity misses (specjbb's dominant class).
* ``read_shared``      — read-mostly shared data.
* ``false_share_update`` — each thread stores only its own word of
  shared lines: pure false sharing (LVP's ancillary target, §3.1).
* ``ts_flag_pulse``    — store flag=1, work, store flag=0 with *plain*
  stores: a temporally silent pair outside any locking idiom (MESTI
  captures it, SLE cannot — §5.3.2's "not all TSS occurs in
  synchronization references").
* ``migratory_update`` — lock-protected object whose data genuinely
  changes: the lock's silent pair is capturable, the data movement is
  true sharing.
* ``conservative_cs``  — a single global lock guarding per-thread
  *disjoint* data: the over-conservative locking SLE transparently
  parallelizes (raytrace's win).
* ``kernel_section``   — kernel-style lock (shared PC, isync) around a
  small critical section.
"""

from __future__ import annotations

from repro.common.rng import SplitRng
from repro.cpu.program import BlockBuilder
from repro.workloads.locks import acquire_lock, release_lock
from repro.workloads.regions import Region

_VALUE_SPACE = 1 << 30


def private_work(
    b: BlockBuilder,
    rng: SplitRng,
    region: Region,
    n_ops: int,
    us_prob: float = 0.1,
    store_frac: float = 0.25,
    load_frac: float = 0.35,
):
    """One block of cache-resident compute over a private region."""
    regs: list[int] = []
    for _ in range(n_ops):
        roll = rng.random()
        if roll < load_frac:
            dst = b.fresh()
            b.load(region.word(rng.randrange(region.lines), rng.randrange(8)), dst)
            regs.append(dst)
        elif roll < load_frac + store_frac:
            addr = region.word(rng.randrange(region.lines), rng.randrange(8))
            value = rng.randrange(1, _VALUE_SPACE)
            b.store(addr, value)
            if rng.random() < us_prob:
                b.store(addr, value)  # guaranteed update-silent store
        else:
            srcs = tuple(regs[-rng.randrange(0, 3):]) if regs else ()
            dst = b.fresh()
            b.alu(dst, srcs, latency=1)
            regs.append(dst)
        if len(regs) > 8:
            del regs[:-8]
    yield b.take()


def dependent_walk(
    b: BlockBuilder,
    rng: SplitRng,
    regions: "list[tuple[Region, int | None]]",
    root_word: int | None = None,
):
    """A pointer-chasing walk: each load's address depends on the
    previous load's value (modeled as a timing dependence).

    ``regions`` lists ``(region, word)`` hops; ``word=None`` picks a
    random word.  When the root load hits a temporally-silent or
    falsely-shared line, LVP's early value delivery lets the dependent
    misses issue a full round-trip earlier — the paper's §3 benefit.
    """
    prev = None
    for region, word in regions:
        line = rng.randrange(region.lines)
        w = word if word is not None else rng.randrange(8)
        dst = b.fresh()
        b.load(region.word(line, w), dst, sregs=(prev,) if prev is not None else ())
        prev = dst
    b.alu(b.fresh(), (prev,), latency=1)
    yield b.take()


def compute_chain(b: BlockBuilder, n_ops: int, latency: int = 3):
    """A dependent ALU chain: serial compute (FP math, traversal).

    Unlike :func:`private_work`, this cannot be hidden by width — it
    models the ray-intersection / per-tuple computation that keeps a
    thread busy between synchronization episodes.
    """
    prev = b.fresh()
    b.alu(prev, latency=latency)
    for _ in range(n_ops - 1):
        cur = b.fresh()
        b.alu(cur, (prev,), latency=latency)
        prev = cur
    yield b.take()


def stream_walk(
    b: BlockBuilder,
    state: dict,
    region: Region,
    n_lines: int,
    write_frac: float = 0.3,
    rng: SplitRng | None = None,
):
    """Walk ``n_lines`` of a large region at line stride (capacity misses)."""
    cursor = state.setdefault("stream_cursor", 0)
    for i in range(n_lines):
        addr = region.word(cursor, 0)
        if rng is not None and rng.random() < write_frac:
            b.store(addr, cursor + 1)
        else:
            b.load(addr, b.fresh())
        cursor = (cursor + 1) % region.lines
        if (i + 1) % 16 == 0:
            yield b.take()
    state["stream_cursor"] = cursor
    if b.pending:
        yield b.take()


def read_shared(b: BlockBuilder, rng: SplitRng, region: Region, n_ops: int):
    """Read-mostly accesses to shared data."""
    for _ in range(n_ops):
        b.load(region.word(rng.randrange(region.lines), rng.randrange(8)), b.fresh())
    yield b.take()


def false_share_update(
    b: BlockBuilder, rng: SplitRng, region: Region, tid: int, n_ops: int
):
    """Per-thread word updates inside lines shared with other threads."""
    for _ in range(n_ops):
        addr = region.word(rng.randrange(region.lines), tid)
        dst = b.fresh()
        b.load(addr, dst)
        b.store(addr, rng.randrange(1, _VALUE_SPACE), sregs=(dst,))
    yield b.take()


def ts_flag_pulse(
    b: BlockBuilder, flag_addr: int, work_ops: int = 6, busy_value: int = 1
):
    """A plain-store temporally silent pair: flag up, work, flag down."""
    b.store(flag_addr, busy_value)
    for _ in range(work_ops):
        b.alu(latency=1)
    b.store(flag_addr, 0)
    yield b.take()


def migratory_update(
    b: BlockBuilder,
    rng: SplitRng,
    lock_addr: int,
    data: Region,
    tid: int,
    pc: int,
    n_words: int = 4,
    kernel: bool = False,
    unsafe_isync_prob: float = 0.0,
):
    """Lock-protected read-modify-write of genuinely changing data."""
    yield from acquire_lock(
        b, rng, lock_addr, pc, held=tid + 1, kernel=kernel,
        unsafe_isync_prob=unsafe_isync_prob,
    )
    for i in range(n_words):
        line = rng.randrange(data.lines)
        word = rng.randrange(8)
        dst = b.fresh()
        b.load(data.word(line, word), dst)
        b.store(data.word(line, word), rng.randrange(1, _VALUE_SPACE), sregs=(dst,))
    release_lock(b, lock_addr, pc=pc + 4)
    yield b.take()


def conservative_cs(
    b: BlockBuilder,
    rng: SplitRng,
    lock_addr: int,
    slabs: Region,
    tid: int,
    n_threads: int,
    pc: int,
    n_ops: int = 6,
):
    """Global lock around per-thread *disjoint* data (SLE's best case)."""
    lines_per_thread = max(1, slabs.lines // n_threads)
    first = tid * lines_per_thread
    yield from acquire_lock(b, rng, lock_addr, pc, held=tid + 1)
    for _ in range(n_ops):
        line = first + rng.randrange(lines_per_thread)
        word = rng.randrange(8)
        if rng.random() < 0.5:
            b.load(slabs.word(line, word), b.fresh())
        else:
            b.store(slabs.word(line, word), rng.randrange(1, _VALUE_SPACE))
    release_lock(b, lock_addr, pc=pc + 4)
    yield b.take()


def kernel_section(
    b: BlockBuilder,
    rng: SplitRng,
    lock_addr: int,
    data: Region,
    pc: int,
    tid: int,
    n_ops: int = 3,
    unsafe_isync_prob: float = 0.02,
):
    """Kernel-style critical section: shared-PC lock + isync + tiny CS."""
    yield from acquire_lock(
        b, rng, lock_addr, pc, held=tid + 1, kernel=True,
        unsafe_isync_prob=unsafe_isync_prob,
    )
    for _ in range(n_ops):
        line = rng.randrange(data.lines)
        dst = b.fresh()
        b.load(data.word(line, 0), dst)
        b.store(data.word(line, 1), rng.randrange(1, _VALUE_SPACE), sregs=(dst,))
    release_lock(b, lock_addr, pc=pc + 4)
    yield b.take()
