"""Benchmark registry: the paper's seven workloads by name."""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.workloads.base import BenchmarkWorkload, WorkloadParams
from repro.workloads.ocean import OceanWorkload
from repro.workloads.radiosity import RadiosityWorkload
from repro.workloads.raytrace import RaytraceWorkload
from repro.workloads.specjbb import SpecjbbWorkload
from repro.workloads.specweb import SpecwebWorkload
from repro.workloads.synthetic import LocksWorkload
from repro.workloads.tpcb import TpcbWorkload
from repro.workloads.tpch import TpchWorkload

#: Table 2 order.
BENCHMARKS: dict[str, type[BenchmarkWorkload]] = {
    "ocean": OceanWorkload,
    "radiosity": RadiosityWorkload,
    "raytrace": RaytraceWorkload,
    "specjbb": SpecjbbWorkload,
    "specweb": SpecwebWorkload,
    "tpc-b": TpcbWorkload,
    "tpc-h": TpchWorkload,
}

SCIENTIFIC = ("ocean", "radiosity", "raytrace")
COMMERCIAL = ("specjbb", "specweb", "tpc-b", "tpc-h")

#: Microbenchmarks runnable by name but outside the Table 2 matrix
#: (experiment sweeps iterate BENCHMARKS only).
EXTRA_BENCHMARKS: dict[str, type[BenchmarkWorkload]] = {
    "locks": LocksWorkload,
}


def get_benchmark(
    name: str, scale: float = 1.0, iterations: int | None = None
) -> BenchmarkWorkload:
    """Instantiate a benchmark by Table 2 name (or an extra by name)."""
    cls = BENCHMARKS.get(name) or EXTRA_BENCHMARKS.get(name)
    if cls is None:
        raise ConfigError(
            f"unknown benchmark {name!r}; choose from "
            f"{sorted(BENCHMARKS) + sorted(EXTRA_BENCHMARKS)}"
        )
    return cls(WorkloadParams(iterations=iterations, scale=scale))
