"""Machine configuration (the paper's Table 1, plus a scaled variant).

``table1_config`` reproduces the ISPASS 2005 Table 1 parameters
verbatim (for documentation and parameter unit tests).  Experiments use
``scaled_config``, which preserves the *ratios* that drive the paper's
results — small fast local hits versus ~20x slower remote transfers, a
window much smaller than the round-trip miss latency — while shrinking
capacities so that synthetic workload footprints exercise the same miss
classes at tractable simulation sizes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.common.addressing import DEFAULT_LINE_SIZE, is_power_of_two
from repro.common.errors import ConfigError


class ProtocolKind(enum.Enum):
    """Base coherence protocol family."""

    MESI = "MESI"
    MOESI = "MOESI"
    MESTI = "MESTI"
    MOESTI = "MOESTI"

    @property
    def has_owned_state(self) -> bool:
        """True if the protocol includes the O (dirty shared owner) state."""
        return self in (ProtocolKind.MOESI, ProtocolKind.MOESTI)

    @property
    def has_temporal_state(self) -> bool:
        """True if the protocol includes the T (temporally invalid) state."""
        return self in (ProtocolKind.MESTI, ProtocolKind.MOESTI)


class ValidatePolicy(enum.Enum):
    """Policy deciding whether a detected temporal silence broadcasts a validate."""

    ALWAYS = "always"
    SNOOP_AWARE = "snoop_aware"
    PREDICTOR = "predictor"


class StaleDetectionMode(enum.Enum):
    """How the owner detects reversion to the last globally visible value."""

    IDEAL = "ideal"  # full stale copy always available (paper's default assumption)
    EXPLICIT = "explicit"  # finite L1-Mirror + stale storage (Figure 5)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    ways: int
    line_size: int = DEFAULT_LINE_SIZE
    latency: int = 1

    @property
    def num_lines(self) -> int:
        """Total cache lines."""
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.num_lines // self.ways

    def validate(self, name: str) -> None:
        """Raise :class:`ConfigError` if the geometry is inconsistent."""
        if not is_power_of_two(self.line_size):
            raise ConfigError(f"{name}: line_size must be a power of two")
        if self.size_bytes % self.line_size:
            raise ConfigError(f"{name}: size not a multiple of line size")
        if self.num_lines % self.ways:
            raise ConfigError(f"{name}: lines not divisible by ways")
        if not is_power_of_two(self.num_sets):
            raise ConfigError(f"{name}: set count must be a power of two")
        if self.latency < 1:
            raise ConfigError(f"{name}: latency must be >= 1")


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core window model parameters."""

    width: int = 4  # dispatch/commit slots per cycle
    rob_size: int = 128  # in-flight micro-op window (paper: 256 RUU)
    store_buffer: int = 16  # post-commit store buffer entries
    mshrs: int = 8  # outstanding line misses per core
    fetch_redirect_penalty: int = 6  # pipeline refill after stall/redirect
    squash_penalty: int = 8  # machine squash (LVP mispredict, SLE abort)
    forward_latency: int = 1  # store-to-load forwarding


@dataclass(frozen=True)
class BusConfig:
    """Split-transaction snooping bus + data crossbar timing."""

    addr_latency: int = 200  # min latency for an address transaction
    addr_occupancy: int = 20  # address bus busy time per transaction
    data_latency: int = 400  # min latency memory / cache-to-cache data
    data_occupancy: int = 50  # data network busy time per transfer


@dataclass(frozen=True)
class PredictorConfig:
    """Useful-validate predictor tuning (paper §2.4.2: 3-4-1-1-7)."""

    initial_confidence: int = 3
    threshold: int = 4
    increment: int = 1
    decrement: int = 1
    saturation: int = 7

    def validate(self) -> None:
        """Raise :class:`ConfigError` if the configuration is inconsistent."""
        if not 0 <= self.initial_confidence <= self.saturation:
            raise ConfigError("initial confidence outside [0, saturation]")
        if not 0 < self.threshold <= self.saturation:
            raise ConfigError("threshold outside (0, saturation]")
        if self.increment < 1 or self.decrement < 1:
            raise ConfigError("increment/decrement must be >= 1")


@dataclass(frozen=True)
class ProtocolConfig:
    """Coherence protocol selection and MESTI feature knobs."""

    kind: ProtocolKind = ProtocolKind.MOESI
    enhanced: bool = False  # E-MESTI: Validate_Shared + useful snoop response
    validate_policy: ValidatePolicy = ValidatePolicy.ALWAYS
    predictor: PredictorConfig = field(default_factory=PredictorConfig)
    stale_detection: StaleDetectionMode = StaleDetectionMode.IDEAL
    stale_storage_bytes: int = 32 * 1024  # Figure 5/6 explicit stale storage
    squash_silent_stores: bool = False  # update-silent store suppression [21]

    def validate(self) -> None:
        """Raise :class:`ConfigError` if the configuration is inconsistent."""
        self.predictor.validate()
        if self.enhanced and not self.kind.has_temporal_state:
            raise ConfigError("enhanced (E-MESTI) requires a T-state protocol")
        if self.validate_policy is ValidatePolicy.PREDICTOR and not self.enhanced:
            raise ConfigError(
                "the useful-validate predictor requires the enhanced protocol "
                "(it trains on the useful snoop response)"
            )
        if self.stale_storage_bytes < 0:
            raise ConfigError("stale_storage_bytes must be >= 0")


@dataclass(frozen=True)
class LVPConfig:
    """Load value prediction with tag-match invalid cache lines (§3)."""

    enabled: bool = False
    predict_in_t_state: bool = True  # T-state lines also hold usable stale data


@dataclass(frozen=True)
class SLEConfig:
    """Speculative lock elision, in-core variant (§4)."""

    enabled: bool = False
    rob_threshold: float = 0.5  # max critical-section fraction of the ROB
    restart_limit: int = 2  # restarts before falling back to real acquire
    # Enhanced predictor (§4.2.3); False = Rajwar's simple restart threshold.
    confidence_enabled: bool = True
    # §4.2.2 mechanism; False = naive (all kernel CS fail).
    isync_safety_check: bool = True
    # Rajwar's checkpointing variant (§4.2.1): speculation is bounded
    # by store-buffer capacity (speculative stores) rather than the
    # ROB, so region ops retire while speculation continues and much
    # longer temporally silent pair distances become capturable.
    checkpoint_mode: bool = False
    checkpoint_restore_penalty: int = 16  # architected-state restore cost
    confidence_bits: int = 4
    initial_confidence: int = 8
    attempt_threshold: int = 6
    success_increment: int = 1
    conflict_decrement: int = 2
    no_release_decrement: int = 4
    overflow_decrement: int = 3
    serialize_decrement: int = 3

    def validate(self) -> None:
        """Raise :class:`ConfigError` if the configuration is inconsistent."""
        if not 0 < self.rob_threshold <= 1:
            raise ConfigError("rob_threshold must be in (0, 1]")
        top = (1 << self.confidence_bits) - 1
        if not 0 <= self.initial_confidence <= top:
            raise ConfigError("SLE initial confidence outside counter range")
        if not 0 < self.attempt_threshold <= top:
            raise ConfigError("SLE attempt threshold outside counter range")


class InterconnectKind(enum.Enum):
    """Coherence interconnect style."""

    BUS = "bus"  # snooping broadcast (the paper's evaluation)
    DIRECTORY = "directory"  # home-directory point-to-point (§6)


@dataclass(frozen=True)
class MachineConfig:
    """Complete simulated machine description."""

    n_procs: int = 4
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(16 * 1024, 4, latency=2))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(256 * 1024, 8, latency=12))
    bus: BusConfig = field(default_factory=BusConfig)
    protocol: ProtocolConfig = field(default_factory=ProtocolConfig)
    lvp: LVPConfig = field(default_factory=LVPConfig)
    sle: SLEConfig = field(default_factory=SLEConfig)
    interconnect: InterconnectKind = InterconnectKind.BUS
    latency_jitter: int = 0  # per-transaction random extra cycles (variability)

    def validate(self) -> None:
        """Check cross-field invariants; raise :class:`ConfigError` on failure."""
        if self.n_procs < 1:
            raise ConfigError("n_procs must be >= 1")
        self.l1.validate("L1")
        self.l2.validate("L2")
        if self.l1.line_size != self.l2.line_size:
            raise ConfigError("L1/L2 line sizes must match")
        if self.l2.size_bytes < self.l1.size_bytes:
            raise ConfigError("inclusive hierarchy requires L2 >= L1")
        self.protocol.validate()
        self.sle.validate()
        if self.core.rob_size < 8 or self.core.width < 1:
            raise ConfigError("core window too small")
        if self.latency_jitter < 0:
            raise ConfigError("latency_jitter must be >= 0")

    @property
    def line_size(self) -> int:
        """Cache line size in bytes (L1 == L2)."""
        return self.l1.line_size

    def with_protocol(self, **changes) -> "MachineConfig":
        """Return a copy with protocol fields replaced."""
        return replace(self, protocol=replace(self.protocol, **changes))

    def with_core(self, **changes) -> "MachineConfig":
        """Return a copy with core fields replaced."""
        return replace(self, core=replace(self.core, **changes))

    def with_lvp(self, **changes) -> "MachineConfig":
        """Return a copy with LVP fields replaced."""
        return replace(self, lvp=replace(self.lvp, **changes))

    def with_sle(self, **changes) -> "MachineConfig":
        """Return a copy with SLE fields replaced."""
        return replace(self, sle=replace(self.sle, **changes))


def table1_config() -> MachineConfig:
    """The paper's Table 1 machine, verbatim.

    4-processor PowerPC SMP: 8-wide core with a 256-entry RUU and
    128-entry LSQ; 64 KB direct-mapped L0s (folded into our L1 level),
    512 KB 8-way L1s, a unified 16 MB 8-way L2; 400-cycle minimum
    memory / cache-to-cache latency over a crossbar (50-cycle
    occupancy) and a 200-cycle minimum-latency address bus (20-cycle
    occupancy).  This configuration is provided for fidelity checks and
    documentation; its capacities are far larger than the synthetic
    workload footprints, so experiments use :func:`scaled_config`.
    """
    return MachineConfig(
        n_procs=4,
        core=CoreConfig(width=8, rob_size=256, store_buffer=32, mshrs=16,
                        fetch_redirect_penalty=6, squash_penalty=8),
        l1=CacheConfig(512 * 1024, 8, latency=6),  # L0 1+1 + L1 4 additive
        l2=CacheConfig(16 * 1024 * 1024, 8, latency=21),
        bus=BusConfig(addr_latency=200, addr_occupancy=20,
                      data_latency=400, data_occupancy=50),
        protocol=ProtocolConfig(kind=ProtocolKind.MOESI),
    )


def scaled_config(n_procs: int = 4) -> MachineConfig:
    """The default experiment machine: Table 1 ratios at tractable scale.

    Capacities shrink ~32x (synthetic footprints shrink to match) and
    latencies ~2x, preserving the local-hit : remote-miss latency ratio
    (~2 : 12 : 200+) and the window-size : miss-latency ratio that
    governs how much of LVP's verification latency the core can hide.
    """
    return MachineConfig(
        n_procs=n_procs,
        core=CoreConfig(width=4, rob_size=128, store_buffer=16, mshrs=8),
        l1=CacheConfig(16 * 1024, 4, latency=2),
        l2=CacheConfig(256 * 1024, 8, latency=12),
        bus=BusConfig(addr_latency=30, addr_occupancy=8,
                      data_latency=170, data_occupancy=16),
        # Predictor tuning 5-4-2-1-7 rather than the paper's 3-4-1-1-7:
        # predictor storage travels with the L2 line, so migratory
        # lines restart cold at every ownership hand-off; at our scaled
        # migration frequency the paper's conservative cold start and
        # slow recovery suppress most useful validates.  The tuning was
        # determined experimentally, exactly as §2.4.2 did for the
        # original machine; the predictor-tuning ablation bench reports
        # the alternatives including the paper's values.
        protocol=ProtocolConfig(
            kind=ProtocolKind.MOESI,
            predictor=PredictorConfig(initial_confidence=5, increment=2),
        ),
    )
