"""Hierarchical statistics counters.

Every component increments named counters in a shared
:class:`StatsRegistry`; names are dotted paths
(``bus.txn.read``, ``core0.commit.loads``).  Registries can be merged
and diffed, which the experiment harness uses to subtract warmup
intervals and to aggregate across processors.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator


class StatsRegistry:
    """A mapping of dotted counter names to integer/float values."""

    def __init__(self):
        self._counters: dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._counters[name] += amount

    def set(self, name: str, value: float) -> None:
        """Set counter ``name`` to an absolute value."""
        self._counters[name] = value

    def get(self, name: str, default: float = 0) -> float:
        """Read counter ``name`` (0 if never touched)."""
        return self._counters.get(name, default)

    def __getitem__(self, name: str) -> float:
        return self._counters.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def __iter__(self) -> Iterator[str]:
        return iter(self._counters)

    def items(self) -> Iterable[tuple[str, float]]:
        """Iterate over ``(name, value)`` pairs in sorted name order."""
        return sorted(self._counters.items())

    def with_prefix(self, prefix: str) -> dict[str, float]:
        """Return all counters whose name starts with ``prefix``."""
        return {k: v for k, v in self._counters.items() if k.startswith(prefix)}

    def sum_prefix(self, prefix: str) -> float:
        """Sum all counters whose name starts with ``prefix``."""
        return sum(v for k, v in self._counters.items() if k.startswith(prefix))

    def scoped(self, prefix: str) -> "ScopedStats":
        """Return a view that prepends ``prefix.`` to every counter name."""
        return ScopedStats(self, prefix)

    def merge(self, other: "StatsRegistry") -> None:
        """Add every counter of ``other`` into this registry."""
        for name, value in other._counters.items():
            self._counters[name] += value

    def snapshot(self) -> dict[str, float]:
        """Return a plain-dict copy of all counters."""
        return dict(self._counters)

    def diff(self, earlier: dict[str, float]) -> dict[str, float]:
        """Return counters minus an earlier :meth:`snapshot`."""
        out = {}
        for name, value in self._counters.items():
            delta = value - earlier.get(name, 0)
            if delta:
                out[name] = delta
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"StatsRegistry({len(self._counters)} counters)"


class ScopedStats:
    """A prefix-applying view onto a :class:`StatsRegistry`."""

    def __init__(self, registry: StatsRegistry, prefix: str):
        self._registry = registry
        self._prefix = prefix.rstrip(".") + "."

    def add(self, name: str, amount: float = 1) -> None:
        """Increment ``prefix.name`` in the backing registry."""
        self._registry.add(self._prefix + name, amount)

    def set(self, name: str, value: float) -> None:
        """Set ``prefix.name`` in the backing registry."""
        self._registry.set(self._prefix + name, value)

    def get(self, name: str, default: float = 0) -> float:
        """Read ``prefix.name`` from the backing registry."""
        return self._registry.get(self._prefix + name, default)

    def scoped(self, prefix: str) -> "ScopedStats":
        """Nest a further prefix under this one."""
        return ScopedStats(self._registry, self._prefix + prefix)
