"""Hierarchical statistics counters and distributions.

Every component increments named counters in a shared
:class:`StatsRegistry`; names are dotted paths
(``bus.txn.read``, ``core0.commit.loads``).  Registries can be merged
and diffed, which the experiment harness uses to subtract warmup
intervals and to aggregate across processors.

Beyond scalar counters the registry also hosts named
:class:`Histogram` distributions (bucketed, with p50/p95/p99 readouts
— miss latencies, bus queue depths, validate-to-reuse distances) and
:class:`Timer` wall-clock accumulators, created on first use via
:meth:`StatsRegistry.histogram` / :meth:`StatsRegistry.timer`.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from collections import defaultdict
from contextlib import contextmanager
from typing import Iterable, Iterator


def _log2_bounds(limit: float = 2 ** 32) -> tuple[float, ...]:
    """Default power-of-two bucket upper bounds: 1, 2, 4, ... limit."""
    bounds = []
    edge = 1
    while edge <= limit:
        bounds.append(float(edge))
        edge *= 2
    return tuple(bounds)


_DEFAULT_BOUNDS = _log2_bounds()


class Histogram:
    """A bucketed distribution with approximate percentiles.

    ``bounds`` are ascending bucket *upper* edges; values above the
    last edge land in an overflow bucket.  Percentiles interpolate
    linearly within the containing bucket (clamped to the observed
    min/max), so their error is bounded by the bucket width — the
    default power-of-two edges give sub-octave resolution, plenty for
    latency distributions.  Two histograms with identical bounds can be
    merged (used to aggregate per-node distributions system-wide).
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Iterable[float] | None = None):
        self.bounds: tuple[float, ...] = (
            tuple(bounds) if bounds is not None else _DEFAULT_BOUNDS
        )
        if any(b >= a for b, a in zip(self.bounds, self.bounds[1:])):
            raise ValueError("histogram bounds must be strictly ascending")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def record(self, value: float, n: int = 1) -> None:
        """Record ``n`` observations of ``value``."""
        self.counts[bisect_left(self.bounds, value)] += n
        self.count += n
        self.total += value * n
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate p-th percentile (``0 <= p <= 100``)."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        if self.count == 0:
            return 0.0
        rank = p / 100 * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                lo = max(lo, self.min if self.min is not None else lo)
                hi = min(hi, self.max if self.max is not None else hi)
                if hi <= lo:
                    return lo
                frac = (rank - cumulative) / bucket_count
                return lo + frac * (hi - lo)
            cumulative += bucket_count
        return self.max or 0.0  # pragma: no cover - defensive

    @property
    def p50(self) -> float:
        """Median."""
        return self.percentile(50)

    @property
    def p95(self) -> float:
        """95th percentile."""
        return self.percentile(95)

    @property
    def p99(self) -> float:
        """99th percentile."""
        return self.percentile(99)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram (same bounds) into this one."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def summary(self) -> dict[str, float]:
        """Headline numbers as a plain JSON-safe dict."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min or 0.0,
            "max": self.max or 0.0,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Histogram(count={self.count} mean={self.mean:.1f})"


class Timer:
    """Accumulates wall-clock durations into a microsecond histogram."""

    __slots__ = ("hist",)

    def __init__(self):
        self.hist = Histogram()

    @contextmanager
    def time(self):
        """Context manager timing one span."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.record_seconds(time.perf_counter() - start)

    def record_seconds(self, seconds: float) -> None:
        """Record one duration given in seconds."""
        self.hist.record(seconds * 1e6)

    @property
    def count(self) -> int:
        """Number of timed spans."""
        return self.hist.count

    @property
    def total_seconds(self) -> float:
        """Total accumulated wall time."""
        return self.hist.total / 1e6

    def summary(self) -> dict[str, float]:
        """Headline numbers (microseconds) as a plain dict."""
        return self.hist.summary()


class StatsRegistry:
    """A mapping of dotted counter names to integer/float values."""

    def __init__(self):
        self._counters: dict[str, float] = defaultdict(float)
        self._histograms: dict[str, Histogram] = {}
        self._timers: dict[str, Timer] = {}

    def add(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._counters[name] += amount

    def set(self, name: str, value: float) -> None:
        """Set counter ``name`` to an absolute value."""
        self._counters[name] = value

    def get(self, name: str, default: float = 0) -> float:
        """Read counter ``name`` (0 if never touched)."""
        return self._counters.get(name, default)

    def __getitem__(self, name: str) -> float:
        return self._counters.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def __iter__(self) -> Iterator[str]:
        return iter(self._counters)

    def items(self) -> Iterable[tuple[str, float]]:
        """Iterate over ``(name, value)`` pairs in sorted name order."""
        return sorted(self._counters.items())

    def with_prefix(self, prefix: str) -> dict[str, float]:
        """Return all counters whose name starts with ``prefix``."""
        return {k: v for k, v in self._counters.items() if k.startswith(prefix)}

    def sum_prefix(self, prefix: str) -> float:
        """Sum all counters whose name starts with ``prefix``."""
        return sum(v for k, v in self._counters.items() if k.startswith(prefix))

    def scoped(self, prefix: str) -> "ScopedStats":
        """Return a view that prepends ``prefix.`` to every counter name."""
        return ScopedStats(self, prefix)

    def histogram(self, name: str, bounds: Iterable[float] | None = None) -> Histogram:
        """Get (creating on first use) the named :class:`Histogram`.

        Hot paths should call this once at init and keep the returned
        object — it is stable for the registry's lifetime.
        """
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(bounds)
        return hist

    def get_histogram(self, name: str) -> Histogram | None:
        """The named histogram, or None if never created."""
        return self._histograms.get(name)

    def histogram_items(self) -> Iterable[tuple[str, Histogram]]:
        """Iterate over ``(name, histogram)`` pairs in name order."""
        return sorted(self._histograms.items())

    def merged_histogram(self, suffix: str) -> Histogram:
        """Merge every histogram whose name ends with ``.suffix``.

        Aggregates per-node distributions (``node3.miss_latency``)
        into one system-wide histogram; exact-name matches also count.
        """
        out = Histogram()
        for name, hist in self._histograms.items():
            if name == suffix or name.endswith("." + suffix):
                out.merge(hist)
        return out

    def timer(self, name: str) -> Timer:
        """Get (creating on first use) the named :class:`Timer`."""
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = Timer()
        return timer

    def timer_items(self) -> Iterable[tuple[str, Timer]]:
        """Iterate over ``(name, timer)`` pairs in name order."""
        return sorted(self._timers.items())

    def merge(self, other: "StatsRegistry") -> None:
        """Add every counter (and histogram) of ``other`` into this."""
        for name, value in other._counters.items():
            self._counters[name] += value
        for name, hist in other._histograms.items():
            self.histogram(name, hist.bounds).merge(hist)

    def snapshot(self) -> dict[str, float]:
        """Return a plain-dict copy of all counters."""
        return dict(self._counters)

    def diff(self, earlier: dict[str, float]) -> dict[str, float]:
        """Return counters minus an earlier :meth:`snapshot`."""
        out = {}
        for name, value in self._counters.items():
            delta = value - earlier.get(name, 0)
            if delta:
                out[name] = delta
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"StatsRegistry({len(self._counters)} counters)"


class CounterHandle:
    """A pre-resolved handle onto one counter in a registry.

    Components that bump the same counter on every event fetch a
    handle once at init (:meth:`ScopedStats.counter`) and call
    :meth:`inc` on the hot path — the dotted name is concatenated
    once, not per increment, making this strictly cheaper than
    :meth:`ScopedStats.add`.
    """

    __slots__ = ("_counters", "_key")

    def __init__(self, counters: dict, key: str):
        self._counters = counters
        self._key = key

    @property
    def name(self) -> str:
        """The full dotted counter name this handle resolves to."""
        return self._key

    def inc(self, amount: float = 1) -> None:
        """Increment the counter by ``amount``."""
        self._counters[self._key] += amount

    @property
    def value(self) -> float:
        """Current counter value (0 if never incremented)."""
        return self._counters.get(self._key, 0)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"CounterHandle({self._key!r}={self.value})"


class ScopedStats:
    """A prefix-applying view onto a :class:`StatsRegistry`.

    Counter increments are the single hottest stats operation (every
    commit, transaction, and miss bumps several), so ``add``/``set``/
    ``get`` go straight at the registry's counter dict through a
    cached alias instead of bouncing through a registry method call.
    """

    __slots__ = ("_registry", "_prefix", "_counters")

    def __init__(self, registry: StatsRegistry, prefix: str):
        self._registry = registry
        self._prefix = prefix.rstrip(".") + "."
        self._counters = registry._counters

    def add(self, name: str, amount: float = 1) -> None:
        """Increment ``prefix.name`` in the backing registry."""
        self._counters[self._prefix + name] += amount

    def set(self, name: str, value: float) -> None:
        """Set ``prefix.name`` to an absolute value."""
        self._counters[self._prefix + name] = value

    def get(self, name: str, default: float = 0) -> float:
        """Read ``prefix.name`` from the backing registry."""
        return self._counters.get(self._prefix + name, default)

    def counter(self, name: str) -> CounterHandle:
        """Pre-resolved :class:`CounterHandle` for ``prefix.name``."""
        return CounterHandle(self._counters, self._prefix + name)

    def histogram(self, name: str, bounds: Iterable[float] | None = None) -> Histogram:
        """Get-or-create ``prefix.name`` histogram in the registry."""
        return self._registry.histogram(self._prefix + name, bounds)

    def timer(self, name: str) -> Timer:
        """Get-or-create ``prefix.name`` timer in the registry."""
        return self._registry.timer(self._prefix + name)

    def scoped(self, prefix: str) -> "ScopedStats":
        """Nest a further prefix under this one."""
        return ScopedStats(self._registry, self._prefix + prefix)
