"""Deterministic, splittable random number generation.

Simulation reproducibility requires that every stochastic decision in
the system draws from a stream that is (a) fixed by the top-level seed
and (b) independent of unrelated components, so adding a counter to one
workload does not perturb another.  :class:`SplitRng` provides named
child streams derived by hashing the parent seed with the child name.
"""

from __future__ import annotations

import hashlib
import random


class SplitRng:
    """A seeded RNG that can derive independent named child streams.

    The object wraps :class:`random.Random`; the full Random API is
    available via attribute delegation (``randrange``, ``random``,
    ``choice``, ``shuffle``, ...).
    """

    def __init__(self, seed: int | str):
        self._seed = str(seed)
        self._random = random.Random(self._digest(self._seed))

    @staticmethod
    def _digest(text: str) -> int:
        return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")

    @property
    def seed(self) -> str:
        """The seed string this stream was created from."""
        return self._seed

    def split(self, name: str | int) -> "SplitRng":
        """Return an independent child stream identified by ``name``."""
        return SplitRng(f"{self._seed}/{name}")

    def __getattr__(self, item):
        return getattr(self._random, item)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SplitRng(seed={self._seed!r})"
