"""Shared substrate: addressing, configuration, events, RNG, statistics.

These modules have no dependency on the memory system, coherence layer,
or processor model; every other package builds on them.
"""

from repro.common.addressing import (
    DEFAULT_LINE_SIZE,
    WORD_SIZE,
    line_address,
    line_offset,
    word_index,
    words_per_line,
)
from repro.common.config import (
    BusConfig,
    CacheConfig,
    CoreConfig,
    LVPConfig,
    MachineConfig,
    ProtocolConfig,
    ProtocolKind,
    SLEConfig,
    StaleDetectionMode,
    ValidatePolicy,
    scaled_config,
    table1_config,
)
from repro.common.errors import ConfigError, ProtocolError, SimulationError
from repro.common.events import Scheduler
from repro.common.rng import SplitRng
from repro.common.stats import StatsRegistry

__all__ = [
    "DEFAULT_LINE_SIZE",
    "WORD_SIZE",
    "line_address",
    "line_offset",
    "word_index",
    "words_per_line",
    "BusConfig",
    "CacheConfig",
    "CoreConfig",
    "LVPConfig",
    "MachineConfig",
    "ProtocolConfig",
    "ProtocolKind",
    "SLEConfig",
    "StaleDetectionMode",
    "ValidatePolicy",
    "scaled_config",
    "table1_config",
    "ConfigError",
    "ProtocolError",
    "SimulationError",
    "Scheduler",
    "SplitRng",
    "StatsRegistry",
]
