"""Address arithmetic helpers.

The simulated machine uses a flat byte-addressed physical address space.
Caches operate on *lines* (power-of-two sized, 64 bytes by default) and
store data at *word* granularity (8-byte words), which is the
granularity at which store silence is detected, matching the paper's
per-word dirty bits in Figure 5.
"""

from __future__ import annotations

WORD_SIZE = 8
DEFAULT_LINE_SIZE = 64


def line_address(addr: int, line_size: int = DEFAULT_LINE_SIZE) -> int:
    """Return the line-aligned base address containing ``addr``."""
    return addr & ~(line_size - 1)


def line_offset(addr: int, line_size: int = DEFAULT_LINE_SIZE) -> int:
    """Return the byte offset of ``addr`` within its line."""
    return addr & (line_size - 1)


def word_index(addr: int, line_size: int = DEFAULT_LINE_SIZE) -> int:
    """Return the index of the word within the line containing ``addr``."""
    return line_offset(addr, line_size) // WORD_SIZE


def words_per_line(line_size: int = DEFAULT_LINE_SIZE) -> int:
    """Return the number of data words stored per cache line."""
    return line_size // WORD_SIZE


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0
