"""Discrete-event scheduler.

The simulator is event driven: cores, caches, and the bus schedule
callbacks at future cycle times.  Events at the same cycle fire in
insertion order (a stable tiebreak), which the atomic-bus coherence
model relies on for transaction serialization.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable

from repro.common.errors import SimulationError


class Scheduler:
    """A priority-queue discrete-event scheduler keyed by cycle time."""

    def __init__(self):
        self._queue: list[tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        self._now = 0
        self._events_fired = 0

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def at(self, time: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire at absolute cycle ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now {self._now}"
            )
        heappush(self._queue, (time, self._seq, callback))
        self._seq += 1

    def after(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.at(self._now + delay, callback)

    def step(self) -> bool:
        """Fire the next event.  Returns False if the queue is empty."""
        queue = self._queue
        if not queue:
            return False
        time, _, callback = heappop(queue)
        self._now = time
        self._events_fired += 1
        callback()
        return True

    def enable_profiling(self, profiler) -> None:
        """Attribute every fired event's wall time to ``profiler``.

        ``profiler`` is a :class:`repro.obs.profiler.SimProfiler` (any
        object with ``record(label, seconds)``).  The profiled step is
        swapped in as an instance attribute, so the default ``step``
        keeps zero profiling overhead when this is never called.
        """
        from time import perf_counter

        from repro.obs.profiler import component_of

        self._profiler = profiler
        self._perf_counter = perf_counter
        self._component_of = component_of
        self.step = self._profiled_step  # type: ignore[method-assign]

    def _profiled_step(self) -> bool:
        perf_counter = self._perf_counter
        if not self._queue:
            return False
        time, _, callback = heappop(self._queue)
        self._now = time
        self._events_fired += 1
        start = perf_counter()
        callback()
        self._profiler.record(self._component_of(callback), perf_counter() - start)
        return True

    def run(
        self,
        until: Callable[[], bool] | None = None,
        max_cycles: int | None = None,
        max_events: int | None = None,
    ) -> None:
        """Run events until the queue drains or a stop condition holds.

        ``until`` is checked after every event; ``max_cycles`` and
        ``max_events`` are hard safety limits that raise
        :class:`SimulationError` when exceeded (they indicate livelock).

        This is the simulator's hottest loop (every event of every run
        passes through it), so the body is inlined rather than calling
        :meth:`step`, with the queue and ``heappop`` hoisted to locals.
        ``self._now``/``self._events_fired`` are still written before
        each callback — callbacks read them through ``now``/
        ``events_fired`` (heartbeats, tracers, ``at()`` validation).
        """
        if "step" in self.__dict__:
            # Profiling swapped in a custom step; take the generic
            # (measured) path so every event stays attributed.
            self._run_via_step(until, max_cycles, max_events)
            return
        queue = self._queue
        pop = heappop
        if until is None and max_cycles is None and max_events is None:
            # Drain-the-queue fast path (replay, microbenchmarks):
            # no stop-condition or limit checks at all.
            while queue:
                time, _, callback = pop(queue)
                self._now = time
                self._events_fired += 1
                callback()
            return
        start_events = self._events_fired
        while queue:
            if until is not None and until():
                return
            if max_cycles is not None and self._now > max_cycles:
                raise SimulationError(f"exceeded max_cycles={max_cycles}")
            if max_events is not None and self._events_fired - start_events > max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
            time, _, callback = pop(queue)
            self._now = time
            self._events_fired += 1
            callback()

    def _run_via_step(
        self,
        until: Callable[[], bool] | None,
        max_cycles: int | None,
        max_events: int | None,
    ) -> None:
        """The generic run loop, dispatching through ``self.step``."""
        step = self.step
        start_events = self._events_fired
        while self._queue:
            if until is not None and until():
                return
            if max_cycles is not None and self._now > max_cycles:
                raise SimulationError(f"exceeded max_cycles={max_cycles}")
            if max_events is not None and self._events_fired - start_events > max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
            step()
