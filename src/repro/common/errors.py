"""Exception hierarchy for the simulator.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without catching unrelated bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A machine or workload configuration is invalid or inconsistent."""


class SimulationError(ReproError):
    """The simulation reached an impossible state (internal invariant)."""


class ProtocolError(SimulationError):
    """A coherence protocol invariant was violated.

    Raised when a cache observes a transaction that is illegal in its
    current state — e.g. two modified owners for one line, a validate
    arriving for a line whose saved value cannot match, or an unknown
    transaction type.  These always indicate a simulator bug, never a
    property of the simulated program.
    """


class DeadlockError(SimulationError):
    """Forward progress stopped: no events pending but threads unfinished."""
