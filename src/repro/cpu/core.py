"""Window-based out-of-order core timing model.

The core dispatches micro-ops from its thread program into a finite
window (the ROB), tracks register dependencies for timing, overlaps
independent cache misses (MLP bounded by the MSHR file), and commits in
order at the machine width.  Two implementation tricks keep it fast
enough for whole-benchmark simulation in Python:

* **Virtual-time algebra** — ALU completion and commit times are pure
  arithmetic over dependence times and slot cursors; only *memory
  operations* and program-control handoffs create scheduler events, so
  event count scales with memory ops, not instructions.
* **Timing-only speculation** — LVP verification failures and SLE
  aborts squash and replay the younger window contents (charging the
  paper's squash/refetch penalties) but never corrupt architectural
  values, because control-driving results reach the thread program
  only at commit, behind any unverified speculation.

Interfaces with the rest of the system:

* ``NodeMemory`` calls back ``load_completed`` / ``lvp_verified`` /
  ``lvp_mispredict``.
* The optional SLE engine observes fetch (``on_fetch``), intercepts
  store-conditionals (``consider_stcx``), watches completions
  (``on_op_completed``), and uses ``squash_from`` / ``stall_fetch`` /
  ``stcx_resolved`` / ``release_region_ops`` to drive elision.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable

from repro.common.config import MachineConfig
from repro.common.errors import SimulationError
from repro.common.events import Scheduler
from repro.common.stats import ScopedStats
from repro.cpu.isa import MicroOp, OpKind
from repro.cpu.program import ThreadProgram
from repro.memory.hierarchy import NodeMemory
from repro.memory.storebuffer import StoreBuffer, StoreEntry


class Phase(enum.Enum):
    """Lifecycle of an in-flight window op."""

    WAITING = "waiting"  # register dependencies unresolved
    ISSUED = "issued"  # memory access outstanding
    DONE = "done"  # completion time known


class WinOp:
    """One in-flight micro-op in the window."""

    __slots__ = (
        "op",
        "seq",
        "phase",
        "ready_time",
        "complete_time",
        "commit_time",
        "value",
        "spec_pending",
        "sle_blocked",
        "sle_buffered",
        "control_delivered",
        "retired",
        "dead",
        "unresolved",
        "dependents",
    )

    def __init__(self, op: MicroOp, seq: int):
        self.op = op
        self.seq = seq
        self.phase = Phase.WAITING
        self.ready_time = 0
        self.complete_time = 0
        self.commit_time = 0
        self.value: int | None = None
        self.spec_pending = False  # LVP value awaiting verification
        self.sle_blocked = False  # inside an uncommitted elision region
        self.sle_buffered = False  # store held for atomic region commit
        self.control_delivered = False
        self.retired = False  # popped from the window (commit done)
        self.dead = False  # squashed; ignore late callbacks
        self.unresolved = 0
        self.dependents: list[WinOp] = []

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"WinOp(#{self.seq} {self.op!r} {self.phase.value})"


class SlotCursor:
    """Width-limited slot allocator (dispatch/commit bandwidth)."""

    def __init__(self, width: int):
        self.width = width
        self._cycle = 0
        self._used = 0

    def next_at(self, earliest: int) -> int:
        """Return the first slot time >= ``earliest``."""
        if earliest > self._cycle:
            self._cycle = earliest
            self._used = 1
            return earliest
        if self._used < self.width:
            self._used += 1
            return self._cycle
        self._cycle += 1
        self._used = 1
        return self._cycle


class Core:
    """One processor core executing one thread program."""

    def __init__(
        self,
        core_id: int,
        config: MachineConfig,
        scheduler: Scheduler,
        node: NodeMemory,
        program: ThreadProgram,
        stats: ScopedStats,
        on_finished: Callable[[], None] | None = None,
    ):
        self.core_id = core_id
        self.config = config
        self.cc = config.core
        self.scheduler = scheduler
        self.node = node
        self.program = program
        self.stats = stats
        self.on_finished = on_finished
        self.sle_engine = None  # installed by the system builder

        self.window: deque[WinOp] = deque()
        self.reg_map: dict[int, "WinOp | int"] = {}
        self._retired_regs: dict[int, int] = {}
        self._replay: deque[MicroOp] = deque()
        self._block: list[MicroOp] | None = None
        self._block_pos = 0
        self._await_control: WinOp | None = None
        self._fetch_block: WinOp | None = None
        self._fetch_floor = 0
        self._fetch_slots = SlotCursor(self.cc.width)
        self._commit_slots = SlotCursor(self.cc.width)
        self.sb = StoreBuffer(self.cc.store_buffer)
        self._sb_ready: deque[int] = deque()  # FIFO-parallel commit times
        self._draining = False
        self._fetch_gate = False  # engine-imposed fetch stall
        self._last_commit_time = 0
        self._seq = 0
        self.program_done = False
        self.finished = False
        self.committed = 0
        node.core = self

    # ------------------------------------------------------------------
    # Main pump: fetch + commit, called after every state change
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin execution (schedule the first pump)."""
        self.scheduler.after(0, self.pump)

    def pump(self) -> None:
        """Advance fetch and commit as far as current state allows.

        Commit can unblock fetch (isync/sync retire, window slots) and
        fetch can enable commit (short ops completing synchronously),
        so the two alternate until neither makes progress.
        """
        if self.finished:
            return
        while True:
            before = (self._seq, self.committed)
            self._fetch()
            self._try_commit()
            if (self._seq, self.committed) == before:
                break
        self._check_finished()

    # ------------------------------------------------------------------
    # Fetch
    # ------------------------------------------------------------------

    def _fetch(self) -> None:
        while (
            not self.finished
            and not self._fetch_gate
            and self._await_control is None
            and self._fetch_block is None
            and len(self.window) < self.cc.rob_size
        ):
            op = self._next_op()
            if op is None:
                return
            self._admit(op)

    def _next_op(self) -> MicroOp | None:
        if self._replay:
            return self._replay.popleft()
        while True:
            if self._block is not None and self._block_pos < len(self._block):
                op = self._block[self._block_pos]
                self._block_pos += 1
                return op
            if self._block is not None and self._block[-1].control:
                # The control result arrives at commit; fetch stalls.
                return None
            if self.program_done:
                return None
            block = self.program.next_block(None)
            if block is None:
                self.program_done = True
                return None
            self._block = block
            self._block_pos = 0

    def _admit(self, op: MicroOp) -> None:
        w = WinOp(op, self._seq)
        self._seq += 1
        self.window.append(w)
        if self.sle_engine is not None:
            # The engine may mark the op (region membership, safe-isync
            # nop) or abort the active elision region, squashing through
            # this very op — in which case it is already back in the
            # replay queue and we stop processing it here.
            self.sle_engine.on_fetch(w)
            if w.dead:
                return
        fetch_time = self._fetch_slots.next_at(self._fetch_floor)
        w.ready_time = fetch_time + 1
        unresolved = 0
        for sreg in op.sregs:
            producer = self.reg_map.get(sreg)
            if isinstance(producer, WinOp):
                if producer.phase is Phase.DONE:
                    w.ready_time = max(w.ready_time, producer.complete_time)
                else:
                    producer.dependents.append(w)
                    unresolved += 1
            elif producer is not None:
                w.ready_time = max(w.ready_time, producer)
        if op.dreg is not None:
            self.reg_map[op.dreg] = w
        if op.control:
            self._await_control = w
        if op.kind is OpKind.ISYNC and not w.sle_buffered:
            # Context serialization: fetch stalls until commit.
            # (Inside an elided region the engine marks the op
            # sle_buffered and speculation continues past it, §4.2.2.)
            # SYNC/lwsync is a light fence: store ordering is already
            # enforced by the FIFO store buffer, so it costs only its
            # pipeline slot.
            self._fetch_block = w
        w.unresolved = unresolved
        if unresolved == 0:
            self._dispatch(w)

    # ------------------------------------------------------------------
    # Dispatch / execute
    # ------------------------------------------------------------------

    def _dispatch(self, w: WinOp) -> None:
        kind = w.op.kind
        if kind is OpKind.ALU:
            self._complete_op(w, w.ready_time + w.op.latency)
        elif kind is OpKind.STORE:
            # A store completes when address+data are ready; memory is
            # touched at drain (or at SLE region commit).
            self._complete_op(w, w.ready_time)
        elif kind in (OpKind.LOAD, OpKind.LARX):
            self._at_ready(w, self._issue_load)
        elif kind is OpKind.STCX:
            self._at_ready(w, self._issue_stcx)
        else:  # ISYNC / SYNC / END
            self._complete_op(w, w.ready_time)

    def _at_ready(self, w: WinOp, action: Callable[[WinOp], None]) -> None:
        now = self.scheduler.now
        if w.ready_time <= now:
            # Synchronous: the enclosing pump loop observes any
            # completion/commit progress and continues fetching.
            action(w)
        else:
            self.scheduler.at(w.ready_time, lambda: self._ready_event(w, action))

    def _ready_event(self, w: WinOp, action: Callable[[WinOp], None]) -> None:
        if w.dead:
            return
        action(w)
        # The action may have completed ops and unblocked commit/fetch;
        # this event is a top-level entry point, so pump.
        self.pump()

    def _issue_load(self, w: WinOp) -> None:
        now = self.scheduler.now
        addr = w.op.addr
        if w.op.kind is OpKind.LOAD:
            forwarded = self._forward(addr, w)
            if forwarded is not None:
                w.value = forwarded
                self.stats.add("loads.forwarded")
                self._complete_op(w, now + self.cc.forward_latency)
                self._try_commit()
                return
        elif self._forward(addr, w) is not None:
            # larx cannot take a forwarded value (the reservation must
            # be established at the coherence point), so it waits for
            # its own older same-address store to drain — uniprocessor
            # read-after-write ordering.
            self.stats.add("larx.drain_waits")
            self.scheduler.after(2, lambda: None if w.dead else self._issue_load(w))
            return
        reserve = w.op.kind is OpKind.LARX
        allow_spec = w.op.kind is OpKind.LOAD and not w.op.control
        status, latency, value = self.node.load(
            addr, w, reserve=reserve, allow_spec=allow_spec
        )
        if status == "hit":
            w.value = value
            self._complete_op(w, now + latency)
            self._try_commit()
        elif status == "spec":
            w.value = value
            w.spec_pending = True
            self.stats.add("lvp.spec_loads")
            self._complete_op(w, now + latency)
            self._try_commit()
        else:
            w.phase = Phase.ISSUED

    def _forward(self, addr: int, w: WinOp) -> int | None:
        """Store-to-load forwarding from window stores and the SB."""
        for other in reversed(self.window):
            if other.seq >= w.seq:
                continue
            if other.op.kind is OpKind.STORE and other.op.addr == addr:
                return other.op.value
            if other.op.kind is OpKind.STCX and other.op.addr == addr:
                # Conditional: outcome unknown at forward time; decline.
                return None
        return self.sb.forward(addr)

    def _issue_stcx(self, w: WinOp) -> None:
        if self.sle_engine is not None:
            verdict = self.sle_engine.consider_stcx(w)
            if verdict == "elide":
                # Elided: succeeds without any bus transaction (§4).
                w.value = 1
                self._complete_op(w, self.scheduler.now + 1)
                self._try_commit()
                return
            if verdict == "pending":
                # The engine completes this op via stcx_resolved().
                w.phase = Phase.ISSUED
                return
        issued = [False]

        def cb(ok: bool) -> None:
            w.value = int(ok)
            if issued[0] and not w.dead:
                self._complete_op(w, self.scheduler.now)
                self.pump()

        latency = self.node.stcx(w.op.addr, w.op.value, w.op.pc, cb)
        issued[0] = True
        if latency is not None:
            self._complete_op(w, self.scheduler.now + latency)
            self._try_commit()

    # ------------------------------------------------------------------
    # Completion and dependence wakeup
    # ------------------------------------------------------------------

    def _complete_op(self, w: WinOp, time: int) -> None:
        if w.dead:
            return
        w.complete_time = time
        w.phase = Phase.DONE
        if w.op.dreg is not None and self.reg_map.get(w.op.dreg) is w:
            self.reg_map[w.op.dreg] = time
        dependents, w.dependents = w.dependents, []
        for dep in dependents:
            if dep.dead:
                continue
            dep.ready_time = max(dep.ready_time, time)
            dep.unresolved -= 1
            if dep.unresolved == 0:
                self._dispatch(dep)
        if self.sle_engine is not None and self.sle_engine.active:
            self.sle_engine.on_op_completed(w)

    # -- memory-system callbacks ----------------------------------------

    def load_completed(self, w: WinOp, value: int) -> None:
        """A pending load's data arrived."""
        if w.dead:
            return
        w.value = value
        self._complete_op(w, self.scheduler.now)
        self.pump()

    def lvp_verified(self, w: WinOp) -> None:
        """LVP prediction for ``w`` confirmed; it may now commit."""
        if w.dead:
            return
        w.spec_pending = False
        self.stats.add("lvp.verified")
        self.pump()

    def lvp_mispredict(self, w: WinOp) -> None:
        """LVP prediction contradicted: machine squash at ``w`` (§3.2)."""
        if w.dead:
            return
        self.stats.add("lvp.squashes")
        self.squash_from(w, self.scheduler.now + self.cc.squash_penalty, "lvp")
        self.pump()

    # ------------------------------------------------------------------
    # Squash / replay
    # ------------------------------------------------------------------

    def squash_from(self, w: WinOp, resume_time: int, reason: str) -> None:
        """Remove ``w`` and all younger ops; they re-fetch from replay.

        The removed micro-ops are re-executed verbatim (straight-line
        replay is exact by the program discipline in DESIGN.md §5.4).
        """
        try:
            idx = self.window.index(w)
        except ValueError:
            raise SimulationError(f"squash target {w!r} not in window") from None
        removed = [self.window[i] for i in range(idx, len(self.window))]
        for _ in removed:
            self.window.pop()
        for r in removed:
            r.dead = True
        self._replay.extendleft(r.op for r in reversed(removed))
        self._rebuild_reg_map()
        if self._await_control is not None and self._await_control.dead:
            self._await_control = None
        if self._fetch_block is not None and self._fetch_block.dead:
            self._fetch_block = None
        self._fetch_floor = max(self._fetch_floor, resume_time)
        self.stats.add(f"squash.{reason}")
        self.stats.add("squash.ops", len(removed))
        if self.sle_engine is not None:
            self.sle_engine.on_squash(removed, reason)

    def _rebuild_reg_map(self) -> None:
        new_map: dict[int, "WinOp | int"] = dict(self._retired_regs)
        for u in self.window:
            if u.op.dreg is not None:
                new_map[u.op.dreg] = u.complete_time if u.phase is Phase.DONE else u
        self.reg_map = new_map

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def _try_commit(self) -> None:
        while self.window:
            w = self.window[0]
            if w.phase is not Phase.DONE or w.spec_pending or w.sle_blocked:
                return
            kind = w.op.kind
            if kind is OpKind.STORE and not w.sle_buffered and self.sb.full:
                return  # resumes when the SB drains
            ct = self._commit_slots.next_at(w.complete_time)
            w.commit_time = ct
            if ct > self._last_commit_time:
                self._last_commit_time = ct
            self.window.popleft()
            self._retire(w, ct)

    def _retire(self, w: WinOp, ct: int) -> None:
        op = w.op
        w.retired = True
        self.committed += 1
        self.stats.add(f"commit.{op.kind.value}")
        if op.dreg is not None:
            self._retired_regs[op.dreg] = w.complete_time
            if self.reg_map.get(op.dreg) is w:
                self.reg_map[op.dreg] = w.complete_time
        if op.kind is OpKind.STORE and not w.sle_buffered:
            self.sb.push(StoreEntry(addr=op.addr, value=op.value, seq=w.seq, pc=op.pc))
            self._sb_ready.append(ct)
            self._schedule_drain()
        if op.control and not w.control_delivered:
            self._deliver_control(w, ct)
        if self._fetch_block is w:
            self._fetch_block = None
            self._fetch_floor = max(
                self._fetch_floor, ct + self.cc.fetch_redirect_penalty
            )
        if op.kind is OpKind.END:
            self.program_done = True

    # ------------------------------------------------------------------
    # Program control handoff
    # ------------------------------------------------------------------

    def _deliver_control(self, w: WinOp, ct: int) -> None:
        w.control_delivered = True
        if self._await_control is w:
            self._await_control = None
        self.scheduler.at(
            max(ct, self.scheduler.now),
            lambda: self._continue_program(w.value, ct),
        )

    def _continue_program(self, value: int | None, t: int) -> None:
        if self.finished:
            return
        block = self.program.next_block(value)
        if block is None:
            self.program_done = True
        else:
            self._block = block
            self._block_pos = 0
            self._fetch_floor = max(self._fetch_floor, t)
        self.pump()

    # ------------------------------------------------------------------
    # Store buffer drain
    # ------------------------------------------------------------------

    def _schedule_drain(self) -> None:
        if self._draining or self.sb.empty:
            return
        self._draining = True
        ready = self._sb_ready[0]
        now = self.scheduler.now
        if ready > now:
            self.scheduler.at(ready, self._drain_head)
        else:
            self._drain_head()

    def _drain_head(self) -> None:
        entry = self.sb.head()
        issued = [False]

        def on_done() -> None:
            if issued[0]:
                self._drain_finished()

        latency = self.node.store(entry.addr, entry.value, entry.pc, on_done)
        issued[0] = True
        if latency is not None:
            self.scheduler.after(latency, self._drain_finished)

    def _drain_finished(self) -> None:
        self.sb.pop()
        self._sb_ready.popleft()
        self._draining = False
        self.stats.add("sb.drained")
        self._schedule_drain()
        self.pump()

    # ------------------------------------------------------------------
    # SLE region support
    # ------------------------------------------------------------------

    def release_region_ops(self, ops: list[WinOp]) -> None:
        """Unblock committed-elision region ops (engine region commit)."""
        for w in ops:
            w.sle_blocked = False
        self.pump()

    def stcx_resolved(self, w: WinOp, success: bool) -> None:
        """The engine finished handling a store-conditional it took over."""
        if w.dead:
            return
        w.value = int(success)
        self._complete_op(w, self.scheduler.now)
        self.pump()

    def stall_fetch(self, gated: bool) -> None:
        """Gate/ungate fetch (engine fallback acquisition in progress)."""
        self._fetch_gate = gated
        if not gated:
            self._fetch_floor = max(self._fetch_floor, self.scheduler.now)
            self.pump()

    # ------------------------------------------------------------------
    # Termination
    # ------------------------------------------------------------------

    def _check_finished(self) -> None:
        if self.finished or not self.program_done:
            return
        engine_active = self.sle_engine is not None and self.sle_engine.active
        if self.window or not self.sb.empty or self._replay or engine_active:
            return
        if self._block is not None and self._block_pos < len(self._block):
            return
        self.finished = True
        # Commits are future-dated virtual times; the program's logical
        # end is the later of wall time and the last commit.
        self.stats.set("finish_time", max(self.scheduler.now, self._last_commit_time))
        self.stats.set("committed", self.committed)
        if self.on_finished is not None:
            self.on_finished()
