"""Micro-op ISA.

A deliberately small PowerPC-flavored micro-op set: plain ALU ops with
register dependencies (timing only — values never drive them), loads
and stores with concrete addresses and values, ``larx``/``stcx``
(load-linked / store-conditional, the synchronization primitive whose
idiom SLE detects), ``isync`` (the context-serializing barrier AIX
locks use, §4.2.2), ``sync`` (memory barrier, drains the store
buffer), and ``end``.

Control-relevant results (lock values, stcx success) flow back to the
thread program only for ops marked ``control=True``, and only at
commit — the restriction that makes speculation timing-only (DESIGN.md
§5.5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class OpKind(enum.Enum):
    """Micro-op type."""

    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    LARX = "larx"
    STCX = "stcx"
    ISYNC = "isync"
    SYNC = "sync"
    END = "end"

    @property
    def is_memory(self) -> bool:
        """True for ops that access the memory system."""
        return self in (OpKind.LOAD, OpKind.STORE, OpKind.LARX, OpKind.STCX)

    @property
    def is_load_like(self) -> bool:
        """True for load/larx."""
        return self in (OpKind.LOAD, OpKind.LARX)

    @property
    def is_store_like(self) -> bool:
        """True for store/stcx."""
        return self in (OpKind.STORE, OpKind.STCX)


@dataclass
class MicroOp:
    """One micro-operation as emitted by a thread program."""

    kind: OpKind
    addr: int | None = None
    value: int | None = None  # store/stcx data
    dreg: int | None = None
    sregs: tuple[int, ...] = ()
    latency: int = 1  # ALU execution latency
    control: bool = False  # result delivered to the program at commit
    pc: int = 0  # static instruction id (predictors index on this)
    unsafe_ctx: bool = False  # isync: touches non-renamed context state
    meta: dict = field(default_factory=dict)  # e.g. SLE fallback recipe

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        addr = f" @{self.addr:#x}" if self.addr is not None else ""
        return f"MicroOp({self.kind.value}{addr} pc={self.pc})"


Block = list  # a basic block: list[MicroOp], straight-line by construction
