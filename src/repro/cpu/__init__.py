"""Processor model: micro-op ISA, thread programs, OoO window core."""

from repro.cpu.isa import Block, MicroOp, OpKind
from repro.cpu.program import BlockBuilder, ThreadProgram
from repro.cpu.core import Core

__all__ = ["Block", "MicroOp", "OpKind", "BlockBuilder", "ThreadProgram", "Core"]
