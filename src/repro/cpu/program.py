"""Thread programs and the block-builder DSL.

A thread program is a Python generator that yields basic blocks
(lists of :class:`~repro.cpu.isa.MicroOp`) and receives, at each
``yield``, the committed result of the previous block's *control* op
(or None if the block had none).  Control ops must be the last op of
their block — the program cannot observe a value mid-block — and
critical sections are straight-line blocks, which is what makes SLE
replay after an abort exact (DESIGN.md §5.4).
"""

from __future__ import annotations

from typing import Generator, Iterable

from repro.common.errors import SimulationError
from repro.cpu.isa import MicroOp, OpKind

ProgramGen = Generator[list, "int | None", None]


class ThreadProgram:
    """Wraps a program generator with validation and end-of-stream handling."""

    def __init__(self, gen: ProgramGen, name: str = "thread"):
        self._gen = gen
        self.name = name
        self._started = False
        self._finished = False

    @property
    def finished(self) -> bool:
        """True once the generator is exhausted."""
        return self._finished

    def next_block(self, control_value: int | None = None) -> list[MicroOp] | None:
        """Advance the program; returns the next block or None at the end."""
        if self._finished:
            return None
        try:
            if not self._started:
                self._started = True
                block = next(self._gen)
            else:
                block = self._gen.send(control_value)
        except StopIteration:
            self._finished = True
            return None
        self._validate(block)
        return block

    @staticmethod
    def _validate(block: list[MicroOp]) -> None:
        if not block:
            raise SimulationError("program yielded an empty block")
        for i, op in enumerate(block):
            if op.control and i != len(block) - 1:
                raise SimulationError(
                    "control op must be the last op of its block "
                    f"(op {i} of {len(block)})"
                )


class BlockBuilder:
    """Convenience builder for basic blocks.

    Registers are per-thread virtual tags; ``fresh()`` hands out unique
    ones.  The builder is reusable: ``take()`` returns the accumulated
    block and resets.
    """

    def __init__(self, pc_base: int = 0):
        self._ops: list[MicroOp] = []
        self._next_reg = 1
        self.pc_base = pc_base

    def fresh(self) -> int:
        """Allocate a fresh virtual register tag."""
        reg = self._next_reg
        self._next_reg += 1
        return reg

    @property
    def pending(self) -> int:
        """Number of ops accumulated since the last :meth:`take`."""
        return len(self._ops)

    def alu(
        self, dreg: int | None = None, sregs: Iterable[int] = (), latency: int = 1,
        pc: int = 0,
    ) -> int | None:
        """Append an ALU op; returns its destination register."""
        self._ops.append(
            MicroOp(OpKind.ALU, dreg=dreg, sregs=tuple(sregs), latency=latency, pc=pc)
        )
        return dreg

    def load(
        self, addr: int, dreg: int | None = None, pc: int = 0,
        sregs: Iterable[int] = (),
    ) -> int | None:
        """Append a load; ``sregs`` model an address dependence (the
        load cannot issue until its producers complete — pointer
        chasing), which is what gives LVP's early value delivery its
        memory-level-parallelism benefit (§3)."""
        self._ops.append(
            MicroOp(OpKind.LOAD, addr=addr, dreg=dreg, sregs=tuple(sregs), pc=pc)
        )
        return dreg

    def load_ctl(self, addr: int, pc: int = 0) -> None:
        """A load whose value the program consumes (ends the block)."""
        self._ops.append(MicroOp(OpKind.LOAD, addr=addr, control=True, pc=pc))

    def store(self, addr: int, value: int, pc: int = 0, sregs: Iterable[int] = ()) -> None:
        """Append a store of ``value`` to ``addr``."""
        self._ops.append(
            MicroOp(OpKind.STORE, addr=addr, value=value, sregs=tuple(sregs), pc=pc)
        )

    def larx(self, addr: int, pc: int = 0) -> None:
        """Load-linked: control op, sets the reservation."""
        self._ops.append(MicroOp(OpKind.LARX, addr=addr, control=True, pc=pc))

    def stcx(self, addr: int, value: int, pc: int = 0, meta: dict | None = None) -> None:
        """Store-conditional: control op (program needs success/failure)."""
        self._ops.append(
            MicroOp(
                OpKind.STCX, addr=addr, value=value, control=True, pc=pc,
                meta=meta or {},
            )
        )

    def isync(self, unsafe_ctx: bool = False, pc: int = 0) -> None:
        """Append a context-serializing isync."""
        self._ops.append(MicroOp(OpKind.ISYNC, unsafe_ctx=unsafe_ctx, pc=pc))

    def sync(self, pc: int = 0) -> None:
        """Append a lightweight memory fence (lwsync)."""
        self._ops.append(MicroOp(OpKind.SYNC, pc=pc))

    def end(self) -> None:
        """Append the program-terminating END op."""
        self._ops.append(MicroOp(OpKind.END))

    def take(self) -> list[MicroOp]:
        """Return the accumulated block and reset the builder."""
        block, self._ops = self._ops, []
        if not block:
            raise SimulationError("take() on an empty block")
        return block
