"""Litmus tests: tiny concurrent programs with allowed-outcome sets.

Each test is a set of per-node straight-line programs plus the exact
set of outcomes (tuples of load results) that coherent sequential
execution permits.  The runner enumerates *every* interleaving of the
programs — and both validate-policy decisions wherever a store detects
temporal silence — on the abstract machine, then asserts the observed
outcome set **equals** the allowed set:

* an extra outcome means the protocol is broken (it exhibits a
  forbidden result, e.g. reading a reverted lock as still held);
* a missing outcome means the model lost behaviors (over-restrictive
  abstraction), which would silently weaken every other check.

The temporal-silence protocols must produce exactly the same outcome
sets as MESI/MOESI on every test: T-state machinery is a performance
feature and must be architecturally invisible.  Each outcome keeps a
witness trace, replayable on the concrete system via
:mod:`repro.verify.replay`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import InterconnectKind
from repro.verify.model import AbstractMachine, Event, ProtocolSpec

# Program ops: ("load", line, word) | ("store", line, word, value)
Op = tuple


@dataclass(frozen=True)
class LitmusTest:
    """One named litmus test."""

    name: str
    description: str
    programs: tuple[tuple[Op, ...], ...]
    # Loads whose results form the outcome tuple, as (node, op_index).
    observed: tuple[tuple[int, int], ...]
    allowed: frozenset
    n_lines: int = 1
    n_words: int = 1

    @property
    def n_nodes(self) -> int:
        """Number of participating nodes (one per program)."""
        return len(self.programs)


LITMUS_TESTS = (
    LitmusTest(
        name="message-passing",
        description=(
            "P0 writes data then sets a flag; P1 reads the flag then the "
            "data.  Seeing the flag set guarantees seeing the data."
        ),
        programs=(
            (("store", 0, 0, 1), ("store", 1, 0, 1)),
            (("load", 1, 0), ("load", 0, 0)),
        ),
        observed=((1, 0), (1, 1)),  # (flag, data)
        allowed=frozenset({(0, 0), (0, 1), (1, 1)}),
        n_lines=2,
    ),
    LitmusTest(
        name="lock-handoff-revert",
        description=(
            "P0 acquires a lock (1), releases it back to free (0) — a "
            "temporally silent revert — then sets a flag; P1 reads the "
            "flag then the lock.  Seeing the flag set must imply seeing "
            "the lock free: a validate may only re-install the reverted "
            "value, never the transient held value."
        ),
        programs=(
            (("store", 0, 0, 1), ("store", 0, 0, 0), ("store", 1, 0, 1)),
            (("load", 1, 0), ("load", 0, 0)),
        ),
        observed=((1, 0), (1, 1)),  # (flag, lock)
        allowed=frozenset({(0, 0), (0, 1), (1, 0)}),
        n_lines=2,
    ),
    LitmusTest(
        name="false-sharing",
        description=(
            "P0 and P1 write different words of the same line, then each "
            "reads the other's word.  Coherence serializes whole-line "
            "ownership, so at least one node must see the other's write "
            "(both-miss (0, 0) is forbidden)."
        ),
        programs=(
            (("store", 0, 0, 1), ("load", 0, 1)),
            (("store", 0, 1, 1), ("load", 0, 0)),
        ),
        observed=((0, 1), (1, 1)),  # (P0 reads w1, P1 reads w0)
        allowed=frozenset({(0, 1), (1, 0), (1, 1)}),
        n_words=2,
    ),
)


@dataclass
class LitmusResult:
    """Observed outcomes of one test on one protocol/interconnect."""

    test: LitmusTest
    protocol: str
    interconnect: str
    outcomes: dict = field(default_factory=dict)  # outcome -> witness trace

    @property
    def forbidden(self) -> set:
        """Outcomes observed but not allowed (a broken protocol)."""
        return set(self.outcomes) - self.test.allowed

    @property
    def unreached(self) -> set:
        """Allowed outcomes never observed (an over-restrictive model)."""
        return self.test.allowed - set(self.outcomes)

    @property
    def ok(self) -> bool:
        """True when observed outcomes equal the allowed set exactly."""
        return not self.forbidden and not self.unreached

    def to_json(self) -> dict:
        """JSON-serializable form for the CLI/CI output."""
        return {
            "test": self.test.name,
            "protocol": self.protocol,
            "interconnect": self.interconnect,
            "ok": self.ok,
            "observed": sorted(list(o) for o in self.outcomes),
            "allowed": sorted(list(o) for o in self.test.allowed),
            "forbidden": sorted(list(o) for o in self.forbidden),
            "unreached": sorted(list(o) for o in self.unreached),
        }


class LitmusRunner:
    """Exhaustively interleaves litmus programs on the abstract machine."""

    def __init__(self, spec: ProtocolSpec,
                 interconnect: InterconnectKind = InterconnectKind.BUS):
        self.spec = spec
        self.interconnect = interconnect

    def run_test(self, test: LitmusTest) -> LitmusResult:
        """Enumerate every interleaving of one test's programs."""
        machine = AbstractMachine(
            self.spec.make_logic(),
            n_nodes=test.n_nodes,
            n_lines=test.n_lines,
            n_words=test.n_words,
            interconnect=self.interconnect,
        )
        result = LitmusResult(
            test=test,
            protocol=machine.protocol.name,
            interconnect=(
                "directory"
                if self.interconnect is InterconnectKind.DIRECTORY
                else "bus"
            ),
        )
        init = machine.initial()
        start = (init, (0,) * test.n_nodes, (), ())
        stack = [start]
        seen = set()
        while stack:
            state, pcs, loads, trace = stack.pop()
            key = (state, pcs, loads)
            if key in seen:
                continue
            seen.add(key)
            if all(pc >= len(p) for pc, p in zip(pcs, test.programs)):
                observed = self._outcome(test, loads)
                result.outcomes.setdefault(observed, trace)
                continue
            for node, program in enumerate(test.programs):
                pc = pcs[node]
                if pc >= len(program):
                    continue
                op = program[pc]
                next_pcs = pcs[:node] + (pc + 1,) + pcs[node + 1:]
                if op[0] == "load":
                    event: Event = ("load", node, op[1], op[2])
                    nxt, value = machine.apply(state, event)
                    stack.append(
                        (nxt, next_pcs, loads + (((node, pc), value),),
                         trace + (event,))
                    )
                    continue
                _, line, word, value = op
                if machine.store_detects_reversion(state, node, line, word, value):
                    decisions = ("validate", "quiet")
                else:
                    decisions = (None,)
                for decision in decisions:
                    event = (
                        ("store", node, line, word, value)
                        if decision is None
                        else ("store", node, line, word, value, decision)
                    )
                    nxt, _ = machine.apply(state, event)
                    stack.append((nxt, next_pcs, loads, trace + (event,)))
        return result

    @staticmethod
    def _outcome(test: LitmusTest, loads) -> tuple:
        values = dict(loads)
        return tuple(values[key] for key in test.observed)

    def run_all(self, tests=LITMUS_TESTS) -> list[LitmusResult]:
        """Run the whole suite (or a custom test list)."""
        return [self.run_test(t) for t in tests]
