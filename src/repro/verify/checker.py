"""Exhaustive explicit-state exploration with symmetry reduction.

A Murphi-style breadth-first search over the
:class:`~repro.verify.model.AbstractMachine` state graph.  Node
identities are symmetric (every node runs the same protocol over the
same lines), so states are stored under a *canonical key*: the minimum
over all node permutations of an orderable encoding of the state.
This typically cuts the stored state count by close to ``n_nodes!``.

For each canonical key the checker keeps one concrete *witness* state
and the ``(parent key, event)`` edge that first reached it.  Because
expansion always continues from the witness, the parent chain is a
real executable run of the machine — walking it back yields a
counterexample trace whose node indices are consistent end-to-end and
which is shortest-in-steps by BFS construction.  Those traces feed the
concrete replay bridge (:mod:`repro.verify.replay`) unchanged.

Checked per state: the predicates in :mod:`repro.verify.invariants`
plus deadlock (no enabled event).  Checked per event: the
validate-discipline and table-hole (``ProtocolError``) violations the
machine raises while applying it.  Transition coverage is recorded via
the :class:`~repro.coherence.protocol.ProtocolLogic` observer hook for
the whole exploration.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import permutations

from repro.coherence.protocol import ProtocolLogic
from repro.common.config import InterconnectKind
from repro.verify.invariants import check_state
from repro.verify.model import AbstractMachine, Event, ModelViolation
from repro.verify.table import TransitionCoverage, coverage_report


@dataclass(frozen=True)
class Violation:
    """One invariant failure with its shortest reproducing trace."""

    kind: str
    detail: str
    trace: tuple[Event, ...]
    depth: int

    def describe(self) -> str:
        """Multi-line human-readable rendering with the trace."""
        lines = [f"{self.kind}: {self.detail}",
                 f"counterexample ({len(self.trace)} events):"]
        for i, ev in enumerate(self.trace, 1):
            lines.append(f"  {i:2d}. {format_event(ev)}")
        return "\n".join(lines)


@dataclass
class CheckResult:
    """Outcome of one exhaustive (or bounded) exploration."""

    protocol: str
    interconnect: str
    n_nodes: int
    states: int = 0
    transitions: int = 0
    depth: int = 0
    complete: bool = True
    violations: list[Violation] = field(default_factory=list)
    coverage: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no violation was found."""
        return not self.violations

    def to_json(self) -> dict:
        """JSON-serializable form (the CLI's --format json payload)."""
        return {
            "protocol": self.protocol,
            "interconnect": self.interconnect,
            "nodes": self.n_nodes,
            "states": self.states,
            "transitions": self.transitions,
            "depth": self.depth,
            "complete": self.complete,
            "ok": self.ok,
            "violations": [
                {
                    "kind": v.kind,
                    "detail": v.detail,
                    "depth": v.depth,
                    "trace": [list(ev) for ev in v.trace],
                }
                for v in self.violations
            ],
            "coverage": self.coverage,
        }


def format_event(event: Event) -> str:
    """Human-readable rendering of one abstract event tuple."""
    kind = event[0]
    if kind == "load":
        return f"P{event[1]}: load  line {event[2]} word {event[3]}"
    if kind == "store":
        decision = f"  [{event[5]}]" if len(event) > 5 else ""
        return (f"P{event[1]}: store line {event[2]} word {event[3]} "
                f"<- {event[4]}{decision}")
    if kind == "evict":
        return f"P{event[1]}: evict line {event[2]}"
    return repr(event)


def _encode_nl(nl) -> tuple:
    """Orderable encoding of one node-line tuple."""
    if nl is None:
        return (-1,)
    st, data, vis, div = nl
    return (st.index, data, vis if vis is not None else (-1,), int(div))


# Directory-state canonicalization sweeps all n! node permutations per
# stored state.  Past this many nodes the sweep costs more than the
# reduction saves; refuse loudly instead of silently thrashing.
MAX_SYMMETRY_NODES = 6


class ModelChecker:
    """BFS over the abstract machine with node-permutation reduction."""

    def __init__(self, machine: AbstractMachine,
                 max_states: int | None = None,
                 max_depth: int | None = None,
                 symmetry: bool = True):
        self.machine = machine
        self.max_states = max_states
        self.max_depth = max_depth
        self.symmetry = symmetry
        if (symmetry
                and machine.interconnect is InterconnectKind.DIRECTORY
                and machine.n_nodes > MAX_SYMMETRY_NODES):
            raise ValueError(
                f"symmetry reduction on a directory machine sweeps "
                f"n_nodes! permutations per state; {machine.n_nodes} nodes "
                f"exceeds the cap of {MAX_SYMMETRY_NODES} — pass "
                f"symmetry=False (bus machines canonicalize by sorting "
                f"and have no such cap)"
            )

    # -- canonicalization ------------------------------------------------

    def _canonical(self, state) -> tuple:
        nodes, mem, arch, gvis, dirs = state
        if not self.symmetry:
            enc_nodes = tuple(
                tuple(_encode_nl(nl) for nl in row) for row in nodes
            )
            if dirs is None:
                enc_dirs = ()
            else:
                enc_dirs = tuple(
                    (
                        -1 if d[0] is None else d[0],
                        tuple(sorted(d[1])),
                        tuple(sorted(d[2])),
                    )
                    for d in dirs
                )
            return ((enc_nodes, enc_dirs), mem, arch, gvis)
        if dirs is None:
            # Bus states carry no node-index cross references, so the
            # minimum over all node permutations of the node-row tuple
            # is exactly the sorted tuple: same canonical classes, same
            # key values, O(n log n) instead of O(n!) — this is what
            # makes 8/16-node bus configs checkable at all.
            enc_nodes = tuple(sorted(
                tuple(_encode_nl(nl) for nl in row) for row in nodes
            ))
            return ((enc_nodes, ()), mem, arch, gvis)
        # Directory: sharer/owner fields reference node indices, so the
        # full permutation sweep is required — but iterate it lazily
        # (nothing materialized) and rely on the constructor cap.
        best = None
        for perm in permutations(range(self.machine.n_nodes)):
            inv = [0] * len(perm)
            for new, old in enumerate(perm):
                inv[old] = new
            enc_nodes = tuple(
                tuple(_encode_nl(nl) for nl in nodes[old]) for old in perm
            )
            enc_dirs = tuple(
                (
                    -1 if d[0] is None else inv[d[0]],
                    tuple(sorted(inv[s] for s in d[1])),
                    tuple(sorted(inv[s] for s in d[2])),
                )
                for d in dirs
            )
            key = (enc_nodes, enc_dirs)
            if best is None or key < best:
                best = key
        return (best, mem, arch, gvis)

    # -- exploration -----------------------------------------------------

    def run(self) -> CheckResult:
        """Explore every reachable state; stop at the first violation."""
        machine = self.machine
        protocol: ProtocolLogic = machine.protocol
        coverage = TransitionCoverage()
        saved_observer = protocol.observer
        protocol.observer = coverage.record
        result = CheckResult(
            protocol=protocol.name,
            interconnect=(
                "directory"
                if machine.interconnect is InterconnectKind.DIRECTORY
                else "bus"
            ),
            n_nodes=machine.n_nodes,
        )
        try:
            self._explore(result, coverage)
        finally:
            protocol.observer = saved_observer
        result.coverage = coverage_report(
            protocol, coverage,
            directory=machine.interconnect is InterconnectKind.DIRECTORY,
        )
        return result

    def _explore(self, result: CheckResult, coverage: TransitionCoverage):
        machine = self.machine
        init = machine.initial()
        init_key = self._canonical(init)
        # canonical key -> (witness concrete state, depth);
        # parent edge: canonical key -> (parent key, event)
        witness: dict[tuple, tuple] = {init_key: init}
        depth_of: dict[tuple, int] = {init_key: 0}
        parent: dict[tuple, tuple] = {}
        queue = deque([init_key])

        bad = check_state(machine, init)
        if bad is not None:  # pragma: no cover - initial state is trivially fine
            result.violations.append(Violation(bad.kind, bad.detail, (), 0))
            return

        while queue:
            key = queue.popleft()
            state = witness[key]
            depth = depth_of[key]
            result.depth = max(result.depth, depth)
            if self.max_depth is not None and depth >= self.max_depth:
                result.complete = False
                continue
            enabled = 0
            for event in machine.events(state):
                enabled += 1
                try:
                    nxt, _ = machine.apply(state, event)
                except ModelViolation as exc:
                    trace = self._trace(parent, key) + (event,)
                    result.violations.append(
                        Violation(exc.kind, exc.detail, trace, depth + 1)
                    )
                    result.states = len(witness)
                    return
                if nxt == state:
                    continue
                result.transitions += 1
                nkey = self._canonical(nxt)
                if nkey in witness:
                    continue
                witness[nkey] = nxt
                depth_of[nkey] = depth + 1
                parent[nkey] = (key, event)
                bad = check_state(machine, nxt)
                if bad is not None:
                    trace = self._trace(parent, nkey)
                    result.violations.append(
                        Violation(bad.kind, bad.detail, trace, depth + 1)
                    )
                    result.states = len(witness)
                    return
                queue.append(nkey)
                if (self.max_states is not None
                        and len(witness) >= self.max_states):
                    result.states = len(witness)
                    result.complete = False
                    return
            if enabled == 0:  # pragma: no cover - stores are always enabled
                trace = self._trace(parent, key)
                result.violations.append(
                    Violation("deadlock", "state has no enabled event",
                              trace, depth)
                )
                result.states = len(witness)
                return
        result.states = len(witness)

    @staticmethod
    def _trace(parent: dict, key: tuple) -> tuple[Event, ...]:
        events = []
        while key in parent:
            key, event = parent[key]
            events.append(event)
        return tuple(reversed(events))
