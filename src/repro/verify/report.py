"""Rendering for verification results (``repro-sim check``).

Text output is for humans at a terminal: one compact block per
protocol/interconnect combination, counterexample traces spelled out
event by event, coverage reduced to its three numbers unless a row is
actually missing.  JSON output is the same data unabridged, for CI
jobs that want to archive or diff it.
"""

from __future__ import annotations

from repro.verify.checker import CheckResult, format_event
from repro.verify.litmus import LitmusResult
from repro.verify.replay import ReplayOutcome


def render_check(result: CheckResult) -> str:
    """One text block for a model-check run."""
    cov = result.coverage
    head = (
        f"[{result.protocol}/{result.interconnect}] "
        f"{result.states} states, {result.transitions} transitions, "
        f"depth {result.depth}"
        f"{'' if result.complete else ' (bounded — NOT exhaustive)'}"
    )
    lines = [head]
    if cov:
        lines.append(
            f"  coverage: {cov['rows_exercised']}/{cov['rows_reachable']} "
            f"reachable rows exercised "
            f"({cov['rows_total'] - cov['rows_reachable']} invariant-unreachable)"
        )
        # Missing rows only mean something after a full clean run —
        # exploration stops at the first violation, and a bounded run
        # never saw the whole space.
        if result.ok and result.complete:
            for row in cov["missing"]:
                lines.append(f"  MISSING row: {'.'.join(row['row'])}")
        for row in cov["unexpected"]:
            lines.append(f"  UNEXPECTED row: {'.'.join(row['row'])}")
    if result.ok:
        lines.append("  ok: no violations")
    for v in result.violations:
        lines.append(f"  VIOLATION {v.kind}: {v.detail}")
        lines.append(f"  counterexample ({len(v.trace)} events):")
        for i, ev in enumerate(v.trace, 1):
            lines.append(f"    {i:2d}. {format_event(ev)}")
    return "\n".join(lines)


def render_litmus(results: list[LitmusResult]) -> str:
    """One line per litmus test, with outcome-set deltas when wrong."""
    lines = []
    for r in results:
        mark = "ok" if r.ok else "FAIL"
        lines.append(
            f"  litmus {r.test.name:<22s} {mark:4s} "
            f"{len(r.outcomes)} outcomes"
        )
        if r.forbidden:
            lines.append(f"    forbidden outcomes seen: {sorted(r.forbidden)}")
        if r.unreached:
            lines.append(f"    allowed outcomes missed: {sorted(r.unreached)}")
    return "\n".join(lines)


def render_replay(outcome: ReplayOutcome, trace_len: int) -> str:
    """Summarize a concrete replay of a counterexample trace."""
    if outcome.ok:
        return (
            f"  concrete replay: clean ({outcome.checks} checks) — the "
            f"abstract violation did not reproduce on the real system"
        )
    where = (
        f"at event {outcome.failed_at + 1}/{trace_len}"
        if outcome.failed_at is not None
        else "in the end-of-run sweep"
    )
    return (
        f"  concrete replay: FAILED {where} "
        f"({outcome.checks} checks)\n    {outcome.error}"
    )
