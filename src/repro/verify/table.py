"""Transition-table introspection and coverage accounting.

The checker wants to report which rows of each protocol's transition
table its exploration exercised, and the docs want a table that is
guaranteed to match the implementation.  Both come from the same
place: *probing* the real :class:`~repro.coherence.protocol.
ProtocolLogic` — for every (state, event) pair, run the table code
against a synthetic line and record the outcome (a post state, or
"illegal" when the implementation deliberately raises
:class:`~repro.common.errors.ProtocolError`).

Row keys are ``(side, pre, event)`` as produced by the
``TransitionRecord`` observer hook (see ``protocol.py``):

* remote rows: ``Read``, ``Read+flush``, ``ReadX``, ``ReadX+flush``,
  ``Upgrade``, ``Validate``, ``Writeback`` against each state;
* local rows: fills (``fill.Read.S`` / ``fill.Read.E`` /
  ``fill.ReadX``), ``PrWr.Upgrade``, ``PrWr.Validate``, the silent
  ``PrWr.hit`` E→M upgrade, the ``PrRd.hit`` VS→S demotion, and
  ``evict`` from each state.

Some probe-legal rows are unreachable *because the invariants hold*
(an S copy can never observe a dirty flush: M excludes S).  The
coverage report separates those out — seeing them stay unexercised in
an exhaustive run is itself evidence the invariant held.
"""

from __future__ import annotations

from repro.coherence.messages import SnoopResult, TxnKind
from repro.coherence.protocol import ProtocolLogic, TransitionRecord
from repro.coherence.states import LineState

RowKey = tuple[str, str, str]

def _unreachable_reason(
    protocol: ProtocolLogic, pre: str, label: str, directory: bool = False
) -> str | None:
    """Why a probe-legal remote row cannot occur while the invariants hold.

    These rows staying unexercised in an exhaustive run is evidence the
    forbidding invariant (or, with ``directory=True``, the home's
    contact discipline) held, so the coverage report lists them apart
    from genuinely-missing rows.
    """
    flush = label.endswith("+flush")
    if label == "Validate" and not protocol.has_temporal:
        return "without a T state no validate is ever broadcast"
    if pre in ("M", "O") and label in ("Read", "ReadX"):
        return "a dirty copy is always itself the flusher (single dirty owner)"
    if pre == "E" and flush:
        return "E excludes every other copy (SWMR), so no remote flusher exists"
    if pre in ("S", "VS") and flush and not protocol.has_owned:
        return "without an O state a dirty owner excludes clean sharers"
    if label == "Validate" and pre in ("S", "VS"):
        return ("benign real-interconnect race (read granted between a "
                "validate's issue and its grant); the atomic-grant model "
                "has no such window")
    if label == "Writeback":
        if pre in ("M", "E", "O"):
            return "a second dirty copy cannot exist to write back"
        if directory and pre in ("S", "VS"):
            return "writebacks are multicast to tracked T-sharers only"
        if pre in ("S", "VS") and not protocol.has_owned:
            return "writebacks come only from M evictions, which exclude sharers"
    if pre == "T":
        if label == "Upgrade":
            return ("while any T copy exists the only valid copy is the dirty "
                    "owner whose invalidation created it, so no sharer exists "
                    "to issue an upgrade")
        if not directory and label in ("Read", "ReadX"):
            return ("a T copy always coexists with a live dirty owner, whose "
                    "flush makes every read/readx the +flush row")
        if directory and label in ("Read", "Read+flush"):
            return ("the home never contacts T-sharers on reads; a flushing "
                    "read un-tracks them instead")
        if directory and label == "ReadX":
            return ("tracked T-sharers imply a live dirty owner, so an "
                    "invalidating readx always carries its flush")
    if directory:
        if pre == "I" and label in ("Read", "Read+flush"):
            return "reads contact only the listed owner, never invalid residue"
        if (pre == "I" and label in ("ReadX", "Upgrade")
                and not protocol.has_temporal):
            return ("invalid residue is contacted only while tracked, which "
                    "implies a live dirty owner (so readx always flushes) "
                    "and no upgradable sharer")
        if pre == "S" and label in ("Read", "Read+flush") and protocol.has_owned:
            return ("reads contact only the listed owner, which stays dirty "
                    "(M->O) on a flush and retires to O on a validate — "
                    "never plain S")
        if pre == "VS" and label in ("Read", "Read+flush"):
            return ("reads contact only the listed owner; a validating owner "
                    "retires to O, never VS")
    return None


class TransitionCoverage:
    """Observed transition rows, fed by the protocol observer hook."""

    def __init__(self) -> None:
        self.rows: dict[RowKey, set[str]] = {}

    def record(self, rec: TransitionRecord) -> None:
        """Observer callback: remember the row and its outcome."""
        self.rows.setdefault(rec.key, set()).add(rec.post)

    def __len__(self) -> int:
        return len(self.rows)


def _probe_remote(protocol: ProtocolLogic, pre: LineState, kind: TxnKind,
                  flush: bool) -> str:
    """Outcome of one remote row: a post-state letter or 'illegal'."""
    label = f"{kind.value}+flush" if flush else kind.value
    return protocol.probe_remote(pre, label)


def expected_rows(
    protocol: ProtocolLogic, directory: bool = False
) -> dict[RowKey, dict]:
    """Probe the implementation for every legal table row.

    Returns ``{row_key: {"post": ..., "unreachable": reason|None}}``
    for rows the implementation accepts; deliberately-illegal rows
    (``ProtocolError`` by design) are excluded — reaching one during
    exploration is reported as a violation, not as coverage.
    """
    # Hide any installed observer while probing: probes are not coverage.
    saved, protocol.observer = protocol.observer, None
    try:
        rows: dict[RowKey, dict] = {}
        states = protocol.states()
        for pre in states:
            for kind in TxnKind:
                variants = [False]
                if kind in (TxnKind.READ, TxnKind.READX):
                    variants.append(True)
                for flush in variants:
                    outcome = _probe_remote(protocol, pre, kind, flush)
                    if outcome == "illegal":
                        continue
                    label = (
                        f"{kind.value}+flush" if flush else kind.value
                    )
                    key = ("remote", pre.value, label)
                    rows[key] = {
                        "post": outcome,
                        "unreachable": _unreachable_reason(
                            protocol, pre.value, label, directory
                        ),
                    }

        def local(pre: str, event: str, post: str, unreachable: str | None = None):
            rows[("local", pre, event)] = {"post": post, "unreachable": unreachable}

        fill_sources = ["-", "I", "T"] if protocol.has_temporal else ["-", "I"]
        shared = SnoopResult(shared=True)
        alone = SnoopResult(shared=False)
        for pre in fill_sources:
            local(pre, f"fill.Read.{protocol.fill_state(TxnKind.READ, shared).value}",
                  protocol.fill_state(TxnKind.READ, shared).value)
            alone_fill = protocol.fill_state(TxnKind.READ, alone).value
            local(pre, f"fill.Read.{alone_fill}", alone_fill,
                  unreachable=(
                      "a load missing from T always finds the live dirty "
                      "owner asserting sharing, so it fills S"
                      if pre == "T" and alone_fill == "E" and not directory
                      else None
                  ))
            local(pre, "fill.ReadX",
                  protocol.fill_state(TxnKind.READX, alone).value)
        upgrade_sources = ["S"]
        if protocol.has_owned:
            upgrade_sources.append("O")
        if protocol.enhanced:
            upgrade_sources.append("VS")
        for pre in upgrade_sources:
            local(pre, "PrWr.Upgrade", "M")
        local("E", "PrWr.hit", "M")
        if protocol.has_temporal:
            local("M", "PrWr.Validate", protocol.post_validate_state().value)
        if protocol.enhanced:
            local("VS", "PrRd.hit", "S")
        for st in states:
            local(st.value, "evict", "-")
        return rows
    finally:
        protocol.observer = saved


def coverage_report(
    protocol: ProtocolLogic,
    coverage: TransitionCoverage,
    directory: bool = False,
) -> dict:
    """Compare exercised rows against the probed table.

    Returns a dict with totals, the exercised row list, the reachable
    rows never exercised (``missing`` — these deserve attention), and
    the invariant-unreachable rows that correctly stayed unexercised
    (``unreachable_ok``).
    """
    expected = expected_rows(protocol, directory=directory)
    exercised, missing, unreachable_ok, unexpected = [], [], [], []
    for key, info in sorted(expected.items()):
        if key in coverage.rows:
            exercised.append(
                {"row": list(key), "post": sorted(coverage.rows[key])}
            )
        elif info["unreachable"]:
            unreachable_ok.append(
                {"row": list(key), "why": info["unreachable"]}
            )
        else:
            missing.append({"row": list(key), "post": info["post"]})
    for key in sorted(coverage.rows):
        if key not in expected:
            unexpected.append(
                {"row": list(key), "post": sorted(coverage.rows[key])}
            )
    reachable_total = sum(1 for i in expected.values() if not i["unreachable"])
    return {
        "protocol": protocol.name,
        "rows_total": len(expected),
        "rows_reachable": reachable_total,
        "rows_exercised": len(exercised),
        "exercised": exercised,
        "missing": missing,
        "unreachable_ok": unreachable_ok,
        "unexpected": unexpected,
    }
