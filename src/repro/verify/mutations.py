"""Seeded protocol bugs for exercising the verification loop.

Each mutation patches one decision on a *fresh copy* of a
:class:`~repro.coherence.protocol.ProtocolLogic` instance (never the
class, and never the caller's instance) to re-introduce a plausible
implementation mistake.  The model checker must find a counterexample
for every mutation, and replaying that counterexample on the concrete
system must trip the runtime
:class:`~repro.coherence.validation.CoherenceChecker` the same way —
demonstrating that the abstract model, the invariants, and the replay
bridge all talk about the same machine.

:func:`apply_mutation` returns the mutated copy and leaves its
argument untouched.  The copy discipline is what makes mutation
testing safe to run in a loop (the fuzz campaign applies thousands of
mutations per process): a mutated table can never leak into a
subsequent clean run, because no live instance is ever patched in
place.

Mutations only make sense for temporal protocols where noted.
"""

from __future__ import annotations

from repro.coherence.messages import TxnKind
from repro.coherence.protocol import ProtocolLogic, make_protocol
from repro.coherence.states import LineState


def _validate_installs_m(protocol: ProtocolLogic) -> None:
    """Remote T copies re-install as M instead of shared.

    A validate then mints one writable copy per T sharer — the classic
    'forgot the requester keeps ownership' bug.  Breaks SWMR at the
    first validate with any remote T copy.
    """
    protocol.revalidated_state = lambda: LineState.M  # type: ignore[method-assign]


def _fill_exclusive_on_shared_read(protocol: ProtocolLogic) -> None:
    """Read fills install E even when the shared line was asserted.

    Breaks SWMR as soon as a read misses on a line someone else holds.
    """
    orig = protocol.fill_state

    def fill_state(kind, result, _orig=orig):
        state = _orig(kind, result)
        if kind is TxnKind.READ and state is LineState.S:
            return LineState.E
        return state

    protocol.fill_state = fill_state  # type: ignore[method-assign]


def _t_ignores_flush(protocol: ProtocolLogic) -> None:
    """T copies survive a dirty flush.

    The saved value is then older than the last globally visible one,
    so a later validate would re-install stale data.  Breaks the
    T-discipline invariant at the flush.
    """
    orig = protocol._apply_read

    def _apply_read(line, state, result, _orig=orig):
        if state is LineState.T:
            return  # bug: keep the rotten saved copy
        _orig(line, state, result)

    protocol._apply_read = _apply_read  # type: ignore[method-assign]


MUTATIONS = {
    "validate-installs-m": _validate_installs_m,
    "fill-exclusive-on-shared-read": _fill_exclusive_on_shared_read,
    "t-ignores-flush": _t_ignores_flush,
}

# Mutations that require the T machinery to be reachable at all.
TEMPORAL_ONLY = frozenset({"validate-installs-m", "t-ignores-flush"})


def apply_mutation(protocol: ProtocolLogic, name: str) -> ProtocolLogic:
    """Return a mutated fresh copy of ``protocol``; the argument is untouched.

    The copy is rebuilt from ``protocol.config`` via
    :func:`~repro.coherence.protocol.make_protocol`, so the caller's
    instance (and any tables the class shares) stays byte-identical to
    pristine.  Callers must use the return value::

        ctrl.protocol = apply_mutation(ctrl.protocol, "t-ignores-flush")
    """
    try:
        patch = MUTATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown mutation {name!r} (choose from {sorted(MUTATIONS)})"
        ) from None
    if name in TEMPORAL_ONLY and not protocol.has_temporal:
        raise ValueError(f"mutation {name!r} needs a temporal protocol")
    mutated = make_protocol(protocol.config)
    patch(mutated)
    return mutated
