"""Concrete-replay bridge: abstract traces on the real memory system.

A counterexample from the model checker (or a litmus interleaving) is
a sequence of abstract events.  This module re-executes such a trace
on the *actual* simulator components — real
:class:`~repro.coherence.controller.CoherenceController` +
:class:`~repro.memory.hierarchy.NodeMemory` per node over a real
:class:`~repro.coherence.bus.SnoopBus` or
:class:`~repro.coherence.directory.DirectoryNetwork` — with the
runtime :class:`~repro.coherence.validation.CoherenceChecker`
attached.  Cores are replaced by a record-only sink (a core would
impose its own program order; the trace *is* the order), and the
scheduler is drained to quiescence after every event so the replay
serializes exactly like the atomic-grant abstraction.

The point of the bridge is closing the loop in both directions:

* a counterexample found on a seeded protocol mutation must make the
  concrete system fail too (same invariant, same event) — evidence
  the abstraction models the machine we actually simulate;
* a clean abstract trace must replay cleanly, with every load
  observing the same value the model predicted.

Validate-policy decisions recorded in the trace (``validate`` /
``quiet`` store events) are enforced by a scripted policy object, so
any policy the real system supports can be replayed deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.addressing import WORD_SIZE
from repro.common.config import InterconnectKind, MachineConfig, scaled_config
from repro.common.errors import ProtocolError, SimulationError
from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.coherence.bus import SnoopBus
from repro.coherence.controller import CoherenceController
from repro.coherence.directory import DirectoryNetwork
from repro.coherence.policies import ValidatePolicyBase
from repro.coherence.validation import CoherenceChecker
from repro.memory.hierarchy import NodeMemory
from repro.memory.mainmem import MainMemory
from repro.verify.model import Event, ProtocolSpec, line_base
from repro.verify.mutations import apply_mutation


class _SinkCore:
    """Stands in for a Core: records async load completions."""

    def __init__(self):
        self.completions: dict[object, int] = {}

    def load_completed(self, winop, value: int) -> None:
        """Record an asynchronous load completion."""
        self.completions[winop] = value

    # LVP resolution hooks (never fire: LVP stays disabled in replays).
    def lvp_verified(self, winop) -> None:  # pragma: no cover - defensive
        """No-op; LVP is disabled in replays."""
        pass

    def lvp_mispredict(self, winop, value) -> None:  # pragma: no cover
        """No-op; LVP is disabled in replays."""
        pass


class _ScriptedPolicy(ValidatePolicyBase):
    """Replays recorded validate decisions; flags unscripted queries."""

    def __init__(self):
        self.next_decision: bool | None = None
        self.unscripted = 0
        self.unconsumed = 0

    def arm(self, decision: bool | None) -> None:
        """Queue the decision for the next validate query."""
        if self.next_decision is not None:
            self.unconsumed += 1
        self.next_decision = decision

    def should_validate(self, line, span=None) -> bool:
        """Answer with the armed decision; count unscripted queries."""
        decision = self.next_decision
        self.next_decision = None
        if decision is None:
            # The abstract model did not predict a temporal-silence
            # detection here: divergence worth reporting, but answer
            # False so the replay can continue and surface more.
            self.unscripted += 1
            return False
        return decision


@dataclass
class ReplayOutcome:
    """Result of replaying one abstract trace concretely."""

    ok: bool
    error: str | None = None
    failed_at: int | None = None  # index of the event that raised
    loads: list[int] = field(default_factory=list)
    checks: int = 0
    divergences: list[str] = field(default_factory=list)

    def to_json(self) -> dict:
        """JSON-serializable form for the CLI/CI output."""
        return {
            "ok": self.ok,
            "error": self.error,
            "failed_at": self.failed_at,
            "loads": self.loads,
            "checks": self.checks,
            "divergences": self.divergences,
        }


class ConcreteReplayer:
    """Drives real coherence components event-by-event, checker attached."""

    def __init__(
        self,
        spec: ProtocolSpec,
        n_nodes: int = 3,
        interconnect: InterconnectKind = InterconnectKind.BUS,
        mutate: str | None = None,
        config: MachineConfig | None = None,
    ):
        if config is None:
            config = scaled_config(n_procs=n_nodes)
        pc = spec.protocol_config()
        config = config.with_protocol(
            kind=pc.kind, enhanced=pc.enhanced, validate_policy=pc.validate_policy,
            squash_silent_stores=False,
        )
        config = MachineConfig(
            n_procs=n_nodes, core=config.core, l1=config.l1, l2=config.l2,
            bus=config.bus, protocol=config.protocol, lvp=config.lvp,
            sle=config.sle, interconnect=interconnect,
        )
        config.validate()
        self.config = config
        self.scheduler = Scheduler()
        self.stats = StatsRegistry()
        self.memory = MainMemory(config.line_size)
        bus_cls = (
            DirectoryNetwork
            if interconnect is InterconnectKind.DIRECTORY
            else SnoopBus
        )
        self.bus = bus_cls(
            self.scheduler, config.bus, self.memory, self.stats.scoped("bus")
        )
        self.controllers: list[CoherenceController] = []
        self.nodes: list[NodeMemory] = []
        self.cores: list[_SinkCore] = []
        self.policies: list[_ScriptedPolicy] = []
        for i in range(n_nodes):
            ctrl = CoherenceController(
                i, config, self.bus, self.memory, self.stats.scoped(f"ctrl{i}")
            )
            if mutate is not None:
                # apply_mutation returns a mutated fresh copy — swap it
                # in; the controller's original logic is never touched.
                ctrl.protocol = apply_mutation(ctrl.protocol, mutate)
            policy = _ScriptedPolicy()
            ctrl.policy = policy
            node = NodeMemory(
                i, config, self.scheduler, ctrl, self.stats.scoped(f"node{i}")
            )
            core = _SinkCore()
            node.core = core
            self.controllers.append(ctrl)
            self.nodes.append(node)
            self.cores.append(core)
            self.policies.append(policy)
        self.checker = CoherenceChecker(self)

    # ------------------------------------------------------------------

    def _drain(self) -> None:
        self.scheduler.run()

    def apply(self, event: Event) -> int | None:
        """Apply one abstract event and drain; returns a load's value."""
        kind, node = event[0], event[1]
        nm = self.nodes[node]
        if kind == "load":
            addr = line_base(event[2]) + event[3] * WORD_SIZE
            token = object()
            status, _latency, value = nm.load(addr, token, allow_spec=False)
            self._drain()
            if status == "pending":
                value = self.cores[node].completions.pop(token)
            return value
        if kind == "store":
            addr = line_base(event[2]) + event[3] * WORD_SIZE
            decision = event[5] if len(event) > 5 else None
            self.policies[node].arm(
                None if decision is None else (decision == "validate")
            )
            done = {"fired": False}
            latency = nm.store(
                addr, event[4], pc=0,
                on_done=lambda: done.__setitem__("fired", True),
            )
            self._drain()
            if latency is None and not done["fired"]:
                raise SimulationError(f"store {event!r} never completed")
            return None
        if kind == "evict":
            self.controllers[node].evict_line(line_base(event[2]))
            self._drain()
            return None
        raise ValueError(f"unknown event {event!r}")

    def replay(self, trace) -> ReplayOutcome:
        """Replay a whole trace; never raises for protocol failures."""
        outcome = ReplayOutcome(ok=True)
        for i, event in enumerate(trace):
            try:
                value = self.apply(event)
            except ProtocolError as exc:
                outcome.ok = False
                outcome.error = str(exc)
                outcome.failed_at = i
                break
            if value is not None:
                outcome.loads.append(value)
        else:
            # End-of-run sweep over every resident line.
            try:
                self.checker.check_all()
            except ProtocolError as exc:
                outcome.ok = False
                outcome.error = f"end-of-run sweep: {exc}"
        outcome.checks = self.checker.checks
        for i, policy in enumerate(self.policies):
            if policy.next_decision is not None:
                policy.unconsumed += 1
                policy.next_decision = None
            if policy.unscripted:
                outcome.divergences.append(
                    f"P{i}: {policy.unscripted} unscripted validate decisions"
                )
            if policy.unconsumed:
                outcome.divergences.append(
                    f"P{i}: {policy.unconsumed} scripted decisions never consumed"
                )
        if outcome.divergences and outcome.ok:
            outcome.ok = False
            outcome.error = "abstract/concrete divergence: " + "; ".join(
                outcome.divergences
            )
        return outcome
