"""State predicates checked on every reachable abstract state.

These are the model-level counterparts of the runtime
:class:`~repro.coherence.validation.CoherenceChecker` audits, plus the
shadow-value checks only the model can make exact:

* **swmr** — at most one M/E copy, and an M/E copy excludes every
  other valid copy (single-writer / multiple-reader);
* **single-dirty** — at most one M/O copy;
* **data-value** — every readable copy holds the architectural
  contents (what the last stores wrote), and when nothing is dirty,
  memory does too;
* **t-discipline** — every T copy saved exactly the last globally
  visible value (on the directory, only *tracked* T-sharers: untracked
  copies may rot but can never be re-installed);
* **deadlock** — every state has at least one enabled event (checked
  by the explorer; an event that raises ``ProtocolError`` is reported
  as a ``protocol-error`` violation, i.e. a stuck/undefined row).

The validate-specific invariant — a validate only ever re-installs the
last globally visible value — is event-scoped and enforced inside
:class:`~repro.verify.model.AbstractMachine` at broadcast and at each
re-install.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coherence.states import LineState


@dataclass(frozen=True)
class StateViolation:
    """One broken state predicate."""

    kind: str
    detail: str


def _fmt_copies(copies) -> str:
    return ", ".join(f"P{i}:{nl[0].value}{list(nl[1])}" for i, nl in copies)


def check_state(machine, state) -> StateViolation | None:
    """Return the first broken invariant of ``state``, or None."""
    nodes, mem, arch, gvis, dirs = state
    for line in range(machine.n_lines):
        copies = [
            (i, nodes[i][line])
            for i in range(machine.n_nodes)
            if nodes[i][line] is not None
        ]
        writers = [(i, nl) for i, nl in copies
                   if nl[0] in (LineState.M, LineState.E)]
        valid = [(i, nl) for i, nl in copies if nl[0].valid]
        dirty = [(i, nl) for i, nl in copies if nl[0].dirty]
        t_copies = [(i, nl) for i, nl in copies if nl[0] is LineState.T]

        if len(writers) > 1:
            return StateViolation(
                "swmr", f"line {line}: multiple M/E owners: {_fmt_copies(writers)}"
            )
        if writers and len(valid) > 1:
            return StateViolation(
                "swmr",
                f"line {line}: M/E owner P{writers[0][0]} coexists with "
                f"valid copies: {_fmt_copies(valid)}",
            )
        if len(dirty) > 1:
            return StateViolation(
                "single-dirty",
                f"line {line}: multiple dirty copies: {_fmt_copies(dirty)}",
            )
        for i, nl in valid:
            if nl[1] != arch[line]:
                return StateViolation(
                    "data-value",
                    f"line {line}: P{i} ({nl[0].value}) holds {list(nl[1])} "
                    f"but the architectural contents are {list(arch[line])}",
                )
        if not dirty and mem[line] != arch[line]:
            return StateViolation(
                "data-value",
                f"line {line}: no dirty copy but memory holds "
                f"{list(mem[line])}, architectural contents {list(arch[line])}",
            )
        tracked = None if dirs is None else dirs[line][2]
        for i, nl in t_copies:
            if tracked is not None and i not in tracked:
                continue  # untracked directory T copy: may rot, never re-installed
            if nl[1] != gvis[line]:
                return StateViolation(
                    "t-discipline",
                    f"line {line}: P{i} saved {list(nl[1])} in T but the last "
                    f"globally visible value is {list(gvis[line])}",
                )
    return None
