"""Abstract system model for exhaustive protocol exploration.

The model is deliberately tiny — N nodes, L lines, two data values per
word — but it is *not* a re-implementation of the protocols: every
state decision is delegated to the node's real
:class:`~repro.coherence.protocol.ProtocolLogic` instance (snoop
queries, snoop applies, fill states, validate states), and directory
bookkeeping reuses the real
:class:`~repro.coherence.directory.DirectoryNetwork` target/update
logic.  What the model abstracts away is *timing*: the bus is already
atomic at its grant point, so collapsing each transaction to one
atomic step preserves the protocol-visible interleavings while making
the state space finite and small.

Global states are plain nested tuples (hashable, cheap to compare):

* per node, per line: ``None`` (no tag) or
  ``(state, data, visible, diverged)`` mirroring the
  :class:`~repro.memory.cache.CacheLine` fields the protocols read;
* per line: memory contents, the shadow *architectural* contents
  (what the last stores wrote — the value loads must observe), and the
  shadow *last globally visible* value (what a validate may lawfully
  re-install);
* with the directory interconnect, the per-line home entry
  ``(owner, sharers, t_sharers)``.

Core events are ``load``, ``store`` (a store of the current value *is*
a silent store; a store reverting a diverged line *is* a temporally
silent store — both emerge from the value alphabet), and ``evict``.
When a store detects temporal silence the validate-policy decision is
modeled as nondeterminism (``validate`` and ``quiet`` successors), so
the exploration soundly covers every policy in
:mod:`repro.coherence.policies`.
"""

from __future__ import annotations

from typing import Iterator

from repro.common.config import (
    BusConfig,
    InterconnectKind,
    ProtocolConfig,
    ProtocolKind,
    ValidatePolicy,
)
from repro.common.errors import ProtocolError
from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.coherence.directory import DirectoryEntry, DirectoryNetwork
from repro.coherence.messages import BusTransaction, SnoopResult, TxnKind
from repro.coherence.protocol import ProtocolLogic, make_protocol
from repro.coherence.states import LineState
from repro.memory.cache import CacheLine
from repro.memory.mainmem import MainMemory

# Line-aligned bases the model's lines map to (also used by the
# concrete replay bridge, keeping abstract and concrete traces in the
# same address space).
LINE_SIZE = 64
BASE_ADDR = 0x10000

# Event tuples: ("load", node, line, word)
#               ("store", node, line, word, value[, "validate"|"quiet"])
#               ("evict", node, line)
Event = tuple


class ModelViolation(Exception):
    """An invariant broken *during* an event (not a state predicate)."""

    def __init__(self, kind: str, detail: str):
        super().__init__(f"{kind}: {detail}")
        self.kind = kind
        self.detail = detail


class ProtocolSpec:
    """A named protocol variant the checker can be pointed at."""

    NAMES = ("mesi", "moesi", "mesti", "moesti", "emesti")

    def __init__(self, name: str):
        name = name.lower()
        if name not in self.NAMES:
            raise ValueError(f"unknown protocol {name!r} (choose from {self.NAMES})")
        self.name = name
        self.enhanced = name == "emesti"
        self.kind = {
            "mesi": ProtocolKind.MESI,
            "moesi": ProtocolKind.MOESI,
            "mesti": ProtocolKind.MESTI,
            "moesti": ProtocolKind.MOESTI,
            "emesti": ProtocolKind.MOESTI,
        }[name]

    def protocol_config(self) -> ProtocolConfig:
        """A ProtocolConfig selecting this variant (always-validate)."""
        policy = (
            ValidatePolicy.PREDICTOR if self.enhanced else ValidatePolicy.ALWAYS
        )
        return ProtocolConfig(
            kind=self.kind, enhanced=self.enhanced, validate_policy=policy
        )

    def make_logic(self) -> ProtocolLogic:
        """Instantiate the real protocol logic for this variant."""
        return make_protocol(self.protocol_config())


def line_base(line: int) -> int:
    """Concrete line-aligned address for abstract line index ``line``."""
    return BASE_ADDR + line * LINE_SIZE


class AbstractMachine:
    """N-node, L-line, two-value model over a real ProtocolLogic."""

    def __init__(
        self,
        protocol: ProtocolLogic,
        n_nodes: int = 3,
        n_lines: int = 1,
        n_words: int = 1,
        values: tuple[int, ...] = (0, 1),
        interconnect: InterconnectKind = InterconnectKind.BUS,
    ):
        if not 2 <= n_nodes <= 16:
            raise ValueError("model supports 2-16 nodes")
        self.protocol = protocol
        self.n_nodes = n_nodes
        self.n_lines = n_lines
        self.n_words = n_words
        self.values = values
        self.interconnect = interconnect
        self._dirnet: DirectoryNetwork | None = None
        if interconnect is InterconnectKind.DIRECTORY:
            # One real DirectoryNetwork whose pure target/update methods
            # the model calls with ephemeral entries — the bookkeeping
            # under test is the implementation's, not a re-derivation.
            self._dirnet = DirectoryNetwork(
                Scheduler(), BusConfig(), MainMemory(LINE_SIZE),
                StatsRegistry().scoped("dir"),
            )

    # ------------------------------------------------------------------
    # State construction and views
    # ------------------------------------------------------------------

    def initial(self):
        """All caches empty, memory (= arch = visible shadow) all zero."""
        zero = (0,) * self.n_words
        nodes = tuple(
            tuple(None for _ in range(self.n_lines)) for _ in range(self.n_nodes)
        )
        mem = tuple(zero for _ in range(self.n_lines))
        dirs = None
        if self._dirnet is not None:
            dirs = tuple((None, frozenset(), frozenset()) for _ in range(self.n_lines))
        return (nodes, mem, mem, mem, dirs)

    @staticmethod
    def node_line(state, node: int, line: int):
        """The (state, data, visible, diverged) tuple, or None if absent."""
        return state[0][node][line]

    def _mk_line(self, nl, line: int) -> CacheLine:
        """Materialize a real CacheLine from an abstract node-line tuple."""
        obj = CacheLine(self.n_words)
        obj.base = line_base(line)
        obj.state = nl[0]
        obj.data = list(nl[1])
        obj.visible = list(nl[2]) if nl[2] is not None else None
        obj.diverged = nl[3]
        return obj

    @staticmethod
    def _pack(obj: CacheLine):
        return (
            obj.state,
            tuple(obj.data),
            tuple(obj.visible) if obj.visible is not None else None,
            obj.diverged,
        )

    @staticmethod
    def _with_node_line(nodes, i: int, line: int, nl):
        row = list(nodes[i])
        row[line] = nl
        out = list(nodes)
        out[i] = tuple(row)
        return tuple(out)

    @staticmethod
    def _with_line(per_line, line: int, value):
        out = list(per_line)
        out[line] = value
        return tuple(out)

    # ------------------------------------------------------------------
    # The atomic transaction (mini-bus / mini-directory)
    # ------------------------------------------------------------------

    def _transaction(self, state, req: int, line: int, kind: TxnKind,
                     wb_data: tuple[int, ...] | None = None):
        """Run one atomic-grant transaction; the requester's own line
        install (fill/upgrade) is left to the caller.

        Returns ``(nodes, mem, gvis, dirs, data, result)``.
        """
        nodes, mem, arch, gvis, dirs = state
        lines: dict[int, CacheLine] = {}
        for i in range(self.n_nodes):
            nl = nodes[i][line]
            if nl is not None:
                lines[i] = self._mk_line(nl, line)

        txn = BusTransaction(
            kind=kind, base=line_base(line), requester=req,
            data=list(wb_data) if wb_data is not None else None,
        )
        entry: DirectoryEntry | None = None
        if dirs is not None:
            d = dirs[line]
            entry = DirectoryEntry(
                owner=d[0], sharers=set(d[1]), t_sharers=set(d[2])
            )
            # Contacting a node that silently dropped the line is a
            # harmless no-op, exactly as on the real interconnect.
            targets = [t for t in self._dirnet._targets(entry, txn) if t in lines]
        else:
            targets = [t for t in lines if t != req]

        result = txn.result
        for t in targets:
            query = self.protocol.snoop_query(lines[t], kind)
            if query.assert_shared:
                result.shared = True
            if query.can_supply:
                result.dirty_owner = t
        if dirs is not None and kind is TxnKind.READ and not result.shared:
            # The home supplies the sharing indication for uncontacted
            # clean sharers (DirectoryNetwork._execute does the same).
            others = set(entry.sharers)
            if entry.owner is not None:
                others.add(entry.owner)
            others.discard(req)
            if others:
                result.shared = True

        mem_line = mem[line]
        gvis_line = gvis[line]
        data: tuple[int, ...] | None = None
        if kind.carries_data_response:
            if result.dirty_owner is not None:
                data = tuple(lines[result.dirty_owner].data)
                result.owner_data = list(data)
            else:
                data = mem_line
        elif kind is TxnKind.WRITEBACK:
            assert wb_data is not None
            mem_line = tuple(wb_data)

        pre_states = {t: lines[t].state for t in targets}
        for t in targets:
            self.protocol.snoop_apply(lines[t], kind, result)

        # Post-snoop effects, mirroring CoherenceController.
        for t in targets:
            pre, obj = pre_states[t], lines[t]
            if (kind is TxnKind.READ and result.dirty_owner == t
                    and pre is LineState.M and not self.protocol.has_owned):
                mem_line = tuple(obj.data)
            if kind is TxnKind.VALIDATE and pre is LineState.T:
                if tuple(obj.data) != gvis_line:
                    raise ModelViolation(
                        "validate-reinstall",
                        f"validate re-installed {tuple(obj.data)} at P{t} but "
                        f"the last globally visible value is {gvis_line}",
                    )
                obj.visible = list(obj.data)

        # Global-visibility shadow: a dirty flush or a write-back
        # publishes a value; nothing else does.
        if result.dirty_owner is not None and kind in (TxnKind.READ, TxnKind.READX):
            gvis_line = data
        elif kind is TxnKind.WRITEBACK:
            gvis_line = tuple(wb_data)

        for t in targets:
            nodes = self._with_node_line(nodes, t, line, self._pack(lines[t]))
        mem = self._with_line(mem, line, mem_line)
        gvis = self._with_line(gvis, line, gvis_line)
        if dirs is not None:
            self._dirnet._update_directory(entry, txn, result)
            dirs = self._with_line(
                dirs,
                line,
                (entry.owner, frozenset(entry.sharers), frozenset(entry.t_sharers)),
            )
        return nodes, mem, gvis, dirs, data, result

    # ------------------------------------------------------------------
    # Core events
    # ------------------------------------------------------------------

    def apply_load(self, state, node: int, line: int, word: int):
        """Apply one load; returns ``(new_state, observed_value)``."""
        nodes, mem, arch, gvis, dirs = state
        nl = nodes[node][line]
        if nl is not None and nl[0].readable:
            value = nl[1][word]
            if nl[0] is LineState.VS:
                obj = self._mk_line(nl, line)
                demote = getattr(self.protocol, "on_local_access", None)
                if demote is not None:
                    demote(obj)
                self.protocol.note_transition(
                    "local", "VS", "PrRd.hit", obj.state.value
                )
                nodes = self._with_node_line(nodes, node, line, self._pack(obj))
            return (nodes, mem, arch, gvis, dirs), value
        pre = "-" if nl is None else nl[0].value
        nodes, mem, gvis, dirs, data, result = self._transaction(
            state, node, line, TxnKind.READ
        )
        fill = self.protocol.fill_state(TxnKind.READ, result)
        self.protocol.note_transition(
            "local", pre, f"fill.Read.{fill.value}", fill.value
        )
        nodes = self._with_node_line(nodes, node, line, (fill, data, data, False))
        return (nodes, mem, arch, gvis, dirs), data[word]

    def apply_store(self, state, node: int, line: int, word: int, value: int,
                    decision: str | None = None):
        """Apply one store; returns the new state.

        ``decision`` resolves the validate-policy nondeterminism when
        the store detects temporal silence: ``"validate"`` broadcasts,
        ``"quiet"`` suppresses.  Passing ``None`` asserts the store is
        not expected to detect a reversion (raises otherwise) — use
        :meth:`store_outcomes` to enumerate successors.
        """
        nodes, mem, arch, gvis, dirs = state
        nl = nodes[node][line]
        if nl is not None and nl[0].writable:
            obj = self._mk_line(nl, line)
        elif nl is not None and nl[0].valid:
            # S / O / VS: upgrade for ownership (write at the grant).
            pre = nl[0].value
            nodes, mem, gvis, dirs, _, result = self._transaction(
                state, node, line, TxnKind.UPGRADE
            )
            self.protocol.note_transition("local", pre, "PrWr.Upgrade", "M")
            obj = self._mk_line(nodes[node][line], line)
            obj.state = LineState.M
            state = (nodes, mem, arch, gvis, dirs)
        else:
            # I / T / absent: ReadX, write at the grant.
            pre = "-" if nl is None else nl[0].value
            nodes, mem, gvis, dirs, data, result = self._transaction(
                state, node, line, TxnKind.READX
            )
            fill = self.protocol.fill_state(TxnKind.READX, result)
            self.protocol.note_transition(
                "local", pre, "fill.ReadX", fill.value
            )
            obj = CacheLine(self.n_words)
            obj.base = line_base(line)
            obj.state = fill
            obj.data = list(data)
            obj.visible = list(data)
            obj.diverged = False
            state = (nodes, mem, arch, gvis, dirs)
        return self._perform_write(state, node, line, word, value, obj, decision)

    def _perform_write(self, state, node, line, word, value, obj, decision):
        nodes, mem, arch, gvis, dirs = state
        if obj.state is LineState.E:
            self.protocol.note_transition("local", "E", "PrWr.hit", "M")
            obj.state = LineState.M
        if obj.state is not LineState.M:
            raise ModelViolation(
                "write-without-ownership",
                f"P{node} writing line {line} in state {obj.state.value}",
            )
        obj.data[word] = value
        arch = self._with_line(
            arch, line, tuple(
                value if w == word else arch[line][w] for w in range(self.n_words)
            ),
        )

        # Temporal-silence detection (CoherenceController.after_store).
        reverted = False
        if obj.data != obj.visible:
            obj.diverged = True
        elif obj.diverged:
            obj.diverged = False
            reverted = True
        if reverted != (decision is not None) and self.protocol.has_temporal:
            raise ModelViolation(
                "decision-mismatch",
                f"store expected decision={decision!r} but reverted={reverted}",
            )
        if reverted and self.protocol.has_temporal and decision == "validate":
            # Broadcast: owner retires per the protocol, then the
            # validate transaction re-installs remote T copies.
            if tuple(obj.data) != gvis[line]:
                raise ModelViolation(
                    "validate-not-visible",
                    f"P{node} validating {tuple(obj.data)} but the last "
                    f"globally visible value is {gvis[line]}",
                )
            post = self.protocol.post_validate_state()
            self.protocol.note_transition("local", "M", "PrWr.Validate", post.value)
            obj.state = post
            obj.visible = list(obj.data)
            obj.diverged = False
            if self.protocol.validate_writes_back:
                mem = self._with_line(mem, line, tuple(obj.data))
            nodes = self._with_node_line(nodes, node, line, self._pack(obj))
            state = (nodes, mem, arch, gvis, dirs)
            nodes, mem, gvis, dirs, _, _ = self._transaction(
                state, node, line, TxnKind.VALIDATE
            )
            return (nodes, mem, arch, gvis, dirs)
        nodes = self._with_node_line(nodes, node, line, self._pack(obj))
        return (nodes, mem, arch, gvis, dirs)

    def store_detects_reversion(self, state, node, line, word, value) -> bool:
        """Would this store fire temporal-silence detection?

        True only for a *reversion*: the written line becomes equal to
        the owner's last-globally-visible copy after having diverged.
        Governs whether the store event forks into validate/quiet
        successors.
        """
        nl = state[0][node][line]
        if nl is None or not self.protocol.has_temporal:
            return False
        if nl[0].writable:
            data, visible, diverged = list(nl[1]), nl[2], nl[3]
        elif nl[0].valid:
            data, visible, diverged = list(nl[1]), nl[2], nl[3]
        else:
            return False  # fresh ReadX fill: visible == data, never diverged
        data[word] = value
        return visible is not None and tuple(data) == tuple(visible) and diverged

    def apply_evict(self, state, node: int, line: int):
        """Apply one eviction; returns the new state."""
        nodes, mem, arch, gvis, dirs = state
        nl = nodes[node][line]
        if nl is None:
            raise ModelViolation("evict-absent", f"P{node} evicting absent line")
        self.protocol.note_transition("local", nl[0].value, "evict", "-")
        nodes = self._with_node_line(nodes, node, line, None)
        state = (nodes, mem, arch, gvis, dirs)
        if nl[0].dirty:
            # Memory updates at the eviction point; the WRITEBACK
            # transaction invalidates remote T copies (and, on the
            # directory, is routed to tracked T-sharers only).
            mem = self._with_line(mem, line, tuple(nl[1]))
            state = (nodes, mem, arch, gvis, dirs)
            nodes, mem, gvis, dirs, _, _ = self._transaction(
                state, node, line, TxnKind.WRITEBACK, wb_data=tuple(nl[1])
            )
            return (nodes, mem, arch, gvis, dirs)
        # Clean/stale copies drop silently (the directory is not told).
        return state

    # ------------------------------------------------------------------
    # Event enumeration
    # ------------------------------------------------------------------

    def apply(self, state, event: Event):
        """Apply one event tuple; returns ``(new_state, load_value|None)``."""
        kind = event[0]
        try:
            if kind == "load":
                return self.apply_load(state, event[1], event[2], event[3])
            if kind == "store":
                decision = event[5] if len(event) > 5 else None
                return (
                    self.apply_store(
                        state, event[1], event[2], event[3], event[4], decision
                    ),
                    None,
                )
            if kind == "evict":
                return self.apply_evict(state, event[1], event[2]), None
        except ProtocolError as exc:
            # A table hole / illegal transition inside the protocol
            # itself: surface it as a model violation (stuck state).
            raise ModelViolation("protocol-error", str(exc)) from exc
        raise ValueError(f"unknown event {event!r}")

    def events(self, state) -> Iterator[Event]:
        """Enumerate the enabled core events of ``state``.

        Loads that would be pure no-op hits (no state change, no
        transaction) are skipped: they cannot move the exploration.
        """
        nodes = state[0]
        for i in range(self.n_nodes):
            for line in range(self.n_lines):
                nl = nodes[i][line]
                load_changes = (
                    nl is None or not nl[0].readable or nl[0] is LineState.VS
                )
                if load_changes:
                    for w in range(self.n_words):
                        yield ("load", i, line, w)
                        if nl is not None and nl[0] is LineState.VS:
                            break  # the demotion is word-independent
                for w in range(self.n_words):
                    for v in self.values:
                        if self.store_detects_reversion(state, i, line, w, v):
                            yield ("store", i, line, w, v, "validate")
                            yield ("store", i, line, w, v, "quiet")
                        else:
                            yield ("store", i, line, w, v)
                if nl is not None:
                    yield ("evict", i, line)

    def successors(self, state) -> Iterator[tuple[Event, object]]:
        """Yield ``(event, next_state)`` for every enabled event."""
        for event in self.events(state):
            next_state, _ = self.apply(state, event)
            if next_state != state:
                yield event, next_state
