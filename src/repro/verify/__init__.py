"""Protocol verification subsystem.

An explicit-state (Murphi-style) model checker over the *actual*
protocol implementation: the abstract machine in :mod:`.model` drives
the real :class:`~repro.coherence.protocol.ProtocolLogic` transition
tables (and the real directory bookkeeping) over a tiny system —
2–4 nodes, one or two lines, two data values — while
:mod:`.checker` exhaustively enumerates every reachable global state
with symmetry reduction and checks the invariants in
:mod:`.invariants`.  :mod:`.litmus` runs named multi-node programs
against their allowed-outcome sets, :mod:`.replay` re-executes any
abstract trace on the concrete memory system under
:class:`~repro.coherence.validation.CoherenceChecker`, and
:mod:`.mutations` provides seeded protocol bugs that demonstrate the
whole loop: abstract counterexample -> concrete failure.

Surface: ``repro-sim check`` (see :mod:`repro.cli`).
"""

from repro.verify.checker import CheckResult, ModelChecker, Violation
from repro.verify.litmus import LITMUS_TESTS, LitmusRunner, LitmusTest
from repro.verify.model import AbstractMachine, ModelViolation, ProtocolSpec
from repro.verify.mutations import MUTATIONS, apply_mutation
from repro.verify.replay import ConcreteReplayer, ReplayOutcome
from repro.verify.table import TransitionCoverage, coverage_report, expected_rows

__all__ = [
    "AbstractMachine",
    "CheckResult",
    "ConcreteReplayer",
    "LITMUS_TESTS",
    "LitmusRunner",
    "LitmusTest",
    "MUTATIONS",
    "ModelChecker",
    "ModelViolation",
    "ProtocolSpec",
    "ReplayOutcome",
    "TransitionCoverage",
    "Violation",
    "apply_mutation",
    "coverage_report",
    "expected_rows",
]
