"""Command-line interface.

Usage (installed as ``repro-sim``, or ``python -m repro.cli``):

    repro-sim run tpc-b --technique emesti+lvp --scale 0.5 --seed 1
    repro-sim experiment figure7 --scale 0.6
    repro-sim list
"""

from __future__ import annotations

import argparse
import sys

from repro.common.config import scaled_config
from repro.experiments.runner import summarize
from repro.system.system import System
from repro.system.techniques import ALL_TECHNIQUES, configure_technique
from repro.workloads.registry import BENCHMARKS, get_benchmark

EXPERIMENTS = (
    "table2", "figure6", "figure7", "figure8", "sle_idioms", "ablations",
    "trace_vs_exec", "scaling", "directory_study",
)


def cmd_list(_args) -> int:
    """Handle ``repro-sim list``."""
    print("benchmarks: ", ", ".join(BENCHMARKS))
    print("techniques: ", ", ".join(ALL_TECHNIQUES))
    print("experiments:", ", ".join(EXPERIMENTS))
    return 0


def cmd_run(args) -> int:
    """Handle ``repro-sim run``."""
    config = configure_technique(scaled_config(n_procs=args.procs), args.technique)
    workload = get_benchmark(args.benchmark, scale=args.scale)
    result = System(config, workload, seed=args.seed).run()
    summary = summarize(result)
    width = max(len(k) for k in summary)
    for key, value in summary.items():
        print(f"{key.ljust(width)} : {value}")
    return 0


def cmd_experiment(args) -> int:
    """Handle ``repro-sim experiment``."""
    import importlib

    module = importlib.import_module(f"repro.experiments.{args.name}")
    kwargs = {"scale": args.scale}
    print(module.run(**kwargs))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Temporal-silence reproduction simulator (ISPASS 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks, techniques, experiments")

    run_p = sub.add_parser("run", help="run one benchmark/technique cell")
    run_p.add_argument("benchmark", choices=sorted(BENCHMARKS))
    run_p.add_argument("--technique", default="base")
    run_p.add_argument("--scale", type=float, default=0.5)
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--procs", type=int, default=4)

    exp_p = sub.add_parser("experiment", help="regenerate a table/figure")
    exp_p.add_argument("name", choices=EXPERIMENTS)
    exp_p.add_argument("--scale", type=float, default=0.5)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {"list": cmd_list, "run": cmd_run, "experiment": cmd_experiment}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
