"""Command-line interface.

Usage (installed as ``repro-sim``, or ``python -m repro.cli``):

    repro-sim run tpc-b --technique emesti+lvp --scale 0.5 --seed 1
    repro-sim run locks --technique emesti --trace /tmp/t.json --trace-format chrome
    repro-sim report /tmp/t.json
    repro-sim experiment figure7 --scale 0.6
    repro-sim list
"""

from __future__ import annotations

import argparse
import json
import logging
import sys

from repro.common.config import scaled_config
from repro.common.errors import ConfigError
from repro.experiments.runner import summarize
from repro.obs.profiler import SimProfiler
from repro.obs.report import read_trace, render_report, summarize_trace
from repro.obs.tracer import TraceFilter, Tracer
from repro.system.system import System
from repro.system.techniques import ALL_TECHNIQUES, configure_technique
from repro.workloads.registry import BENCHMARKS, EXTRA_BENCHMARKS, get_benchmark

EXPERIMENTS = (
    "table2", "figure6", "figure7", "figure8", "sle_idioms", "ablations",
    "trace_vs_exec", "scaling", "directory_study",
)


def cmd_list(_args) -> int:
    """Handle ``repro-sim list``."""
    print("benchmarks: ", ", ".join(list(BENCHMARKS) + sorted(EXTRA_BENCHMARKS)))
    print("techniques: ", ", ".join(ALL_TECHNIQUES))
    print("experiments:", ", ".join(EXPERIMENTS))
    return 0


def _make_tracer(args) -> Tracer | None:
    """Build the Tracer requested by ``run`` flags, or None."""
    if not args.trace:
        return None
    filt = TraceFilter.parse(args.trace_filter) if args.trace_filter else None
    # Fail on an unwritable path now, not after a long simulation.
    with open(args.trace, "w"):
        pass
    return Tracer(filter=filt, ring=args.trace_ring)


def cmd_run(args) -> int:
    """Handle ``repro-sim run``."""
    config = configure_technique(scaled_config(n_procs=args.procs), args.technique)
    workload = get_benchmark(args.benchmark, scale=args.scale)
    tracer = _make_tracer(args)
    system = System(config, workload, seed=args.seed, tracer=tracer)
    profiler = SimProfiler() if args.profile else None
    if profiler is not None:
        system.scheduler.enable_profiling(profiler)
    result = system.run(heartbeat=args.heartbeat)
    summary = summarize(result)
    width = max(len(k) for k in summary)
    for key, value in summary.items():
        print(f"{key.ljust(width)} : {value}")
    if tracer is not None:
        tracer.save(args.trace, format=args.trace_format)
        print(f"trace: {len(tracer.events)} events -> {args.trace} "
              f"({args.trace_format}, {tracer.dropped} filtered)")
    if profiler is not None:
        print(profiler.report())
    return 0


def cmd_report(args) -> int:
    """Handle ``repro-sim report``."""
    events = read_trace(args.trace)
    print(render_report(summarize_trace(events, top=args.top)))
    return 0


def cmd_experiment(args) -> int:
    """Handle ``repro-sim experiment``."""
    import importlib

    module = importlib.import_module(f"repro.experiments.{args.name}")
    kwargs = {"scale": args.scale}
    print(module.run(**kwargs))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Temporal-silence reproduction simulator (ISPASS 2005)",
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument(
        "-v", "--verbose", action="store_true",
        help="debug-level progress logging",
    )
    verbosity.add_argument(
        "-q", "--quiet", action="store_true",
        help="warnings and errors only",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks, techniques, experiments")

    run_p = sub.add_parser("run", help="run one benchmark/technique cell")
    run_p.add_argument(
        "benchmark", choices=sorted(BENCHMARKS) + sorted(EXTRA_BENCHMARKS)
    )
    run_p.add_argument("--technique", default="base")
    run_p.add_argument("--scale", type=float, default=0.5)
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--procs", type=int, default=4)
    run_p.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a structured event trace to PATH",
    )
    run_p.add_argument(
        "--trace-format", choices=("jsonl", "chrome"), default="jsonl",
        help="trace output format (chrome loads in Perfetto/about:tracing)",
    )
    run_p.add_argument(
        "--trace-filter", metavar="SPEC", default=None,
        help="only record matching events, e.g. 'kind=validate|bus.grant,node=0-3'",
    )
    run_p.add_argument(
        "--trace-ring", metavar="N", type=int, default=None,
        help="keep only the last N events (bounded-memory ring buffer)",
    )
    run_p.add_argument(
        "--heartbeat", metavar="CYCLES", type=int, default=0,
        help="log a progress heartbeat every CYCLES simulated cycles",
    )
    run_p.add_argument(
        "--profile", action="store_true",
        help="attribute wall time to simulator components",
    )

    report_p = sub.add_parser("report", help="summarize a saved trace")
    report_p.add_argument("trace", help="trace file (jsonl or chrome)")
    report_p.add_argument(
        "--top", type=int, default=10,
        help="rows per ranking (hot lines, nodes)",
    )

    exp_p = sub.add_parser("experiment", help="regenerate a table/figure")
    exp_p.add_argument("name", choices=EXPERIMENTS)
    exp_p.add_argument("--scale", type=float, default=0.5)

    return parser


def _configure_logging(args) -> None:
    """Map -q/-v to a root logging level (idempotent across calls)."""
    if args.quiet:
        level = logging.WARNING
    elif args.verbose:
        level = logging.DEBUG
    else:
        level = logging.INFO
    logging.basicConfig(level=level, format="%(levelname)s %(name)s: %(message)s")
    logging.getLogger().setLevel(level)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    _configure_logging(args)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "report": cmd_report,
        "experiment": cmd_experiment,
    }
    try:
        return handlers[args.command](args)
    except (ConfigError, OSError, json.JSONDecodeError) as exc:
        print(f"repro-sim: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
