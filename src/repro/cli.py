"""Command-line interface.

Usage (installed as ``repro-sim``, or ``python -m repro.cli``):

    repro-sim run tpc-b --technique emesti+lvp --scale 0.5 --seed 1
    repro-sim run locks --technique emesti --trace /tmp/t.json --trace-format chrome
    repro-sim report /tmp/t.json --chrome /tmp/t.chrome.json
    repro-sim service top --port 8642
    repro-sim service postmortem flight.json
    repro-sim experiment figure7 --scale 0.6 --workers 4
    repro-sim bench --quick
    repro-sim check --protocol emesti --interconnect both
    repro-sim lint --format json
    repro-sim list
"""

from __future__ import annotations

import argparse
import json
import logging
import sys

from repro.common.config import InterconnectKind, scaled_config
from repro.common.errors import ConfigError
from repro.experiments.runner import summarize
from repro.obs.profiler import SimProfiler
from repro.obs.report import load_trace, render_report, summarize_trace
from repro.obs.tracer import TraceFilter, Tracer, chrome_document
from repro.system.system import System
from repro.system.techniques import ALL_TECHNIQUES, configure_technique
from repro.workloads.registry import BENCHMARKS, EXTRA_BENCHMARKS, get_benchmark

EXPERIMENTS = (
    "table2", "figure6", "figure7", "figure8", "sle_idioms", "ablations",
    "trace_vs_exec", "scaling", "directory_study",
)


def cmd_list(_args) -> int:
    """Handle ``repro-sim list``."""
    print("benchmarks: ", ", ".join(list(BENCHMARKS) + sorted(EXTRA_BENCHMARKS)))
    print("techniques: ", ", ".join(ALL_TECHNIQUES))
    print("experiments:", ", ".join(EXPERIMENTS))
    return 0


def _make_tracer(args) -> Tracer | None:
    """Build the Tracer requested by ``run`` flags, or None."""
    if not args.trace:
        return None
    filt = TraceFilter.parse(args.trace_filter) if args.trace_filter else None
    # Fail on an unwritable path now, not after a long simulation.
    with open(args.trace, "w"):
        pass
    # Attaching the sink up front (rather than saving at the end) is
    # what makes traces crash-safe: the tracer flushes what it has on
    # exception and at interpreter exit.
    return Tracer(
        filter=filt, ring=args.trace_ring,
        path=args.trace, format=args.trace_format,
    )


def cmd_run(args) -> int:
    """Handle ``repro-sim run``."""
    config = configure_technique(scaled_config(n_procs=args.procs), args.technique)
    workload = get_benchmark(args.benchmark, scale=args.scale)
    tracer = _make_tracer(args)
    metrics = None
    if args.metrics:
        from repro.obs.metrics import MetricsRegistry

        # Fail on an unwritable path now, not after a long simulation.
        with open(args.metrics, "w"):
            pass
        metrics = MetricsRegistry()
    system = System(
        config, workload, seed=args.seed, tracer=tracer,
        check_invariants=args.check_invariants, metrics=metrics,
    )
    profiler = SimProfiler() if args.profile else None
    if profiler is not None:
        system.scheduler.enable_profiling(profiler)
    if tracer is not None:
        # The context manager flushes a partial trace if the run dies.
        with tracer:
            result = system.run(heartbeat=args.heartbeat)
    else:
        result = system.run(heartbeat=args.heartbeat)
    summary = summarize(result)
    width = max(len(k) for k in summary)
    for key, value in summary.items():
        print(f"{key.ljust(width)} : {value}")
    if tracer is not None:
        print(f"trace: {len(tracer.events)} events -> {args.trace} "
              f"({args.trace_format}, {tracer.dropped} filtered)")
    if metrics is not None:
        from pathlib import Path

        if args.metrics_format == "prom":
            text = metrics.to_prometheus()
        else:
            text = json.dumps(metrics.to_json(), indent=1, sort_keys=True) + "\n"
        Path(args.metrics).write_text(text)
        n_series = sum(1 for f in metrics.families() for _ in f.series())
        print(f"metrics: {n_series} series -> {args.metrics} "
              f"({args.metrics_format})")
    if profiler is not None:
        print(profiler.report())
    return 0


def cmd_report(args) -> int:
    """Handle ``repro-sim report``."""
    load = load_trace(args.trace)
    if load.skipped:
        print(f"repro-sim: warning: skipped {load.skipped} malformed "
              f"event(s) in {args.trace}", file=sys.stderr)
    if args.chrome:
        from pathlib import Path

        doc = chrome_document(load.events)
        Path(args.chrome).write_text(json.dumps(doc) + "\n")
        print(f"chrome trace: {len(doc['traceEvents'])} records -> "
              f"{args.chrome}")
    print(render_report(summarize_trace(load.events, top=args.top)))
    return 0


def cmd_explain(args) -> int:
    """Handle ``repro-sim explain`` (miss provenance analysis).

    Live mode runs the cell with tracing + metrics and *gates*: exit 1
    when the trace/metrics reconciliation mismatches or fewer than 95%
    of communication misses get a provenance class.  Offline mode
    (``--trace``) analyzes a saved trace; with no metrics registry to
    check against, it reports without gating.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.provenance import (
        analyze_events,
        line_chain,
        reconcile,
        reconciliation_ok,
        render_provenance,
    )

    if args.trace:
        load = load_trace(args.trace)
        if load.skipped:
            print(f"repro-sim: warning: skipped {load.skipped} malformed "
                  f"event(s) in {args.trace}", file=sys.stderr)
        events = load.events
        metrics = None
    else:
        if args.benchmark is None:
            print("repro-sim: error: explain needs a benchmark to run "
                  "(or --trace PATH to analyze offline)", file=sys.stderr)
            return 2
        config = configure_technique(
            scaled_config(n_procs=args.procs), args.technique
        )
        workload = get_benchmark(args.benchmark, scale=args.scale)
        tracer = Tracer(ring=args.trace_ring)
        if args.save_trace:
            with open(args.save_trace, "w"):
                pass
            tracer.attach_sink(args.save_trace, "jsonl")
        metrics = MetricsRegistry()
        system = System(
            config, workload, seed=args.seed, tracer=tracer, metrics=metrics
        )
        with tracer:
            system.run()
        events = tracer.events
    report = analyze_events(events)
    rows = reconcile(report, metrics) if metrics is not None else None
    gated = metrics is not None
    ok = (not gated) or (
        reconciliation_ok(rows) and report.attribution_rate >= 0.95
    )
    if args.line is not None:
        base = int(args.line, 0)
        chain = line_chain(events, base, limit=args.top * 10)
        if args.format == "json":
            print(json.dumps({"line": hex(base), "chain": chain}, indent=1))
        else:
            print(f"== line {base:#x}: {len(chain)} event(s) ==")
            for entry in chain:
                print(f"  {json.dumps(entry, sort_keys=True)}")
        return 0
    if args.format == "json":
        doc = report.to_json()
        doc["reconciliation"] = rows
        doc["ok"] = ok
        print(json.dumps(doc, indent=1, sort_keys=True))
    else:
        print(render_provenance(report, rows, top=args.top))
        if gated:
            print(f"\nresult: {'ok' if ok else 'FAIL'} "
                  f"(attribution {report.attribution_rate:.1%}, "
                  f"reconciliation "
                  f"{'exact' if reconciliation_ok(rows) else 'MISMATCH'})")
    return 0 if ok else 1


def cmd_check(args) -> int:
    """Handle ``repro-sim check`` (protocol verification)."""
    from repro.fuzz.report import mutation_record, render_mutation
    from repro.verify.checker import ModelChecker
    from repro.verify.litmus import LitmusRunner
    from repro.verify.model import AbstractMachine, ProtocolSpec
    from repro.verify.replay import ConcreteReplayer
    from repro.verify.report import render_check, render_litmus, render_replay

    protocols = (
        list(ProtocolSpec.NAMES) if args.protocol == "all" else [args.protocol]
    )
    interconnects = {
        "bus": (InterconnectKind.BUS,),
        "directory": (InterconnectKind.DIRECTORY,),
        "both": (InterconnectKind.BUS, InterconnectKind.DIRECTORY),
    }[args.interconnect]
    text = args.format == "text"
    runs = []
    failed = False
    for name in protocols:
        spec = ProtocolSpec(name)
        for interconnect in interconnects:
            logic = spec.make_logic()
            if args.mutate:
                from repro.verify.mutations import apply_mutation

                try:
                    logic = apply_mutation(logic, args.mutate)
                except ValueError as exc:
                    print(f"repro-sim: error: {exc}", file=sys.stderr)
                    return 2
            machine = AbstractMachine(
                logic, n_nodes=args.nodes, interconnect=interconnect
            )
            try:
                checker = ModelChecker(
                    machine, max_depth=args.depth, max_states=args.max_states
                )
            except ValueError as exc:  # symmetry cap at large node counts
                print(f"repro-sim: error: {exc}", file=sys.stderr)
                return 2
            result = checker.run()
            run = result.to_json()
            if args.mutate:
                run["mutation"] = mutation_record(args.mutate, result)
                if text:
                    print(render_mutation(run["mutation"]))
                if result.ok:
                    # An undetected seeded bug is itself a failure of
                    # the verification loop (a mutation escape).
                    failed = True
            if text:
                print(render_check(result))
            # Coverage gaps only count against a complete clean run;
            # a violation (or a bounded search) stops exploration early.
            gaps = result.ok and result.complete and (
                result.coverage.get("missing")
                or result.coverage.get("unexpected")
            )
            if result.violations or gaps:
                failed = True
            if result.violations and not args.no_replay:
                replayer = ConcreteReplayer(
                    spec, n_nodes=args.nodes, interconnect=interconnect,
                    mutate=args.mutate,
                )
                trace = result.violations[0].trace
                outcome = replayer.replay(trace)
                run["replay"] = outcome.to_json()
                if text:
                    print(render_replay(outcome, len(trace)))
            if not args.no_litmus and not args.mutate:
                litmus = LitmusRunner(spec, interconnect).run_all()
                run["litmus"] = [r.to_json() for r in litmus]
                if any(not r.ok for r in litmus):
                    failed = True
                if text:
                    print(render_litmus(litmus))
            runs.append(run)
    ok = not failed
    if text:
        print("result:", "ok" if ok else "FAIL")
    else:
        print(json.dumps({"ok": ok, "runs": runs}, indent=1))
    return 0 if ok else 1


def cmd_lint(args) -> int:
    """Handle ``repro-sim lint`` (static analysis + table audit)."""
    from repro.lint import ALL_RULES, Baseline, run_lint
    from repro.lint.report import render_json, render_text

    if args.list_rules:
        for rule_id, cls in sorted(ALL_RULES.items()):
            print(f"{rule_id}  {cls.title}")
        return 0
    rules = list(args.rule or [])
    for prefix in args.select or []:
        matched = sorted(r for r in ALL_RULES if r.startswith(prefix))
        if not matched:
            print(f"repro-sim: error: --select {prefix} matches no rule "
                  f"(known: {', '.join(sorted(ALL_RULES))})",
                  file=sys.stderr)
            return 2
        rules.extend(m for m in matched if m not in rules)
    baseline = None
    if args.baseline != "none" and not args.update_baseline:
        path = Baseline.default_path() if args.baseline is None else args.baseline
        try:
            baseline = Baseline.load(path)
        except ConfigError:
            if args.baseline is not None:
                raise  # an explicit path must exist
    try:
        result = run_lint(
            paths=args.paths or None,
            rules=rules or None,
            baseline=baseline,
            audit=not args.no_audit,
        )
    except ValueError as exc:  # unknown --rule id
        print(f"repro-sim: error: {exc}", file=sys.stderr)
        return 2
    if args.update_baseline:
        from repro.lint.baseline import PLACEHOLDER_JUSTIFICATION
        from repro.lint.baseline import Baseline as _B

        path = _B.default_path() if args.baseline is None else args.baseline
        justification = args.justification or PLACEHOLDER_JUSTIFICATION
        _B.from_findings(result.findings, justification=justification).save(path)
        if result.findings and args.justification is None:
            # The file is written (so it can be hand-edited), but an
            # unjustified baseline must not pass a CI gate: the whole
            # point of the baseline is that every suppression explains
            # itself, and `Baseline.load` refuses the placeholder.
            print(f"repro-sim: error: baselined {len(result.findings)} "
                  f"finding(s) without --justification; {path} contains "
                  f"{PLACEHOLDER_JUSTIFICATION!r} placeholders and will "
                  f"not load until each is replaced",
                  file=sys.stderr)
            return 1
        print(f"baseline: {len(result.findings)} entr(y/ies) -> {path}")
        return 0
    if args.format == "json":
        print(render_json(result, audit=not args.no_audit))
    else:
        print(render_text(result, verbose=args.verbose, stats=args.stats))
    return 0 if result.clean else 1


def cmd_experiment(args) -> int:
    """Handle ``repro-sim experiment``."""
    import importlib
    import inspect

    module = importlib.import_module(f"repro.experiments.{args.name}")
    kwargs = {"scale": args.scale}
    if "workers" in inspect.signature(module.run).parameters:
        kwargs["workers"] = args.workers
    elif args.workers:
        print(f"repro-sim: note: {args.name} does not support --workers; "
              f"running serially", file=sys.stderr)
    print(module.run(**kwargs))
    return 0


def cmd_bench(args) -> int:
    """Handle ``repro-sim bench`` (perf tracking + regression gate)."""
    from repro.experiments import bench
    from repro.obs.regress import (
        DEFAULT_REL_THRESHOLD,
        compare_reports,
        load_report,
        render_comparison,
    )

    baseline = None
    if args.compare:
        # Load before running: --output may point at the baseline file.
        baseline = load_report(args.compare)
    report = bench.run(
        quick=args.quick, workers=args.workers, output=args.output,
        results_dir=args.results_dir,
    )
    print(bench.render(report))
    if not report["determinism"]["ok"]:
        print("repro-sim: error: serial/worker determinism check FAILED",
              file=sys.stderr)
        return 1
    if baseline is not None:
        threshold = (
            DEFAULT_REL_THRESHOLD if args.threshold is None else args.threshold
        )
        comparison = compare_reports(baseline, report, rel_threshold=threshold)
        print(f"\ncompare vs {args.compare}:")
        print(render_comparison(comparison))
        if not comparison.ok:
            print("repro-sim: error: perf regression vs baseline "
                  "(regenerate with `repro-sim bench` if intentional)",
                  file=sys.stderr)
            return 1
    return 0


def cmd_serve(args) -> int:
    """Handle ``repro-sim serve`` (the simulation service)."""
    import asyncio
    import signal

    from repro.service.api import Service

    # A server launched as a background job from a non-interactive
    # shell (``nohup repro-sim serve ... &``, as the CI smoke does)
    # inherits SIGINT set to SIG_IGN — the shell ignores it for
    # async commands without job control, and Python honors an
    # inherited SIG_IGN.  Restore the default handler so
    # ``kill -INT`` always reaches the graceful-shutdown path that
    # flushes the event log and the flight recorder.
    signal.signal(signal.SIGINT, signal.default_int_handler)

    async def _serve() -> int:
        service = Service(
            args.root, workers=args.workers, lease_ttl=args.lease_ttl,
            flight_path=args.flight,
            telemetry_interval=args.telemetry_interval,
        )
        host, port = await service.start(host=args.host, port=args.port)
        print(f"repro-sim service on http://{host}:{port} "
              f"({args.workers} workers, state in {args.root})")
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await service.stop()
            if args.event_log:
                from pathlib import Path

                Path(args.event_log).write_text(service.events.to_ndjson())
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        return 0


def cmd_service(args) -> int:
    """Handle ``repro-sim service`` (live top / crash postmortem)."""
    if args.service_command == "top":
        from repro.service.client import ServiceClient, ServiceError
        from repro.service.top import run_top

        client = ServiceClient(args.host, args.port, timeout=args.timeout)
        try:
            shown = run_top(
                client, interval=args.interval, iterations=args.iterations,
                clear=not args.no_clear,
            )
        except (ServiceError, ConnectionError, OSError) as exc:
            print(f"repro-sim: error: {exc}", file=sys.stderr)
            return 1
        return 0 if shown else 1
    if args.service_command == "postmortem":
        from repro.obs.flight import load_flight, render_postmortem

        try:
            doc = load_flight(args.path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"repro-sim: error: {exc}", file=sys.stderr)
            return 1
        print(render_postmortem(doc, tail=args.tail))
        return 0
    raise AssertionError(f"unknown service command {args.service_command!r}")


def cmd_submit(args) -> int:
    """Handle ``repro-sim submit`` (client side of the service)."""
    from repro.service.client import ServiceClient, ServiceError

    if args.spec:
        with open(args.spec) as handle:
            spec = json.load(handle)
    else:
        if not args.benchmarks:
            print("repro-sim: error: give benchmarks (or --spec FILE)",
                  file=sys.stderr)
            return 2
        spec = {
            "benchmarks": args.benchmarks,
            "techniques": args.techniques,
            "seeds": args.seeds,
            "scale": args.scale,
            "priority": args.priority,
        }
    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    try:
        accepted = client.submit(spec)
        print(f"job {accepted['job']} accepted "
              f"({len(accepted['cells'])} cells)")
        if not args.wait:
            return 0
        for record in client.follow(accepted["job"]):
            if args.follow:
                print(json.dumps(record, sort_keys=True))
        job = client.job(accepted["job"])
    except (ServiceError, ConnectionError, OSError) as exc:
        print(f"repro-sim: error: {exc}", file=sys.stderr)
        return 1
    print(f"job {job['id']}: {job['status']}")
    if job["status"] != "done":
        return 1
    findings = 0
    for fingerprint in job["cells"]:
        doc = client.result(fingerprint)
        if doc.get("fuzz"):
            mut = doc["mutations"]
            status = (
                "clean" if doc["ok"]
                else f"{len(doc['findings'])} FINDINGS"
            )
            findings += len(doc["findings"])
            print(f"  fuzz seed={doc['seed']} budget={doc['budget']} "
                  f"rows={doc['rows_covered']} "
                  f"mutants={mut['detected']}/{mut['attempted']} "
                  f"{status}  [{fingerprint}]")
            continue
        summary = doc["summary"]
        print(f"  {doc['benchmark']:>10s}/{doc['technique']:<12s} "
              f"seed={doc['seed']} cycles={summary['cycles']:.0f} "
              f"ipc={summary['ipc']:.2f}  [{fingerprint}]")
    return 1 if findings else 0


def cmd_fuzz(args) -> int:
    """Handle ``repro-sim fuzz`` (coverage-guided protocol fuzzing)."""
    from repro.fuzz.campaign import FuzzOptions, run_campaign
    from repro.fuzz.report import render_fuzz

    if args.budget < 1:
        print("repro-sim: error: --budget must be >= 1", file=sys.stderr)
        return 2
    if args.workers < 0:
        print("repro-sim: error: --workers must be >= 0", file=sys.stderr)
        return 2
    options = FuzzOptions(
        seed=args.seed,
        budget=args.budget,
        protocols=tuple(dict.fromkeys(args.protocols)),
        interconnect=args.interconnect,
        workers=args.workers,
        replay_witnesses=not args.no_replay,
        minimize=not args.no_minimize,
    )
    report = run_campaign(options)
    doc = report.to_json()
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(doc, handle, indent=1, sort_keys=True)
            handle.write("\n")
    if args.format == "text":
        print(render_fuzz(doc))
    else:
        print(json.dumps(doc, indent=1, sort_keys=True))
    return 0 if doc["ok"] else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Temporal-silence reproduction simulator (ISPASS 2005)",
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument(
        "-v", "--verbose", action="store_true",
        help="debug-level progress logging",
    )
    verbosity.add_argument(
        "-q", "--quiet", action="store_true",
        help="warnings and errors only",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks, techniques, experiments")

    run_p = sub.add_parser("run", help="run one benchmark/technique cell")
    run_p.add_argument(
        "benchmark", choices=sorted(BENCHMARKS) + sorted(EXTRA_BENCHMARKS)
    )
    run_p.add_argument("--technique", default="base")
    run_p.add_argument("--scale", type=float, default=0.5)
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--procs", type=int, default=4)
    run_p.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a structured event trace to PATH",
    )
    run_p.add_argument(
        "--trace-format", choices=("jsonl", "chrome", "spans"), default="jsonl",
        help="trace output format (chrome loads in Perfetto/about:tracing; "
             "spans is one folded span per line)",
    )
    run_p.add_argument(
        "--trace-filter", metavar="SPEC", default=None,
        help="only record matching events, e.g. 'kind=validate|bus.grant,node=0-3'",
    )
    run_p.add_argument(
        "--trace-ring", metavar="N", type=int, default=None,
        help="keep only the last N events (bounded-memory ring buffer)",
    )
    run_p.add_argument(
        "--heartbeat", metavar="CYCLES", type=int, default=0,
        help="log a progress heartbeat every CYCLES simulated cycles",
    )
    run_p.add_argument(
        "--profile", action="store_true",
        help="attribute wall time to simulator components",
    )
    run_p.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="export the run's metric series (counters, gauges, "
             "histograms with labels) to PATH",
    )
    run_p.add_argument(
        "--metrics-format", choices=("json", "prom"), default="json",
        help="metrics output format (prom is Prometheus text exposition)",
    )
    run_p.add_argument(
        "--check-invariants", action="store_true",
        help="run the coherence invariant checker on every bus grant "
             "plus an end-of-run sweep (fails fast on protocol bugs)",
    )

    report_p = sub.add_parser("report", help="summarize a saved trace")
    report_p.add_argument("trace", help="trace file (jsonl or chrome)")
    report_p.add_argument(
        "--top", type=int, default=10,
        help="rows per ranking (hot lines, nodes)",
    )
    report_p.add_argument(
        "--chrome", metavar="PATH", default=None,
        help="also convert the trace to Chrome trace-event JSON at "
             "PATH (loads in Perfetto; works on per-job service "
             "traces from GET /jobs/{id}/trace)",
    )

    explain_p = sub.add_parser(
        "explain",
        help="attribute every communication miss to a provenance class",
        description=(
            "Run one cell with spans + metrics (or analyze a saved "
            "trace with --trace), reconstruct per-line coherence "
            "lifetimes, attribute every communication miss to a "
            "temporal-silence provenance class, account every "
            "validate's fate, and reconcile the trace totals exactly "
            "against the metrics registry.  Live runs exit 1 on a "
            "reconciliation mismatch or <95%% attribution."
        ),
    )
    explain_p.add_argument(
        "benchmark", nargs="?", default=None,
        choices=sorted(BENCHMARKS) + sorted(EXTRA_BENCHMARKS),
        help="benchmark to run (omit when using --trace)",
    )
    explain_p.add_argument("--technique", default="emesti")
    explain_p.add_argument("--scale", type=float, default=0.5)
    explain_p.add_argument("--seed", type=int, default=1)
    explain_p.add_argument("--procs", type=int, default=4)
    explain_p.add_argument(
        "--trace", metavar="PATH", default=None,
        help="analyze this saved trace instead of running (no "
             "metrics reconciliation offline)",
    )
    explain_p.add_argument(
        "--save-trace", metavar="PATH", default=None,
        help="also write the run's raw event trace (jsonl) to PATH",
    )
    explain_p.add_argument(
        "--trace-ring", metavar="N", type=int, default=None,
        help="bound the in-memory event buffer to the last N events",
    )
    explain_p.add_argument(
        "--line", metavar="ADDR", default=None,
        help="drill into one line's event chain (hex, e.g. 0x10080)",
    )
    explain_p.add_argument(
        "--top", type=int, default=10,
        help="rows in the offender-line table",
    )
    explain_p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="json emits the full report + reconciliation for CI",
    )

    exp_p = sub.add_parser("experiment", help="regenerate a table/figure")
    exp_p.add_argument("name", choices=EXPERIMENTS)
    exp_p.add_argument("--scale", type=float, default=0.5)
    exp_p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="fan independent simulation cells out over N worker "
             "processes (results are identical to a serial run; see "
             "docs/performance.md)",
    )

    bench_p = sub.add_parser(
        "bench",
        help="time the simulator and write BENCH_matrix.json",
        description=(
            "Run the scheduler/stats microbenchmarks and a fixed "
            "mini-matrix (per-cell wall times, serial vs parallel "
            "wall-clock), verify the serial-vs-worker determinism "
            "contract, and write a machine-readable report.  Exit 1 "
            "on a determinism mismatch."
        ),
    )
    bench_p.add_argument(
        "--quick", action="store_true",
        help="smaller matrix and microbench counts (CI smoke)",
    )
    bench_p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="workers for the parallel matrix pass "
             "(default: min(4, cpu_count))",
    )
    bench_p.add_argument(
        "--output", default="BENCH_matrix.json", metavar="PATH",
        help="report path (default: BENCH_matrix.json in the cwd)",
    )
    bench_p.add_argument(
        "--compare", default=None, metavar="BASELINE.json",
        help="diff this run against a baseline bench report; exit 1 "
             "when a metric regresses past the threshold",
    )
    bench_p.add_argument(
        "--threshold", type=float, default=None, metavar="REL",
        help="relative threshold for rate/time metrics in --compare "
             "(default: 0.5, i.e. ±50%%; cycles/committed always "
             "compare exactly)",
    )
    bench_p.add_argument(
        "--results-dir", default=None, metavar="DIR",
        help="keep the matrix caches and run manifests in DIR "
             "(default: a throwaway tempdir)",
    )

    serve_p = sub.add_parser(
        "serve",
        help="run the simulation service (async HTTP job API)",
        description=(
            "Expose the experiment matrix as a long-running HTTP/JSON "
            "service: POST /jobs accepts an experiment spec, a durable "
            "queue explodes it into fingerprint-identified cells, and "
            "a warm worker shard runs them (serving cached cells "
            "without simulation).  See docs/service.md."
        ),
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port", type=int, default=8642,
        help="listen port (0 picks an ephemeral port)",
    )
    serve_p.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker tasks in the shard (each leases one cell at a time)",
    )
    serve_p.add_argument(
        "--root", default="service-state", metavar="DIR",
        help="durable state: queue + result store + fingerprint index",
    )
    serve_p.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="cell lease deadline (heartbeats renew it; default 30)",
    )
    serve_p.add_argument(
        "--event-log", default=None, metavar="PATH",
        help="write the full NDJSON event log here on shutdown",
    )
    serve_p.add_argument(
        "--flight", default=None, metavar="PATH",
        help="persist a flight-recorder ring (last events + telemetry "
             "samples) to PATH for crash postmortems; render it with "
             "`repro-sim service postmortem PATH`",
    )
    serve_p.add_argument(
        "--telemetry-interval", type=float, default=1.0, metavar="SECONDS",
        help="vitals sampling cadence for /telemetry and the sampled "
             "gauges (0 disables the sampler)",
    )

    service_p = sub.add_parser(
        "service",
        help="service observability: live top, crash postmortem",
        description=(
            "Client-side observability for a `repro-sim serve` "
            "instance: `top` renders a refresh-loop terminal dashboard "
            "from GET /telemetry; `postmortem` renders a flight-"
            "recorder file left behind by `serve --flight PATH`."
        ),
    )
    service_sub = service_p.add_subparsers(
        dest="service_command", required=True,
    )
    top_p = service_sub.add_parser(
        "top", help="live terminal dashboard over GET /telemetry",
    )
    top_p.add_argument("--host", default="127.0.0.1")
    top_p.add_argument("--port", type=int, default=8642)
    top_p.add_argument(
        "--interval", type=float, default=1.0,
        help="refresh cadence in seconds",
    )
    top_p.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="render N refreshes then exit (default: until Ctrl-C)",
    )
    top_p.add_argument(
        "--timeout", type=float, default=10.0,
        help="client socket timeout in seconds",
    )
    top_p.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the screen (CI logs)",
    )
    post_p = service_sub.add_parser(
        "postmortem", help="render a flight-recorder file",
    )
    post_p.add_argument("path", help="flight-recorder JSON (serve --flight)")
    post_p.add_argument(
        "--tail", type=int, default=15,
        help="newest events to show",
    )

    submit_p = sub.add_parser(
        "submit",
        help="submit an experiment spec to a running service",
        description=(
            "POST a (benchmarks x techniques x seeds) spec to a "
            "`repro-sim serve` instance, optionally follow the job's "
            "named event stream, and print the per-cell results."
        ),
    )
    submit_p.add_argument(
        "benchmarks", nargs="*",
        help="benchmark names (or use --spec FILE)",
    )
    submit_p.add_argument(
        "--techniques", nargs="+", default=["base"], metavar="T",
    )
    submit_p.add_argument(
        "--seeds", nargs="+", type=int, default=[1], metavar="N",
    )
    submit_p.add_argument("--scale", type=float, default=0.1)
    submit_p.add_argument(
        "--priority", type=int, default=0,
        help="higher leases first",
    )
    submit_p.add_argument(
        "--spec", default=None, metavar="FILE",
        help="read the whole job spec from a JSON file instead",
    )
    submit_p.add_argument("--host", default="127.0.0.1")
    submit_p.add_argument("--port", type=int, default=8642)
    submit_p.add_argument(
        "--timeout", type=float, default=600.0,
        help="client socket timeout in seconds",
    )
    submit_p.add_argument(
        "--no-wait", dest="wait", action="store_false",
        help="return after acceptance instead of following to completion",
    )
    submit_p.add_argument(
        "--follow", action="store_true",
        help="print each streamed NDJSON event while waiting",
    )

    check_p = sub.add_parser(
        "check",
        help="model-check the coherence protocols exhaustively",
        description=(
            "Explore every reachable state of a small abstract system "
            "(N nodes, one line, two data values) driven by the real "
            "protocol tables; check SWMR, the data-value invariant, and "
            "the temporal-silence discipline; run the litmus suite; "
            "replay any counterexample on the concrete simulator.  "
            "Exit 0 when clean, 1 on a violation or coverage gap."
        ),
    )
    check_p.add_argument(
        "--protocol", default="all",
        choices=("mesi", "moesi", "mesti", "moesti", "emesti", "all"),
    )
    check_p.add_argument(
        "--interconnect", default="both",
        choices=("bus", "directory", "both"),
    )
    check_p.add_argument(
        "--nodes", type=int, default=3, choices=tuple(range(2, 17)),
        metavar="N",
        help="abstract system size, 2-16 (state space grows steeply; "
             "directory symmetry reduction caps at 6 nodes)",
    )
    check_p.add_argument(
        "--depth", type=int, default=None, metavar="N",
        help="bound exploration depth (default: exhaustive)",
    )
    check_p.add_argument(
        "--max-states", type=int, default=None, metavar="N",
        help="bound explored state count (default: exhaustive)",
    )
    check_p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="json emits the full results for CI archiving",
    )
    check_p.add_argument(
        "--mutate", default=None, metavar="NAME",
        help="seed a known protocol bug (see repro.verify.mutations) "
             "and demonstrate the checker catching it",
    )
    check_p.add_argument(
        "--no-litmus", action="store_true",
        help="skip the litmus-test suite",
    )
    check_p.add_argument(
        "--no-replay", action="store_true",
        help="do not replay counterexamples on the concrete system",
    )

    fuzz_p = sub.add_parser(
        "fuzz",
        help="coverage-guided protocol fuzzing campaign",
        description=(
            "Generate randomized litmus tests with allowed-outcome "
            "oracles derived from the reference-protocol enumeration, "
            "run each workload differentially across protocols "
            "(agreement per the data-value invariant), and interleave "
            "protocol-table mutation checks — all guided by "
            "transition-table coverage, with failing inputs minimized "
            "and replayed on the concrete simulator.  Deterministic "
            "per --seed and --budget, serial or parallel.  Exit 0 when "
            "clean, 1 on any finding, 2 on bad arguments."
        ),
    )
    fuzz_p.add_argument("--seed", type=int, default=0)
    fuzz_p.add_argument(
        "--budget", type=int, default=200, metavar="N",
        help="total iterations (every 4th checks a protocol mutant)",
    )
    fuzz_p.add_argument(
        "--protocols", nargs="+",
        default=["mesi", "mesti", "emesti"],
        choices=("mesi", "moesi", "mesti", "moesti", "emesti"),
        metavar="P",
        help="protocols run differentially (default: mesi mesti emesti)",
    )
    fuzz_p.add_argument(
        "--interconnect", default="bus", choices=("bus", "directory"),
    )
    fuzz_p.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="process-pool size (0 = serial; the report is identical "
             "either way)",
    )
    fuzz_p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="json emits the full campaign report",
    )
    fuzz_p.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the JSON report to PATH (CI artifact)",
    )
    fuzz_p.add_argument(
        "--no-minimize", action="store_true",
        help="skip counterexample minimization",
    )
    fuzz_p.add_argument(
        "--no-replay", action="store_true",
        help="skip concrete-simulator witness replays",
    )

    lint_p = sub.add_parser(
        "lint",
        help="static determinism/protocol analysis (simlint)",
        description=(
            "Run the simlint AST rules (SL001-SL009), the whole-program "
            "concurrency/contract analysis (SL201-SL205), and the static "
            "protocol-table audit (SL101-SL104) over the "
            "MESI/MOESI/MESTI/E-MESTI tables.  Exit 0 when clean (after "
            "baseline suppression), 1 on new findings, 2 on bad "
            "arguments."
        ),
    )
    lint_p.add_argument(
        "paths", nargs="*",
        help="files/directories to scan (default: the repro package)",
    )
    lint_p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="json emits findings + the full table-audit accounting",
    )
    lint_p.add_argument(
        "--rule", action="append", metavar="ID",
        help="only run this rule id (repeatable)",
    )
    lint_p.add_argument(
        "--select", action="append", metavar="PREFIX",
        help="only run rules whose id starts with PREFIX, e.g. "
             "--select SL2 for the whole-program layer (repeatable, "
             "combines with --rule)",
    )
    lint_p.add_argument(
        "--stats", action="store_true",
        help="append an analysis summary (findings per rule, call-graph "
             "size) to the text report",
    )
    lint_p.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline suppression file ('none' disables; default: the "
             "committed repro/lint/baseline.json)",
    )
    lint_p.add_argument(
        "--update-baseline", action="store_true",
        help="write the current findings to the baseline file "
             "(requires --justification when there are findings)",
    )
    lint_p.add_argument(
        "--justification", metavar="TEXT", default=None,
        help="one-line justification recorded on every baselined "
             "finding; --update-baseline without it exits non-zero",
    )
    lint_p.add_argument(
        "--no-audit", action="store_true",
        help="skip the protocol-table audit layer (SL1xx rules)",
    )
    lint_p.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )

    return parser


def _configure_logging(args) -> None:
    """Map -q/-v to a root logging level (idempotent across calls)."""
    if args.quiet:
        level = logging.WARNING
    elif args.verbose:
        level = logging.DEBUG
    else:
        level = logging.INFO
    logging.basicConfig(level=level, format="%(levelname)s %(name)s: %(message)s")
    logging.getLogger().setLevel(level)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    _configure_logging(args)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "report": cmd_report,
        "explain": cmd_explain,
        "experiment": cmd_experiment,
        "bench": cmd_bench,
        "serve": cmd_serve,
        "service": cmd_service,
        "submit": cmd_submit,
        "check": cmd_check,
        "fuzz": cmd_fuzz,
        "lint": cmd_lint,
    }
    try:
        return handlers[args.command](args)
    except (ConfigError, OSError, json.JSONDecodeError) as exc:
        print(f"repro-sim: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
