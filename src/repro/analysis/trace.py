"""Access-trace recording.

Attaches to a :class:`~repro.system.system.System` and records the
per-processor memory reference stream (kind, address, store value) in
issue order.  The trace feeds the trace-driven analyzer
(:mod:`repro.analysis.tracedriven`) used to reproduce the paper's
§5.1.2 argument that trace-based LVP studies over-estimate benefit.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TraceRecord:
    """One memory reference."""

    node: int
    kind: str  # load | larx | store | stcx
    addr: int
    value: int  # store/stcx data (0 for loads)

    @property
    def is_write(self) -> bool:
        """True for store-like records."""
        return self.kind in ("store", "stcx")


class TraceRecorder:
    """Collects the reference stream of every processor in a system."""

    def __init__(self, system):
        self.records: list[TraceRecord] = []
        for node in system.nodes:
            node.trace = self._record

    def _record(self, node: int, kind: str, addr: int, value: int) -> None:
        self.records.append(TraceRecord(node, kind, addr, value))

    def __len__(self) -> int:
        return len(self.records)

    def writes(self) -> int:
        """Number of store/stcx records."""
        return sum(1 for r in self.records if r.is_write)

    def reads(self) -> int:
        """Number of load/larx records."""
        return len(self.records) - self.writes()
