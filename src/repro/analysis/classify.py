"""Miss classification (the taxonomy of the paper's Figure 1).

Each L2 miss is classified per node:

* **cold** — the node never held the line;
* **capacity** — the node held it and displaced it locally;
* **communication** — the node's copy was invalidated by a remote
  store (the misses every technique in the paper targets).

Communication misses are sub-classified when the data arrives, by
comparing it against the snapshot taken at invalidation:

* **tss** — the whole line matches: a temporally (or update) silent
  sharing miss, avoidable in principle by MESTI, SLE, or LVP;
* **false** — the referenced word matches but the line changed
  elsewhere: false sharing, capturable by LVP (§3.1);
* **true** — the referenced word changed: true sharing (LVP can still
  capture the subset where the access pattern gives it time, §3.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.stats import ScopedStats
from repro.obs.metrics import NULL_METRICS


class _Residency(enum.Enum):
    NEVER = "never"
    RESIDENT = "resident"
    EVICTED = "evicted"
    INVALIDATED = "invalidated"


@dataclass
class _LineHistory:
    residency: _Residency = _Residency.NEVER
    snapshot: list[int] | None = None
    pending_word: int | None = None  # word of an in-flight comm miss


class MissClassifier:
    """Tracks per-(node, line) history and classifies every miss."""

    def __init__(self, stats: ScopedStats, n_procs: int, metrics=NULL_METRICS):
        self._stats = stats
        self._history: list[dict[int, _LineHistory]] = [dict() for _ in range(n_procs)]
        self._m_miss = {
            cls: metrics.bound_counter(
                stats, f"miss.{cls}",
                "repro_misses_total", "L2 misses by class", cls=cls,
            )
            for cls in ("cold", "capacity", "comm")
        }
        self._m_total = stats.counter("miss.total")
        self._m_comm = {
            cause: metrics.bound_counter(
                stats, f"miss.comm.{cause}",
                "repro_comm_misses_total",
                "Communication misses by cause (tss/false/true sharing)",
                cause=cause,
            )
            for cause in ("tss", "false", "true")
        }

    def _entry(self, node: int, base: int) -> _LineHistory:
        per_node = self._history[node]
        entry = per_node.get(base)
        if entry is None:
            entry = _LineHistory()
            per_node[base] = entry
        return entry

    # -- hooks from the node memory system ------------------------------

    def on_miss(self, node: int, base: int, word: int) -> str:
        """Classify a miss at request time; returns the class name."""
        entry = self._entry(node, base)
        if entry.residency is _Residency.NEVER:
            kind = "cold"
        elif entry.residency is _Residency.INVALIDATED:
            kind = "comm"
            entry.pending_word = word
        else:
            kind = "capacity"
        self._m_miss[kind].inc()
        self._m_total.inc()
        return kind

    def on_fill(self, node: int, base: int, data: list[int]) -> str | None:
        """The miss data arrived; finish comm-miss sub-classification.

        Returns the communication-miss cause (``"tss"``/``"false"``/
        ``"true"``), or None when the fill was not a classified
        communication miss — the provenance layer attaches this to the
        ``mem.miss`` event and the miss span.
        """
        entry = self._entry(node, base)
        sub = None
        if (
            entry.residency is _Residency.INVALIDATED
            and entry.pending_word is not None
            and entry.snapshot is not None
        ):
            if data == entry.snapshot:
                sub = "tss"
            elif data[entry.pending_word] == entry.snapshot[entry.pending_word]:
                sub = "false"
            else:
                sub = "true"
            self._m_comm[sub].inc()
        entry.residency = _Residency.RESIDENT
        entry.snapshot = None
        entry.pending_word = None
        return sub

    def on_local_evict(self, node: int, base: int) -> None:
        """The node displaced the line locally (capacity/conflict)."""
        entry = self._entry(node, base)
        if entry.residency is _Residency.RESIDENT:
            entry.residency = _Residency.EVICTED

    def on_remote_invalidate(self, node: int, base: int, words: list[int]) -> None:
        """A remote store invalidated the node's copy; snapshot the data."""
        entry = self._entry(node, base)
        entry.residency = _Residency.INVALIDATED
        entry.snapshot = list(words)

    # -- results ---------------------------------------------------------

    def communication_misses(self) -> float:
        """Total communication misses classified so far."""
        return self._stats.get("miss.comm")

    def total_misses(self) -> float:
        """Total misses classified so far."""
        return self._stats.get("miss.total")
