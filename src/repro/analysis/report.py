"""Plain-text rendering of tables and bar charts for the experiments."""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Render a monospaced table with right-aligned numeric columns."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(
            " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def ascii_bar(value: float, scale: float, width: int = 40, marker: str = "#") -> str:
    """One horizontal bar, ``scale`` units = full ``width``."""
    if scale <= 0:
        return ""
    n = max(0, min(width, round(value / scale * width)))
    return marker * n


def render_grouped_bars(
    groups: Sequence[str],
    series: dict[str, Sequence[float]],
    unit: str = "",
    width: int = 44,
    baseline: float | None = None,
) -> str:
    """Grouped horizontal bar chart: one block per group, one bar per series."""
    peak = max((max(vals) for vals in series.values() if vals), default=1.0)
    peak = max(peak, baseline or 0)
    label_w = max(len(name) for name in series)
    lines = []
    for gi, group in enumerate(groups):
        lines.append(f"{group}:")
        for name, vals in series.items():
            value = vals[gi]
            bar = ascii_bar(value, peak, width)
            lines.append(f"  {name.ljust(label_w)} |{bar} {value:.3f}{unit}")
        if baseline is not None:
            base_bar = ascii_bar(baseline, peak, width, ".")
            lines.append(
                f"  {'(baseline)'.ljust(label_w)} |{base_bar} {baseline:.3f}{unit}"
            )
        lines.append("")
    return "\n".join(lines)
