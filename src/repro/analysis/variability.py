"""Variability statistics for non-deterministic workloads.

The paper measures performance "using accepted statistical methods
required for non-deterministic workloads" [Alameldeen & Wood, HPCA
2003]: each configuration runs several times with small random timing
perturbations (our ``MachineConfig.latency_jitter``), and results are
reported as means with 95% confidence intervals from the Student
t-distribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats as scipy_stats


@dataclass(frozen=True)
class ConfidenceInterval:
    """A sample mean with a symmetric confidence half-width."""

    mean: float
    half_width: float
    n: int
    confidence: float = 0.95

    @property
    def low(self) -> float:
        """Lower bound of the interval."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper bound of the interval."""
        return self.mean + self.half_width

    def overlaps(self, other: "ConfidenceInterval") -> bool:
        """True if the two intervals overlap (difference not significant)."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.half_width:.4f}"


def mean_ci(samples: list[float], confidence: float = 0.95) -> ConfidenceInterval:
    """Mean and t-distribution confidence half-width of ``samples``."""
    if not samples:
        raise ValueError("no samples")
    n = len(samples)
    mean = sum(samples) / n
    if n == 1:
        return ConfidenceInterval(mean=mean, half_width=0.0, n=1, confidence=confidence)
    var = sum((x - mean) ** 2 for x in samples) / (n - 1)
    sem = math.sqrt(var / n)
    t = scipy_stats.t.ppf(0.5 + confidence / 2, df=n - 1)
    return ConfidenceInterval(mean=mean, half_width=t * sem, n=n, confidence=confidence)


def speedup_ci(
    baseline: list[float], variant: list[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """CI of the speedup of ``variant`` over ``baseline`` run times.

    Speedup is baseline_time / variant_time, computed pairwise when the
    sample counts match (common random seeds), else on the ratio of
    means with a conservative combined half-width.
    """
    if len(baseline) == len(variant) and len(baseline) > 1:
        ratios = [b / v for b, v in zip(baseline, variant)]
        return mean_ci(ratios, confidence)
    base_ci = mean_ci(baseline, confidence)
    var_ci = mean_ci(variant, confidence)
    mean = base_ci.mean / var_ci.mean
    rel = 0.0
    if base_ci.mean:
        rel += base_ci.half_width / base_ci.mean
    if var_ci.mean:
        rel += var_ci.half_width / var_ci.mean
    return ConfidenceInterval(
        mean=mean, half_width=mean * rel, n=min(len(baseline), len(variant)),
        confidence=confidence,
    )
