"""Analysis: miss classification, variability statistics, report tables,
access tracing, trace-driven limit studies, and the executable
paper-shape claims."""

from repro.analysis.claims import PAPER_CLAIMS, evaluate_claims
from repro.analysis.classify import MissClassifier
from repro.analysis.trace import TraceRecorder
from repro.analysis.tracedriven import TraceDrivenAnalyzer
from repro.analysis.variability import ConfidenceInterval, mean_ci

__all__ = [
    "PAPER_CLAIMS",
    "evaluate_claims",
    "MissClassifier",
    "TraceRecorder",
    "TraceDrivenAnalyzer",
    "ConfidenceInterval",
    "mean_ci",
]
