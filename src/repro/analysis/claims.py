"""The paper's qualitative claims, as machine-checkable predicates.

EXPERIMENTS.md argues the reproduction preserves the paper's *shape*;
this module makes that argument executable.  Each
:class:`Claim` names a finding from the paper and evaluates it against
a run matrix (the ``{benchmark: {technique: speedup}}`` mapping built
by :func:`repro.experiments.figure7.speedups`), producing a
:class:`ClaimReport` the harnesses can print and the benches can
assert on.

Thresholds are deliberately loose — they encode *direction and
ordering*, not magnitudes, so they hold across seeds and scales.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.report import render_table

Matrix = dict  # {benchmark: {technique: float speedup}}


@dataclass(frozen=True)
class Claim:
    """One falsifiable statement from the paper."""

    name: str
    source: str  # paper section
    check: Callable[[Matrix], bool]

    def evaluate(self, matrix: Matrix) -> bool:
        """True if the matrix satisfies the claim."""
        try:
            return bool(self.check(matrix))
        except KeyError:
            return False


def _s(matrix: Matrix, benchmark: str, technique: str) -> float:
    return matrix[benchmark][technique]


#: The headline findings of §5.3 and §6.
PAPER_CLAIMS = (
    Claim(
        "plain MESTI slows specjbb substantially",
        "§5.3.1 (Figure 7)",
        lambda m: _s(m, "specjbb", "mesti") < 0.95,
    ),
    Claim(
        "E-MESTI recovers specjbb to ~baseline",
        "§5.3.1",
        lambda m: _s(m, "specjbb", "emesti") > 0.96,
    ),
    Claim(
        "E-MESTI never loses by more than noise",
        "§5.3.1 ('improves or maintains performance in all cases')",
        lambda m: all(m[b]["emesti"] > 0.95 for b in m),
    ),
    Claim(
        "SLE's largest win is raytrace",
        "§5.3.1 ('measurable speedup beyond E-MESTI and LVP')",
        lambda m: _s(m, "raytrace", "sle")
        == max(m[b]["sle"] for b in m),
    ),
    Claim(
        "SLE beats every other technique on raytrace",
        "§5.3.1",
        lambda m: _s(m, "raytrace", "sle")
        > max(_s(m, "raytrace", t) for t in ("mesti", "emesti", "lvp")),
    ),
    Claim(
        "SLE does not win on any commercial workload",
        "§5.3.1 ('robust performance appears more elusive')",
        lambda m: all(
            m[b]["sle"] <= max(m[b]["emesti"], m[b]["lvp"]) + 0.01
            for b in ("specjbb", "specweb", "tpc-b", "tpc-h")
        ),
    ),
    Claim(
        "tpc-b gains the most from E-MESTI+LVP",
        "§5.3 / §6 ('2.0% to 21% ... in these workloads', tpc-b at the top)",
        lambda m: _s(m, "tpc-b", "emesti+lvp")
        == max(m[b]["emesti+lvp"] for b in m),
    ),
    Claim(
        "E-MESTI+LVP is roughly additive on tpc-b",
        "§5.3.2 ('approximately equal to the sum of each method')",
        lambda m: _s(m, "tpc-b", "emesti+lvp")
        >= max(_s(m, "tpc-b", "emesti"), _s(m, "tpc-b", "lvp")) - 0.02,
    ),
    Claim(
        "producer-side elimination generally beats consumer-side LVP",
        "§5.1.2 / §6",
        lambda m: sum(1 for b in m if m[b]["emesti"] >= m[b]["lvp"] - 0.01)
        >= len(m) - 1,
    ),
)


@dataclass
class ClaimReport:
    """Evaluation of every claim against one matrix."""

    results: list  # [(Claim, bool)]

    @property
    def passed(self) -> int:
        """Number of claims satisfied."""
        return sum(1 for _, ok in self.results if ok)

    @property
    def total(self) -> int:
        """Number of claims evaluated."""
        return len(self.results)

    @property
    def all_hold(self) -> bool:
        """True when every claim is satisfied."""
        return self.passed == self.total

    def failed_claims(self) -> list:
        """The claims that did not hold."""
        return [claim for claim, ok in self.results if not ok]

    def render(self) -> str:
        """Human-readable claim-by-claim table."""
        rows = [
            [("PASS" if ok else "FAIL"), claim.name, claim.source]
            for claim, ok in self.results
        ]
        return render_table(
            ["", "Claim", "Source"], rows,
            title=f"Paper-shape claims: {self.passed}/{self.total} hold",
        )


def evaluate_claims(matrix: Matrix, claims=PAPER_CLAIMS) -> ClaimReport:
    """Evaluate ``claims`` against a speedup matrix."""
    return ClaimReport([(claim, claim.evaluate(matrix)) for claim in claims])


def matrix_from_speedups(speedup_cis: dict) -> Matrix:
    """Convert figure7's ``{bench: {tech: ConfidenceInterval}}`` to means."""
    return {
        bench: {tech: ci.mean for tech, ci in per.items()}
        for bench, per in speedup_cis.items()
    }
