"""Trace-driven analysis of communication-miss capturability.

This is the style of evaluation the paper argues is *inconclusive* for
LVP (§3.2, §5.1.2): replay a reference trace through a simple
invalidate-protocol cache model (here with infinite per-node capacity,
as in [6]'s limit study) and count how many communication misses a
technique could *theoretically* capture:

* **LVP-capturable** — the stale copy's referenced word still equals
  the coherent value at the miss (tag-match invalid value prediction
  would verify): covers TSS, false sharing, and quiet true sharing.
* **MESTI-capturable** — the whole line has reverted to the value the
  remote copy saved at invalidation (a validate would have
  re-installed it).

The numbers say nothing about how much of the verification latency a
real core can overlap — which is exactly why the paper's
execution-driven LVP results fall far short of the trace-driven
capture rate.  :mod:`repro.experiments.trace_vs_exec` puts the two
side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.addressing import line_address, word_index


@dataclass
class _NodeLine:
    """A line's residency in one node's (infinite) cache."""

    valid: bool = False
    data: list[int] = field(default_factory=lambda: [0] * 8)  # copy at last access


@dataclass
class TraceAnalysis:
    """Results of a trace replay."""

    references: int = 0
    misses: int = 0
    cold_misses: int = 0
    comm_misses: int = 0
    lvp_capturable: int = 0
    mesti_capturable: int = 0

    @property
    def lvp_fraction(self) -> float:
        """Fraction of communication misses LVP could capture."""
        return self.lvp_capturable / self.comm_misses if self.comm_misses else 0.0

    @property
    def mesti_fraction(self) -> float:
        """Fraction of communication misses MESTI could capture."""
        return self.mesti_capturable / self.comm_misses if self.comm_misses else 0.0


class TraceDrivenAnalyzer:
    """Replays a reference trace through infinite per-node caches."""

    def __init__(self, n_procs: int, line_size: int = 64):
        self.n_procs = n_procs
        self.line_size = line_size
        self._memory: dict[int, list[int]] = {}
        self._nodes: list[dict[int, _NodeLine]] = [dict() for _ in range(n_procs)]

    def _mem_line(self, base: int) -> list[int]:
        line = self._memory.get(base)
        if line is None:
            line = [0] * (self.line_size // 8)
            self._memory[base] = line
        return line

    def analyze(self, records) -> TraceAnalysis:
        """Replay ``records`` (iterable of TraceRecord) and classify."""
        out = TraceAnalysis()
        for rec in records:
            base = line_address(rec.addr, self.line_size)
            widx = word_index(rec.addr, self.line_size)
            mem = self._mem_line(base)
            node = self._nodes[rec.node]
            line = node.get(base)
            out.references += 1

            if line is None or not line.valid:
                out.misses += 1
                if line is None:
                    out.cold_misses += 1
                    line = _NodeLine()
                    node[base] = line
                else:
                    # Invalidated by a remote write: a communication
                    # miss.  Compare the stale copy with coherent data.
                    out.comm_misses += 1
                    if line.data[widx] == mem[widx]:
                        out.lvp_capturable += 1
                    if line.data == mem:
                        out.mesti_capturable += 1
                line.valid = True

            if rec.is_write:
                # Remote valid copies hold the pre-write contents (an
                # invalidate protocol keeps valid copies current), so
                # snapshot before applying the write.
                pre_write = list(mem)
                mem[widx] = rec.value
                for other_id, other in enumerate(self._nodes):
                    if other_id != rec.node:
                        stale = other.get(base)
                        if stale is not None and stale.valid:
                            stale.valid = False
                            stale.data = pre_write
            # Refresh this node's view of the line.
            line.data = list(mem)
        return out
