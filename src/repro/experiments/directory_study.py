"""§6 — MESTI and E-MESTI over a directory-based system.

The paper's closing discussion: the techniques "can be implemented
directly in directory-based systems", but the useful-snoop-response
machinery "may need modification since generating this response is
more complicated".  This study runs the same workloads over the
home-directory interconnect (:mod:`repro.coherence.directory`) and
reports:

* that validates still eliminate communication misses — now as
  *multicasts to the directory-tracked T-sharers* instead of
  broadcasts (message counts show the saving);
* that E-MESTI's training still works, because the home contacts every
  sharer on an invalidation and can aggregate the useful response;
* the cost of directory indirection against the snooping bus.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.report import render_table
from repro.common.config import InterconnectKind, scaled_config
from repro.experiments.runner import DEFAULT_JITTER, summarize
from repro.system.system import System
from repro.system.techniques import configure_technique
from repro.workloads.registry import get_benchmark

HEADERS = [
    "Benchmark",
    "Interconnect",
    "Base cycles",
    "E-MESTI speedup",
    "Validates",
    "Comm misses (E-MESTI)",
    "Messages",
]


def _run(technique, benchmark, interconnect, scale, seed):
    cfg = configure_technique(scaled_config(), technique)
    cfg = dataclasses.replace(
        cfg, interconnect=interconnect, latency_jitter=DEFAULT_JITTER
    )
    result = System(cfg, get_benchmark(benchmark, scale=scale), seed=seed).run(
        max_cycles=500_000_000, max_events=300_000_000
    )
    summary = summarize(result)
    summary["messages"] = result.stats.get("bus.messages")
    return summary


def collect(scale=0.5, seed=1, benchmarks=("tpc-b", "radiosity"), verbose=True):
    """Run the experiment and return its result rows."""
    rows = []
    for benchmark in benchmarks:
        for kind in (InterconnectKind.BUS, InterconnectKind.DIRECTORY):
            base = _run("base", benchmark, kind, scale, seed)
            emesti = _run("emesti", benchmark, kind, scale, seed)
            rows.append([
                benchmark,
                kind.value,
                base["cycles"],
                round(base["cycles"] / emesti["cycles"], 3),
                emesti["txn_validate"],
                emesti["miss_comm"],
                emesti["messages"] or emesti["txn_total"],
            ])
            if verbose:
                print(f"  directory-study {benchmark}/{kind.value} done", flush=True)
    return rows


def run(scale=0.5, seed=1, benchmarks=("tpc-b", "radiosity"), verbose=True) -> str:
    """Run the experiment and return the rendered text."""
    rows = collect(scale, seed, benchmarks, verbose)
    return render_table(
        HEADERS, rows,
        title="E-MESTI over snooping bus vs home directory (§6)",
    )


if __name__ == "__main__":
    print(run())
