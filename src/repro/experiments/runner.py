"""Matrix runner: execute (benchmark × technique × seed) simulations.

Every run is reduced to a :class:`RunSummary` (a plain dict of the
numbers the figures need) and cached as JSON under ``results/`` so the
per-figure harnesses can share runs: Figure 7 (performance) and
Figure 8 (address transactions) use the same matrix, Table 2 uses its
``mesti`` column, and the SLE statistics of §5.3.1 its ``sle`` column.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable

from repro.common.config import MachineConfig, scaled_config
from repro.system.system import RunResult, System
from repro.system.techniques import configure_technique
from repro.workloads.registry import BENCHMARKS, get_benchmark

import dataclasses

#: Default timing-perturbation magnitude for variability runs
#: (Alameldeen–Wood): a few percent of the remote latency.
DEFAULT_JITTER = 8

RunSummary = dict

log = logging.getLogger("repro.runner")


def summarize(result: RunResult, wall_seconds: float = 0.0) -> RunSummary:
    """Reduce a :class:`RunResult` to the numbers the figures report."""
    stats = result.stats
    n = result.config.n_procs if result.config else 4
    summary: RunSummary = {
        "cycles": result.cycles,
        "committed": result.committed,
        "ipc": result.ipc,
        "wall_seconds": round(wall_seconds, 3),
        "txn_total": stats.get("bus.txn.total"),
        "txn_read": stats.get("bus.txn.read"),
        "txn_readx": stats.get("bus.txn.readx"),
        "txn_upgrade": stats.get("bus.txn.upgrade"),
        "txn_validate": stats.get("bus.txn.validate"),
        "txn_writeback": stats.get("bus.txn.writeback"),
        "txn_cache_to_cache": stats.get("bus.txn.cache_to_cache"),
        "miss_total": stats.get("misses.miss.total"),
        "miss_cold": stats.get("misses.miss.cold"),
        "miss_capacity": stats.get("misses.miss.capacity"),
        "miss_comm": stats.get("misses.miss.comm"),
        "miss_comm_tss": stats.get("misses.miss.comm.tss"),
        "miss_comm_false": stats.get("misses.miss.comm.false"),
        "miss_comm_true": stats.get("misses.miss.comm.true"),
        "invariant_checks": stats.get("run.invariant_checks"),
    }
    for name, key in [
        ("commit.load", "loads"),
        ("commit.store", "stores"),
        ("commit.larx", "larx"),
        ("commit.stcx", "stcx"),
        ("commit.alu", "alu"),
    ]:
        summary[key] = sum(stats.get(f"core{i}.{name}") for i in range(n))
    for name, key in [
        ("stores.update_silent", "us_stores"),
        ("lvp.predictions", "lvp_predictions"),
        ("lvp.correct", "lvp_correct"),
        ("lvp.mispredictions", "lvp_mispredictions"),
    ]:
        summary[key] = sum(stats.get(f"node{i}.{name}") for i in range(n))
    for name, key in [
        ("ts_stores", "ts_stores"),
        ("validates_broadcast", "validates_broadcast"),
        ("validates_suppressed", "validates_suppressed"),
        ("revalidations", "revalidations"),
    ]:
        summary[key] = sum(stats.get(f"ctrl{i}.{name}") for i in range(n))
    for name in (
        "candidates",
        "attempts",
        "successes",
        "filtered_by_confidence",
        "restarts",
        "fallback_acquisitions",
        "failure.no_release",
        "failure.conflict",
        "failure.serialize",
        "failure.nested",
    ):
        key = "sle_" + name.replace("failure.", "fail_")
        summary[key] = sum(stats.get(f"sle{i}.{name}") for i in range(n))
    # Histogram-derived distribution fields (additive: every key above
    # is untouched, so cached result files stay comparable).
    miss_lat = stats.merged_histogram("miss_latency")
    summary["miss_latency_p50"] = miss_lat.p50
    summary["miss_latency_p95"] = miss_lat.p95
    summary["miss_latency_p99"] = miss_lat.p99
    summary["miss_latency_mean"] = miss_lat.mean
    queue = stats.merged_histogram("queue_depth")
    summary["bus_queue_depth_p50"] = queue.p50
    summary["bus_queue_depth_p95"] = queue.p95
    reuse = stats.merged_histogram("validate_reuse_distance")
    summary["validate_reuse_p50"] = reuse.p50
    summary["validate_reuse_count"] = reuse.count
    return summary


class MatrixRunner:
    """Runs and caches the benchmark × technique × seed matrix."""

    def __init__(
        self,
        config: MachineConfig | None = None,
        scale: float = 1.0,
        results_dir: str | Path = "results",
        label: str = "matrix",
        verbose: bool = True,
    ):
        self.base_config = config or scaled_config()
        self.scale = scale
        self.results_dir = Path(results_dir)
        self.label = label
        self.verbose = verbose
        self._cache: dict[str, RunSummary] = {}
        self._cache_path = self.results_dir / f"{label}_scale{scale}.json"
        self._dirty = False
        self._batch_depth = 0
        if self._cache_path.exists():
            self._cache = json.loads(self._cache_path.read_text())

    def __enter__(self) -> "MatrixRunner":
        """Context-manager entry (flushes the cache on exit)."""
        return self

    def __exit__(self, *exc) -> None:
        """Flush any unsaved results on context exit."""
        self.close()

    def close(self) -> None:
        """Persist any unsaved results."""
        if self._dirty:
            self.flush()

    @staticmethod
    def key(benchmark: str, technique: str, seed: int) -> str:
        """Cache key for one (benchmark, technique, seed) cell."""
        return f"{benchmark}|{technique}|{seed}"

    def run_one(
        self, benchmark: str, technique: str, seed: int, force: bool = False
    ) -> RunSummary:
        """Run (or fetch from cache) one cell of the matrix."""
        key = self.key(benchmark, technique, seed)
        if not force and key in self._cache:
            return self._cache[key]
        config = configure_technique(self.base_config, technique)
        config = dataclasses.replace(config, latency_jitter=DEFAULT_JITTER)
        workload = get_benchmark(benchmark, scale=self.scale)
        start = time.perf_counter()
        result = System(config, workload, seed=seed).run(
            max_cycles=500_000_000, max_events=300_000_000
        )
        summary = summarize(result, time.perf_counter() - start)
        self._cache[key] = summary
        self._save()
        log.log(
            logging.INFO if self.verbose else logging.DEBUG,
            "ran %9s / %-15s seed=%d cycles=%9.0f ipc=%.2f (%.1fs)",
            benchmark, technique, seed,
            summary["cycles"], summary["ipc"], summary["wall_seconds"],
        )
        return summary

    def run_matrix(
        self,
        benchmarks: Iterable[str] | None = None,
        techniques: Iterable[str] = ("base",),
        seeds: Iterable[int] = (1, 2, 3),
    ) -> dict[str, RunSummary]:
        """Run every requested cell; returns the key->summary mapping."""
        out = {}
        with self._batch():
            for benchmark in benchmarks or BENCHMARKS:
                for technique in techniques:
                    for seed in seeds:
                        out[self.key(benchmark, technique, seed)] = self.run_one(
                            benchmark, technique, seed
                        )
        return out

    def cells(self, benchmark: str, technique: str, seeds: Iterable[int]) -> list[RunSummary]:
        """Fetch (running if needed) all seeds of one cell."""
        with self._batch():
            return [self.run_one(benchmark, technique, s) for s in seeds]

    @contextmanager
    def _batch(self):
        """Defer cache writes until the enclosing sweep finishes.

        ``_save()`` calls inside the ``with`` block only mark the cache
        dirty; one atomic write happens on exit.  Re-entrant, and the
        exit flush runs even when a run raises, so a partial sweep still
        persists its completed cells.
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0 and self._dirty:
                self.flush()

    def _save(self) -> None:
        self._dirty = True
        if self._batch_depth == 0:
            self.flush()

    def flush(self) -> None:
        """Atomically write the result cache to disk.

        The JSON is staged in a temp file in the same directory and
        moved into place with :func:`os.replace`, so an interrupted
        sweep can never leave a truncated cache behind.
        """
        self.results_dir.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(self._cache, indent=1, sort_keys=True)
        fd, tmp_path = tempfile.mkstemp(
            prefix=self._cache_path.name + ".", suffix=".tmp",
            dir=self.results_dir,
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_path, self._cache_path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self._dirty = False
