"""Matrix runner: execute (benchmark × technique × seed) simulations.

Every run is reduced to a :class:`RunSummary` (a plain dict of the
numbers the figures need) and cached as JSON under ``results/`` so the
per-figure harnesses can share runs: Figure 7 (performance) and
Figure 8 (address transactions) use the same matrix, Table 2 uses its
``mesti`` column, and the SLE statistics of §5.3.1 its ``sle`` column.

Cells are independent simulations (each builds its own ``System`` from
the seed), so the matrix fans out over a
:class:`~concurrent.futures.ProcessPoolExecutor` when ``workers`` is
given.  The determinism contract (docs/performance.md): a cell run in
a worker produces a summary identical — every field except the
``wall_seconds`` wall-clock measurement — to the same cell run
serially, so cached, serial, and parallel results are interchangeable.

The cache file carries a fingerprint of the machine configuration, so
summaries produced under one config are never silently reused under
another, and flushes merge with whatever is already on disk (guarded
by a lock file) so concurrent runners sharing a cache path cannot
clobber each other's completed cells.
"""

from __future__ import annotations

import atexit
import dataclasses
import enum
import gc
import hashlib
import json
import logging
import math
import os
import tempfile
import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterable

from repro.common.config import MachineConfig, scaled_config
from repro.obs.progress import CellUpdate, MatrixProgress, RunManifest
from repro.obs.provenance import analyze_events
from repro.obs.spans import fold_spans
from repro.obs.tracer import TraceFilter, Tracer
from repro.system.system import RunResult, System
from repro.system.techniques import configure_technique
from repro.workloads.registry import BENCHMARKS, get_benchmark

#: Default timing-perturbation magnitude for variability runs
#: (Alameldeen–Wood): a few percent of the remote latency.
DEFAULT_JITTER = 8

#: Per-cell wall-clock budget for parallel runs.  The in-simulation
#: ``max_cycles``/``max_events`` guards catch livelock deterministically;
#: this outer limit only catches a wedged worker process.
DEFAULT_CELL_TIMEOUT = 3600.0

#: Cache file format version (bumped when the on-disk layout changes).
CACHE_FORMAT = 2

#: Target dispatch chunks per worker.  Cells are submitted to the pool
#: in contiguous chunks rather than one task per cell: large matrices
#: pay per-task pickling/IPC once per chunk, while keeping several
#: chunks per worker preserves load balance when cell times vary.
DISPATCH_CHUNKS_PER_WORKER = 4

#: Summary fields that measure the host, not the simulation — excluded
#: from determinism comparisons.  ``worker`` (the producing pid) and
#: ``retries`` are provenance, recorded so a retried cell's inflated
#: ``wall_seconds`` is explainable from the cache alone.
NONDETERMINISTIC_FIELDS = ("wall_seconds", "worker", "retries")

RunSummary = dict

log = logging.getLogger("repro.runner")


def summarize(result: RunResult, wall_seconds: float = 0.0) -> RunSummary:
    """Reduce a :class:`RunResult` to the numbers the figures report."""
    stats = result.stats
    n = result.config.n_procs if result.config else 4
    summary: RunSummary = {
        "cycles": result.cycles,
        "committed": result.committed,
        "ipc": result.ipc,
        "wall_seconds": round(wall_seconds, 3),
        "txn_total": stats.get("bus.txn.total"),
        "txn_read": stats.get("bus.txn.read"),
        "txn_readx": stats.get("bus.txn.readx"),
        "txn_upgrade": stats.get("bus.txn.upgrade"),
        "txn_validate": stats.get("bus.txn.validate"),
        "txn_writeback": stats.get("bus.txn.writeback"),
        "txn_cache_to_cache": stats.get("bus.txn.cache_to_cache"),
        "miss_total": stats.get("misses.miss.total"),
        "miss_cold": stats.get("misses.miss.cold"),
        "miss_capacity": stats.get("misses.miss.capacity"),
        "miss_comm": stats.get("misses.miss.comm"),
        "miss_comm_tss": stats.get("misses.miss.comm.tss"),
        "miss_comm_false": stats.get("misses.miss.comm.false"),
        "miss_comm_true": stats.get("misses.miss.comm.true"),
        "invariant_checks": stats.get("run.invariant_checks"),
    }
    for name, key in [
        ("commit.load", "loads"),
        ("commit.store", "stores"),
        ("commit.larx", "larx"),
        ("commit.stcx", "stcx"),
        ("commit.alu", "alu"),
    ]:
        summary[key] = sum(stats.get(f"core{i}.{name}") for i in range(n))
    for name, key in [
        ("stores.update_silent", "us_stores"),
        ("lvp.predictions", "lvp_predictions"),
        ("lvp.correct", "lvp_correct"),
        ("lvp.mispredictions", "lvp_mispredictions"),
    ]:
        summary[key] = sum(stats.get(f"node{i}.{name}") for i in range(n))
    for name, key in [
        ("ts_stores", "ts_stores"),
        ("validates_broadcast", "validates_broadcast"),
        ("validates_suppressed", "validates_suppressed"),
        ("revalidations", "revalidations"),
    ]:
        summary[key] = sum(stats.get(f"ctrl{i}.{name}") for i in range(n))
    # Validate usefulness, from the predictor's training events: a
    # validate was useful when a remote request consumed the silent
    # value (or the upgrade's snoop response asserted sharing), useless
    # when the snoop response denied it.
    summary["validates_useful"] = sum(
        stats.get(f"ctrl{i}.predictor.useful_by_external_req")
        + stats.get(f"ctrl{i}.predictor.useful_by_snoop_response")
        for i in range(n)
    )
    summary["validates_useless"] = sum(
        stats.get(f"ctrl{i}.predictor.useless_by_snoop_response") for i in range(n)
    )
    for name in (
        "candidates",
        "attempts",
        "successes",
        "filtered_by_confidence",
        "restarts",
        "fallback_acquisitions",
        "failure.no_release",
        "failure.conflict",
        "failure.serialize",
        "failure.nested",
    ):
        key = "sle_" + name.replace("failure.", "fail_")
        summary[key] = sum(stats.get(f"sle{i}.{name}") for i in range(n))
    # Histogram-derived distribution fields (additive: every key above
    # is untouched, so cached result files stay comparable).
    miss_lat = stats.merged_histogram("miss_latency")
    summary["miss_latency_p50"] = miss_lat.p50
    summary["miss_latency_p95"] = miss_lat.p95
    summary["miss_latency_p99"] = miss_lat.p99
    summary["miss_latency_mean"] = miss_lat.mean
    queue = stats.merged_histogram("queue_depth")
    summary["bus_queue_depth_p50"] = queue.p50
    summary["bus_queue_depth_p95"] = queue.p95
    reuse = stats.merged_histogram("validate_reuse_distance")
    summary["validate_reuse_p50"] = reuse.p50
    summary["validate_reuse_count"] = reuse.count
    return summary


def summaries_equal(a: RunSummary, b: RunSummary) -> bool:
    """Dict equality modulo the host-dependent wall-clock fields."""
    strip = lambda s: {k: v for k, v in s.items() if k not in NONDETERMINISTIC_FIELDS}
    return strip(a) == strip(b)


def config_fingerprint(config: MachineConfig, jitter: int = DEFAULT_JITTER) -> str:
    """Stable hash of every :class:`MachineConfig` field plus the jitter.

    Two runners whose fingerprints match produce interchangeable
    summaries for the same (benchmark, technique, seed) cell; the cache
    file records the fingerprint so summaries cached under one machine
    are never silently reused under another.
    """

    def encode(value):
        if dataclasses.is_dataclass(value):
            return {
                f.name: encode(getattr(value, f.name))
                for f in dataclasses.fields(value)
            }
        if isinstance(value, enum.Enum):
            return value.value
        return value

    payload = json.dumps(
        {"config": encode(config), "jitter": jitter}, sort_keys=True
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def cell_fingerprint(
    config: MachineConfig,
    benchmark: str,
    scale: float,
    seed: int,
    jitter: int = DEFAULT_JITTER,
) -> str:
    """Stable identity of one fully-configured simulation cell.

    Hashes the complete per-cell machine config (technique already
    applied — the technique is part of the config, not a separate
    coordinate) together with the workload coordinates.  Two requests
    with equal cell fingerprints are the *same simulation*: the service
    layer keys its result store and in-flight dedupe on this, so a
    million identical submissions cost one run.
    """
    payload = f"{config_fingerprint(config, jitter)}|{benchmark}|{scale}|{seed}"
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def run_cell(
    config: MachineConfig,
    benchmark: str,
    scale: float,
    seed: int,
    provenance: bool = False,
    trace: dict | None = None,
) -> RunSummary:
    """Run one fully-configured cell and summarize it.

    Module-level so a :class:`ProcessPoolExecutor` can pickle it; the
    serial path uses the same function, which is what makes the
    serial-vs-worker determinism contract enforceable by test.

    ``provenance`` traces the run in memory and attaches the miss-
    provenance cell summary (attribution classes, validate fate, span
    health) under ``summary["provenance"]``.  Spans add no scheduler
    events, so every other summary field is identical to an untraced
    run — cached and traced results stay comparable.

    ``trace`` is the service's distributed-trace context — a plain
    ``{"trace": id}`` dict (plain data only: it crosses the process-
    pool boundary).  When set, the run is traced spans-only and the
    coherence spans come back folded under ``summary["trace"]`` as
    ``{"trace", "spans", "count", "truncated"}`` (see
    :func:`repro.obs.spans.fold_spans`); the worker shard pops that
    key before storing, so stored summaries stay byte-identical to
    serial runs.
    """
    workload = get_benchmark(benchmark, scale=scale)
    start = time.perf_counter()
    if provenance:
        tracer = Tracer()
    elif trace is not None:
        # Spans only: the full point-event firehose is provenance's
        # business; trace propagation needs just the causal tree.
        tracer = Tracer(filter=TraceFilter(kinds=("span",)))
    else:
        tracer = None
    # The simulator allocates heavily but creates almost no cyclic
    # garbage a run needs collected mid-flight; cyclic-GC passes over
    # the live System graph only add wall time that *grows* with the
    # process's object count, making successive cells mysteriously
    # slower.  Pausing collection for the duration of one cell keeps
    # per-cell wall time flat (results are untouched — GC timing is
    # invisible to the simulation).
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        result = System(config, workload, seed=seed, tracer=tracer).run(
            max_cycles=500_000_000, max_events=300_000_000
        )
    finally:
        if gc_was_enabled:
            gc.enable()
    summary = summarize(result, time.perf_counter() - start)
    if provenance and tracer is not None:
        summary["provenance"] = analyze_events(tracer.events).cell_summary()
    if trace is not None and tracer is not None:
        summary["trace"] = {
            "trace": trace.get("trace"),
            **fold_spans(tracer.events),
        }
    # Provenance over the result pipe: which process produced this
    # summary.  Host-dependent, hence in NONDETERMINISTIC_FIELDS.
    summary["worker"] = os.getpid()
    summary["retries"] = 0
    return summary


def run_cell_chunk(
    jobs: list[tuple],
) -> list[RunSummary]:
    """Run a contiguous chunk of cells in one worker task.

    Chunked dispatch amortizes the per-task submission cost (pickling
    the :class:`MachineConfig`, executor queue round-trips) over
    several cells; the summaries come back in job order.
    """
    return [run_cell(*job) for job in jobs]


#: Warm persistent worker pools, keyed by (worker count, initializer).
#: Creating a :class:`ProcessPoolExecutor` per sweep pays process
#: startup every time; reusing one across sweeps (the bench parallel
#: pass, a service shard's whole lifetime) amortizes it to zero.
#: Keying on the initializer keeps differently-initialized pools of
#: the same width apart: a shard pool whose workers dropped inherited
#: TCP fds must never be handed to — or retired by — a plain sweep.
_WARM_POOLS: dict[tuple[int, Callable | None], ProcessPoolExecutor] = {}


def _shutdown_warm_pools() -> None:
    """Best-effort atexit teardown of every warm pool."""
    for pool in _WARM_POOLS.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _WARM_POOLS.clear()


def warm_pool(workers: int, initializer=None) -> ProcessPoolExecutor:
    """The shared persistent pool with ``workers`` processes.

    Created on first use and reused for every later sweep that wants
    the same width *and* the same ``initializer``; registered for
    atexit shutdown.  A pool that broke (worker crash) should be
    discarded with :func:`retire_pool` so the next call builds a
    fresh one.

    ``initializer`` runs once in each worker process and is part of
    the pool key, so a caller that needs initialized workers (the
    service shard dropping fork-inherited TCP fds — see
    ``repro.service.workers._close_inherited_inet_sockets``) never
    silently receives a same-width pool created without it.
    """
    key = (workers, initializer)
    pool = _WARM_POOLS.get(key)
    if pool is None:
        if not _WARM_POOLS:
            atexit.register(_shutdown_warm_pools)
        pool = ProcessPoolExecutor(max_workers=workers, initializer=initializer)
        _WARM_POOLS[key] = pool
    return pool


def retire_pool(workers: int, initializer=None) -> None:
    """Discard (and shut down) one warm pool.

    Keyed like :func:`warm_pool`: only the pool with this exact
    (``workers``, ``initializer``) pair is torn down, so a component
    retiring its own broken pool can never shut down an unrelated
    same-width pool owned by another component in the same process.
    """
    pool = _WARM_POOLS.pop((workers, initializer), None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def effective_workers(workers: int | None, n_jobs: int) -> int:
    """Right-size a requested worker count to what can actually help.

    Worker processes beyond the job count idle, and worker processes
    beyond the machine's cores *cost* wall time (context switching and
    pool startup with zero added parallelism — the classic way a
    parallel run loses to a serial one on small boxes).  The result is
    ``min(workers, n_jobs, cpu_count)``; callers treat ``<= 1`` as
    "run serially in-process".
    """
    if not workers or workers <= 1:
        return 1
    return max(1, min(workers, n_jobs, os.cpu_count() or 1))


def _harvest(
    future: Future,
    retry: Callable[[], RunSummary],
    timeout: float | None,
    label: str,
    on_event: Callable[[CellUpdate], None] | None = None,
) -> RunSummary:
    """Wait for one cell's future; on any failure, retry exactly once.

    The retried summary's ``retries`` field is bumped so the extra
    attempt (and its inflated wall clock) is visible in the cache.
    """
    try:
        return future.result(timeout=timeout)
    except Exception as exc:  # noqa: BLE001 - every failure gets one retry
        # On 3.10 the futures TimeoutError is not the builtin one yet.
        kind = (
            "timeout"
            if isinstance(exc, (TimeoutError, FuturesTimeoutError))
            else "retry"
        )
        if on_event is not None:
            on_event(CellUpdate(
                kind, label, error=f"{type(exc).__name__}: {exc}",
            ))
        log.warning(
            "cell %s failed (%s: %s); retrying once",
            label, type(exc).__name__, exc,
        )
        summary = retry()
        summary["retries"] = summary.get("retries", 0) + 1
        return summary


def _pool_map(
    jobs: list[tuple[MachineConfig, str, float, int]],
    workers: int,
    timeout: float | None,
    keys: list[str] | None = None,
    on_event: Callable[[CellUpdate], None] | None = None,
    chunksize: int | None = None,
):
    """Yield each job's summary in submission order from a process pool.

    Each cell gets a per-cell ``timeout`` and exactly one retry — in a
    fresh worker, or in-process if the pool died (worker crash); the
    cell itself may still be fine.  Yielding incrementally lets the
    caller persist finished cells before a later one fails.

    ``on_event`` receives a :class:`CellUpdate` per telemetry event:
    ``start`` at submission (the cell is queued or running), ``retry``/
    ``timeout`` on a failed first attempt, ``finish`` once the summary
    is harvested (carrying worker pid, wall time, and retry count).

    Dispatch is *chunked over a warm pool*: jobs are submitted in
    contiguous chunks (:func:`run_cell_chunk`,
    :data:`DISPATCH_CHUNKS_PER_WORKER` chunks per worker) to a shared
    persistent :func:`warm_pool`, so neither process startup nor
    per-cell task overhead is paid per sweep.  A failed chunk falls
    back to retrying its cells one at a time, preserving the per-cell
    one-retry contract; ``chunksize`` overrides the heuristic.

    Chunking coarsens the *first attempt's* timeout to ``timeout``
    times the chunk length (a cell inside a running chunk task cannot
    be interrupted individually); the individual retries are each
    bounded by the per-cell ``timeout`` again, and they run in a
    fresh dedicated pool so a wedged first attempt — which keeps
    occupying its warm-pool worker — cannot starve them.  After a
    sweep that saw any chunk time out, the warm pool is retired so
    the hung worker does not shrink later sweeps' effective width.
    """
    if keys is None:
        keys = [f"{job[1]}|scale{job[2]}|seed{job[3]}" for job in jobs]
    width = min(workers, len(jobs))
    if chunksize is None:
        chunksize = max(
            1, math.ceil(len(jobs) / (width * DISPATCH_CHUNKS_PER_WORKER))
        )
    pool = warm_pool(width)
    chunks = [
        (jobs[i:i + chunksize], keys[i:i + chunksize])
        for i in range(0, len(jobs), chunksize)
    ]
    futures = []
    for chunk_jobs, chunk_keys in chunks:
        futures.append(pool.submit(run_cell_chunk, chunk_jobs))
        if on_event is not None:
            for key in chunk_keys:
                on_event(CellUpdate("start", key))
    timed_out = False
    try:
        for future, (chunk_jobs, chunk_keys) in zip(futures, chunks):
            chunk_timeout = timeout * len(chunk_jobs) if timeout else timeout
            try:
                summaries = future.result(timeout=chunk_timeout)
            except Exception as exc:  # noqa: BLE001 - each cell gets one retry
                if isinstance(exc, (TimeoutError, FuturesTimeoutError)):
                    timed_out = True
                summaries = _retry_chunk(
                    pool, width, chunk_jobs, chunk_keys, exc, timeout, on_event
                )
            for key, summary in zip(chunk_keys, summaries):
                if on_event is not None:
                    on_event(CellUpdate(
                        "finish", key,
                        worker=summary.get("worker"),
                        wall_seconds=summary.get("wall_seconds"),
                        retries=int(summary.get("retries", 0)),
                    ))
                yield summary
    finally:
        if timed_out:
            # A timed-out chunk's first attempt may still be wedged in
            # a pool worker (a running pool task cannot be killed);
            # retiring the pool keeps the hung process from occupying
            # a slot in every later sweep of this width.
            retire_pool(width)


def _retry_chunk(
    pool: ProcessPoolExecutor,
    width: int,
    chunk_jobs: list[tuple],
    chunk_keys: list[str],
    exc: Exception,
    timeout: float | None,
    on_event: Callable[[CellUpdate], None] | None,
) -> list[RunSummary]:
    """Re-run a failed chunk's cells one at a time (one retry each).

    A chunk failure does not say which cell was at fault, so every
    cell in the chunk is retried individually, each under the
    per-cell ``timeout`` — in the pool when it is still alive, in a
    fresh dedicated pool when the chunk *timed out* (the wedged first
    attempt still occupies a warm-pool worker, so a healthy cell's
    retry queued behind it would time out too), or in-process when
    the executor broke (worker death took the pool down; the warm
    pool is retired so the next sweep gets a fresh one).  A cell
    whose individual retry also fails propagates, matching the
    serial path.
    """
    kind = (
        "timeout"
        if isinstance(exc, (TimeoutError, FuturesTimeoutError))
        else "retry"
    )
    retry_pool = pool
    if kind == "timeout":
        retry_pool = ProcessPoolExecutor(
            max_workers=min(width, len(chunk_jobs))
        )
    summaries = []
    try:
        for job, key in zip(chunk_jobs, chunk_keys):
            if on_event is not None:
                on_event(CellUpdate(
                    kind, key, error=f"{type(exc).__name__}: {exc}",
                ))
            log.warning(
                "chunk containing cell %s failed (%s: %s); retrying the cell",
                key, type(exc).__name__, exc,
            )
            try:
                summary = retry_pool.submit(
                    run_cell, *job
                ).result(timeout=timeout)
            except BrokenExecutor:
                if retry_pool is pool:
                    retire_pool(width)
                summary = run_cell(*job)
            summary["retries"] = summary.get("retries", 0) + 1
            summaries.append(summary)
    finally:
        if retry_pool is not pool:
            retry_pool.shutdown(wait=False, cancel_futures=True)
    return summaries


def map_cells(
    jobs: list[tuple[MachineConfig, str, float, int]],
    workers: int | None = None,
    timeout: float | None = DEFAULT_CELL_TIMEOUT,
) -> list[RunSummary]:
    """Run ``(config, benchmark, scale, seed)`` jobs, preserving order.

    With ``workers`` > 1 the jobs fan out over a process pool with a
    per-cell timeout and one retry; otherwise they run serially.  The
    requested width is right-sized by :func:`effective_workers` first —
    a pool that cannot beat the serial path (more workers than cores
    or than jobs) degrades to in-process execution instead of paying
    dispatch overhead for nothing.  The returned list matches ``jobs``
    index for index either way, with identical summaries (modulo
    ``wall_seconds``) — simulations are pure functions of
    (config, benchmark, scale, seed).
    """
    effective = effective_workers(workers, len(jobs))
    if effective <= 1:
        return [run_cell(*job) for job in jobs]
    return list(_pool_map(jobs, effective, timeout))


class MatrixRunner:
    """Runs and caches the benchmark × technique × seed matrix."""

    def __init__(
        self,
        config: MachineConfig | None = None,
        scale: float = 1.0,
        results_dir: str | Path = "results",
        label: str = "matrix",
        verbose: bool = True,
        workers: int | None = None,
        cell_timeout: float | None = DEFAULT_CELL_TIMEOUT,
        provenance: bool = False,
    ):
        self.base_config = config or scaled_config()
        self.scale = scale
        self.results_dir = Path(results_dir)
        self.label = label
        self.verbose = verbose
        self.workers = workers
        self.cell_timeout = cell_timeout
        # Trace every executed cell and attach its miss-provenance
        # summary (cached cells keep whatever they were cached with).
        self.provenance = provenance
        self.fingerprint = config_fingerprint(self.base_config)
        self._cache: dict[str, RunSummary] = {}
        self._cache_path = self.results_dir / f"{label}_scale{scale}.json"
        self.manifest_path = self._cache_path.with_suffix(".manifest.json")
        self.manifest: RunManifest | None = None  # last run_matrix sweep
        self._dirty = False
        self._batch_depth = 0
        self._cache = self._load_cache()

    def __enter__(self) -> "MatrixRunner":
        """Context-manager entry (flushes the cache on exit)."""
        return self

    def __exit__(self, *exc) -> None:
        """Flush any unsaved results on context exit."""
        self.close()

    def close(self) -> None:
        """Persist any unsaved results."""
        if self._dirty:
            self.flush()

    @staticmethod
    def key(benchmark: str, technique: str, seed: int) -> str:
        """Cache key for one (benchmark, technique, seed) cell."""
        return f"{benchmark}|{technique}|{seed}"

    def cell_config(self, technique: str) -> MachineConfig:
        """The complete per-cell machine config for one technique."""
        config = configure_technique(self.base_config, technique)
        return dataclasses.replace(config, latency_jitter=DEFAULT_JITTER)

    # ------------------------------------------------------------------
    # Cache loading
    # ------------------------------------------------------------------

    def _load_cache(self) -> dict[str, RunSummary]:
        """Read the cache file, surviving corruption and config drift.

        * A truncated/corrupt file (interrupted mid-save by an older
          writer, partial copy, ...) is moved aside to ``*.corrupt``
          with a warning and the cache starts empty.
        * A fingerprint mismatch (the file was produced under a
          different :class:`MachineConfig`) moves the file aside to
          ``*.stale`` so its summaries are never mixed with ours.
        * Legacy flat-dict caches (no header) predate fingerprints;
          they are adopted as-is with a warning and upgraded to the
          current format on the next flush.
        """
        if not self._cache_path.exists():
            return {}
        try:
            data = json.loads(self._cache_path.read_text())
            cells, fingerprint = self._split_cache_doc(data)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            quarantine = self._cache_path.with_suffix(".corrupt")
            os.replace(self._cache_path, quarantine)
            log.warning(
                "cache %s is corrupt (%s); moved aside to %s and starting "
                "an empty cache", self._cache_path, exc, quarantine,
            )
            return {}
        if fingerprint is None and cells:
            log.warning(
                "cache %s predates config fingerprints; assuming it matches "
                "the current machine config (flush will record fingerprint "
                "%s)", self._cache_path, self.fingerprint,
            )
            return cells
        if fingerprint is not None and fingerprint != self.fingerprint:
            quarantine = self._cache_path.with_suffix(".stale")
            os.replace(self._cache_path, quarantine)
            log.warning(
                "cache %s was produced under a different machine config "
                "(fingerprint %s != ours %s); moved aside to %s and "
                "starting an empty cache",
                self._cache_path, fingerprint, self.fingerprint, quarantine,
            )
            return {}
        return cells

    @staticmethod
    def _split_cache_doc(data) -> tuple[dict[str, RunSummary], str | None]:
        """Return (cells, fingerprint) for either cache file layout."""
        if isinstance(data, dict) and "cells" in data and "fingerprint" in data:
            return dict(data["cells"]), data["fingerprint"]
        if isinstance(data, dict):  # legacy flat key->summary mapping
            return dict(data), None
        raise json.JSONDecodeError("cache root is not an object", "", 0)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run_one(
        self, benchmark: str, technique: str, seed: int, force: bool = False
    ) -> RunSummary:
        """Run (or fetch from cache) one cell of the matrix."""
        key = self.key(benchmark, technique, seed)
        if not force and key in self._cache:
            return self._cache[key]
        summary = run_cell(
            self.cell_config(technique), benchmark, self.scale, seed,
            self.provenance,
        )
        self._record(benchmark, technique, seed, summary)
        return summary

    def cached(
        self, benchmark: str, technique: str, seed: int
    ) -> RunSummary | None:
        """Cache-only lookup: the cell's summary, or None (never runs).

        This is the service layer's cache-hit probe — a hit means the
        request is served without simulation.
        """
        return self._cache.get(self.key(benchmark, technique, seed))

    def store(
        self, benchmark: str, technique: str, seed: int, summary: RunSummary
    ) -> None:
        """Insert an externally-produced summary (e.g. from a service
        worker's executor) into the cache and persist it."""
        self._record(benchmark, technique, seed, summary)

    def _record(
        self, benchmark: str, technique: str, seed: int, summary: RunSummary
    ) -> None:
        """Insert one finished cell into the cache and log it."""
        self._cache[self.key(benchmark, technique, seed)] = summary
        self._save()
        log.log(
            logging.INFO if self.verbose else logging.DEBUG,
            "ran %9s / %-15s seed=%d cycles=%9.0f ipc=%.2f (%.1fs)",
            benchmark, technique, seed,
            summary["cycles"], summary["ipc"], summary["wall_seconds"],
        )

    def run_matrix(
        self,
        benchmarks: Iterable[str] | None = None,
        techniques: Iterable[str] = ("base",),
        seeds: Iterable[int] = (1, 2, 3),
        workers: int | None = None,
    ) -> dict[str, RunSummary]:
        """Run every requested cell; returns the key->summary mapping.

        ``workers`` (default: the runner's ``workers`` setting) > 1
        fans the uncached cells out over a process pool; the returned
        mapping is in the serial iteration order either way, and every
        summary is identical to what the serial path would produce
        (modulo the ``NONDETERMINISTIC_FIELDS`` provenance — see
        docs/performance.md).

        Every sweep also writes a :class:`RunManifest` next to the
        cache file (``<cache>.manifest.json``) recording, per cell,
        cached-vs-ran status, the producing worker pid, the retry
        count, and the wall time.
        """
        cells = [
            (benchmark, technique, seed)
            for benchmark in (benchmarks or BENCHMARKS)
            for technique in techniques
            for seed in seeds
        ]
        workers = self.workers if workers is None else workers
        cached_before = set(self._cache)
        out: dict[str, RunSummary] = {}
        with self._batch():
            if workers and workers > 1:
                self._run_cells_parallel(cells, workers)
            for benchmark, technique, seed in cells:
                out[self.key(benchmark, technique, seed)] = self.run_one(
                    benchmark, technique, seed
                )
        self.manifest = self._build_manifest(out, cached_before, workers)
        self._save_manifest(self.manifest)
        return out

    def _build_manifest(
        self,
        out: dict[str, RunSummary],
        cached_before: set[str],
        workers: int | None,
    ) -> RunManifest:
        """Per-cell provenance for one finished sweep."""
        manifest = RunManifest(
            label=self.label, scale=self.scale,
            fingerprint=self.fingerprint, workers=workers,
        )
        for key, summary in out.items():
            manifest.record(
                key,
                status="cached" if key in cached_before else "ran",
                worker=summary.get("worker"),
                retries=int(summary.get("retries", 0)),
                wall_seconds=summary.get("wall_seconds"),
                provenance=summary.get("provenance"),
            )
        return manifest

    def _save_manifest(self, manifest: RunManifest) -> None:
        """Persist the sweep manifest next to the cache file."""
        try:
            self.results_dir.mkdir(parents=True, exist_ok=True)
            manifest.save(self.manifest_path)
        except OSError as exc:  # manifest is telemetry, never fatal
            log.warning("could not write manifest %s: %s", self.manifest_path, exc)

    def _run_cells_parallel(
        self, cells: list[tuple[str, str, int]], workers: int
    ) -> None:
        """Fan uncached cells out over a process pool into the cache.

        Harvesting happens inside the enclosing batch, so cells
        completed before a crash/timeout-exhaustion are flushed by the
        batch's ``finally`` — a re-run only re-executes what's missing.
        """
        pending = [
            (benchmark, technique, seed)
            for benchmark, technique, seed in dict.fromkeys(cells)
            if self.key(benchmark, technique, seed) not in self._cache
        ]
        if not pending:
            return
        workers = effective_workers(workers, len(pending))
        if workers <= 1:
            # A pool cannot win here (single core, or a single cell);
            # fall through to the serial path in run_matrix instead of
            # paying dispatch overhead for zero parallelism.
            log.log(
                logging.INFO if self.verbose else logging.DEBUG,
                "right-sized worker pool to serial for %d cell(s) "
                "(cpu_count=%s)", len(pending), os.cpu_count(),
            )
            return
        jobs = [
            (self.cell_config(technique), benchmark, self.scale, seed,
             self.provenance)
            for benchmark, technique, seed in pending
        ]
        log.log(
            logging.INFO if self.verbose else logging.DEBUG,
            "fanning %d cell(s) out over %d warm workers",
            len(pending), workers,
        )
        progress = MatrixProgress(total=len(pending), label=self.label)
        try:
            summaries = _pool_map(
                jobs, workers, self.cell_timeout,
                keys=[self.key(*cell) for cell in pending],
                on_event=progress.update,
            )
            for (benchmark, technique, seed), summary in zip(pending, summaries):
                self._record(benchmark, technique, seed, summary)
        finally:
            progress.close()

    def cells(self, benchmark: str, technique: str, seeds: Iterable[int]) -> list[RunSummary]:
        """Fetch (running if needed) all seeds of one cell."""
        with self._batch():
            return [self.run_one(benchmark, technique, s) for s in seeds]

    @contextmanager
    def _batch(self):
        """Defer cache writes until the enclosing sweep finishes.

        ``_save()`` calls inside the ``with`` block only mark the cache
        dirty; one atomic write happens on exit.  Re-entrant, and the
        exit flush runs even when a run raises, so a partial sweep still
        persists its completed cells.
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0 and self._dirty:
                self.flush()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def _save(self) -> None:
        self._dirty = True
        if self._batch_depth == 0:
            self.flush()

    @contextmanager
    def _flush_lock(self, timeout: float = 10.0):
        """Serialize flushes across processes with a lock file.

        ``O_CREAT|O_EXCL`` is atomic on every POSIX filesystem; a
        holder that died leaves the lock behind, so after ``timeout``
        seconds of polling the lock is broken with a warning rather
        than deadlocking the flush.
        """
        lock_path = self._cache_path.with_suffix(".lock")
        deadline = time.perf_counter() + timeout
        while True:
            try:
                fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                break
            except FileExistsError:
                if time.perf_counter() >= deadline:
                    log.warning(
                        "breaking stale cache lock %s after %.0fs",
                        lock_path, timeout,
                    )
                    try:
                        os.unlink(lock_path)
                    except OSError:
                        pass
                else:
                    time.sleep(0.02)
        try:
            os.write(fd, str(os.getpid()).encode())
            os.close(fd)
            yield
        finally:
            try:
                os.unlink(lock_path)
            except OSError:
                pass

    def flush(self) -> None:
        """Atomically merge-and-write the result cache to disk.

        Under the lock file, the on-disk cache is re-read and unioned
        with the in-memory cells (ours win on conflict — same cell,
        same config, deterministic summary), then the JSON is staged in
        a temp file in the same directory and moved into place with
        :func:`os.replace`.  Two runners sharing one cache path each
        keep the other's completed cells, and an interrupted sweep can
        never leave a truncated cache behind.
        """
        self.results_dir.mkdir(parents=True, exist_ok=True)
        with self._flush_lock():
            self._merge_from_disk()
            payload = json.dumps(
                {
                    "format": CACHE_FORMAT,
                    "fingerprint": self.fingerprint,
                    "cells": self._cache,
                },
                indent=1, sort_keys=True,
            )
            fd, tmp_path = tempfile.mkstemp(
                prefix=self._cache_path.name + ".", suffix=".tmp",
                dir=self.results_dir,
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(payload)
                os.replace(tmp_path, self._cache_path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        self._dirty = False

    def _merge_from_disk(self) -> None:
        """Union cells another runner flushed since we last read."""
        if not self._cache_path.exists():
            return
        try:
            data = json.loads(self._cache_path.read_text())
            cells, fingerprint = self._split_cache_doc(data)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return  # corrupt on disk; our atomic write replaces it
        if fingerprint is not None and fingerprint != self.fingerprint:
            log.warning(
                "cache %s changed fingerprint on disk (%s != ours %s); "
                "not merging its cells", self._cache_path, fingerprint,
                self.fingerprint,
            )
            return
        for key, summary in cells.items():
            self._cache.setdefault(key, summary)
