"""Figure 8 — address transactions for application benchmarks.

For every benchmark and technique, address-network transactions
normalized to the baseline, broken into Read+ReadX (data), Upgrade, and
Validate — the decomposition the paper uses to show how useless
validates inflate plain MESTI's traffic and how E-MESTI's predictor
recovers it.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.experiments.runner import MatrixRunner
from repro.experiments.figure7 import DEFAULT_SEEDS, FIGURE7_TECHNIQUES
from repro.workloads.registry import BENCHMARKS


def transaction_breakdown(
    runner: MatrixRunner, benchmarks=None,
    techniques=("base",) + FIGURE7_TECHNIQUES, seeds=DEFAULT_SEEDS,
) -> dict[str, dict[str, dict[str, float]]]:
    """Mean per-kind transaction counts, normalized to baseline total."""
    out: dict[str, dict[str, dict[str, float]]] = {}
    for benchmark in benchmarks or BENCHMARKS:
        base_cells = runner.cells(benchmark, "base", seeds)
        base_total = sum(c["txn_total"] for c in base_cells) / len(base_cells)
        out[benchmark] = {}
        for technique in techniques:
            cells = runner.cells(benchmark, technique, seeds)
            mean = lambda k: sum(c[k] for c in cells) / len(cells)
            out[benchmark][technique] = {
                "data": (mean("txn_read") + mean("txn_readx")) / base_total,
                "upgrade": mean("txn_upgrade") / base_total,
                "validate": mean("txn_validate") / base_total,
                "writeback": mean("txn_writeback") / base_total,
                "total": mean("txn_total") / base_total,
            }
    return out


def render(results: dict[str, dict[str, dict[str, float]]]) -> str:
    """Render collected results as a text table."""
    headers = ["Benchmark", "Technique", "Read/ReadX", "Upgrade", "Validate",
               "Writeback", "Total"]
    rows = []
    for benchmark, per_tech in results.items():
        for technique, parts in per_tech.items():
            rows.append([
                benchmark, technique,
                round(parts["data"], 3), round(parts["upgrade"], 3),
                round(parts["validate"], 3), round(parts["writeback"], 3),
                round(parts["total"], 3),
            ])
    return render_table(
        headers, rows,
        title="Figure 8: Address transactions normalized to Baseline",
    )


def run(scale: float = 1.0, seeds=DEFAULT_SEEDS, results_dir="results",
        benchmarks=None, verbose=True, workers: int | None = None) -> str:
    """Run the experiment and return the rendered text.

    ``workers`` > 1 prefetches the uncached matrix cells in parallel.
    """
    runner = MatrixRunner(scale=scale, results_dir=results_dir, verbose=verbose,
                          workers=workers)
    if workers and workers > 1:
        runner.run_matrix(benchmarks, ("base",) + FIGURE7_TECHNIQUES, seeds)
    return render(transaction_breakdown(runner, benchmarks, seeds=seeds))


if __name__ == "__main__":
    print(run())
