"""Table 2 — basic application benchmark characteristics.

Reproduces the columns of the paper's Table 2 for the synthetic
workload models: instructions (micro-ops × the benchmark's PowerPC
cracking ratio), micro-ops, loads, stores, update-silent stores,
temporally silent stores (those capturable with MESTI), and aggregate
IPC across all processors.

The paper measured counts on the baseline machine with MESTI's
detection capturing the TS column; we run the ``mesti`` technique for
the store-silence columns (detection is count-identical on the
baseline, which also tallies ``ts_stores``) and the ``base`` technique
for IPC.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.experiments.runner import MatrixRunner
from repro.workloads.registry import BENCHMARKS

HEADERS = [
    "Program",
    "Instr",
    "Micro-Ops",
    "Loads",
    "Stores",
    "US Stores",
    "TS Stores",
    "IPC",
]


def collect(runner: MatrixRunner, seeds=(1,)) -> list[list]:
    """Build Table 2 rows from the run matrix."""
    rows = []
    for name, cls in BENCHMARKS.items():
        base = runner.cells(name, "base", seeds)[0]
        micro_ops = base["committed"]
        stores = base["stores"] + base["stcx"]
        rows.append(
            [
                name,
                int(micro_ops * cls.cracking_ratio),
                micro_ops,
                base["loads"] + base["larx"],
                stores,
                base["us_stores"],
                base["ts_stores"],
                round(base["ipc"], 3),
            ]
        )
    return rows


def run(scale: float = 1.0, seeds=(1,), results_dir="results", verbose=True,
        workers: int | None = None) -> str:
    """Run the experiment and return the rendered table.

    ``workers`` > 1 prefetches the uncached baseline cells in parallel.
    """
    runner = MatrixRunner(scale=scale, results_dir=results_dir, verbose=verbose,
                          workers=workers)
    if workers and workers > 1:
        runner.run_matrix(None, ("base",), seeds)
    rows = collect(runner, seeds)
    return render_table(
        HEADERS, rows,
        title="Table 2: Basic Application Benchmark Characteristics "
              f"(synthetic models, scale={scale})",
    )


if __name__ == "__main__":
    print(run())
