"""Processor-count scaling (§5.2's abbreviated 8/16-processor studies).

Runs selected benchmarks on 4-, 8-, and 16-processor systems under the
baseline and E-MESTI.  Communication misses grow with sharer count, so
validate leverage typically grows with the machine — while the address
network's fixed occupancy makes useless traffic costlier, which is why
the paper positions E-MESTI for "coherence bandwidth-limited
environments".

The (benchmark × cpu-count × technique) cells are independent
simulations, so with ``workers`` > 1 they fan out over a process pool
via :func:`~repro.experiments.runner.map_cells` — the 16-processor
cells dominate the sweep, and they parallelize perfectly.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.report import render_table
from repro.common.config import scaled_config
from repro.experiments.runner import DEFAULT_JITTER, map_cells
from repro.system.techniques import configure_technique

HEADERS = [
    "Benchmark",
    "CPUs",
    "Base cycles",
    "Comm misses",
    "E-MESTI speedup",
    "Validates",
]


def collect(scale=0.4, seed=1, benchmarks=("tpc-b", "radiosity"),
            cpu_counts=(4, 8, 16), verbose=True, workers=None):
    """Run the experiment and return its result rows."""
    points = [(b, n) for b in benchmarks for n in cpu_counts]
    jobs = []
    for benchmark, n in points:
        for technique in ("base", "emesti"):
            cfg = dataclasses.replace(
                configure_technique(scaled_config(n_procs=n), technique),
                latency_jitter=DEFAULT_JITTER,
            )
            jobs.append((cfg, benchmark, scale, seed))
    summaries = map_cells(jobs, workers)
    rows = []
    for i, (benchmark, n) in enumerate(points):
        base, emesti = summaries[2 * i], summaries[2 * i + 1]
        rows.append([
            benchmark, n, base["cycles"], base["miss_comm"],
            round(base["cycles"] / emesti["cycles"], 3),
            emesti["txn_validate"],
        ])
        if verbose:
            print(f"  scaling {benchmark} n={n} done", flush=True)
    return rows


def run(scale=0.4, seed=1, benchmarks=("tpc-b", "radiosity"),
        cpu_counts=(4, 8, 16), verbose=True, workers: int | None = None) -> str:
    """Run the experiment and return the rendered text."""
    rows = collect(scale, seed, benchmarks, cpu_counts, verbose, workers)
    return render_table(HEADERS, rows, title="Processor-count scaling (§5.2)")


if __name__ == "__main__":
    print(run())
