"""Processor-count scaling (§5.2's abbreviated 8/16-processor studies).

Runs selected benchmarks on 4-, 8-, and 16-processor systems under the
baseline and E-MESTI.  Communication misses grow with sharer count, so
validate leverage typically grows with the machine — while the address
network's fixed occupancy makes useless traffic costlier, which is why
the paper positions E-MESTI for "coherence bandwidth-limited
environments".
"""

from __future__ import annotations

import dataclasses

from repro.analysis.report import render_table
from repro.common.config import scaled_config
from repro.experiments.runner import DEFAULT_JITTER, summarize
from repro.system.system import System
from repro.system.techniques import configure_technique
from repro.workloads.registry import get_benchmark

HEADERS = [
    "Benchmark",
    "CPUs",
    "Base cycles",
    "Comm misses",
    "E-MESTI speedup",
    "Validates",
]


def collect(scale=0.4, seed=1, benchmarks=("tpc-b", "radiosity"),
            cpu_counts=(4, 8, 16), verbose=True):
    """Run the experiment and return its result rows."""
    rows = []
    for benchmark in benchmarks:
        for n in cpu_counts:
            base_cfg = dataclasses.replace(
                configure_technique(scaled_config(n_procs=n), "base"),
                latency_jitter=DEFAULT_JITTER,
            )
            base = summarize(
                System(base_cfg, get_benchmark(benchmark, scale=scale), seed=seed)
                .run(max_cycles=500_000_000, max_events=300_000_000)
            )
            em_cfg = dataclasses.replace(
                configure_technique(scaled_config(n_procs=n), "emesti"),
                latency_jitter=DEFAULT_JITTER,
            )
            emesti = summarize(
                System(em_cfg, get_benchmark(benchmark, scale=scale), seed=seed)
                .run(max_cycles=500_000_000, max_events=300_000_000)
            )
            rows.append([
                benchmark, n, base["cycles"], base["miss_comm"],
                round(base["cycles"] / emesti["cycles"], 3),
                emesti["txn_validate"],
            ])
            if verbose:
                print(f"  scaling {benchmark} n={n} done", flush=True)
    return rows


def run(scale=0.4, seed=1, benchmarks=("tpc-b", "radiosity"),
        cpu_counts=(4, 8, 16), verbose=True) -> str:
    """Run the experiment and return the rendered text."""
    rows = collect(scale, seed, benchmarks, cpu_counts, verbose)
    return render_table(HEADERS, rows, title="Processor-count scaling (§5.2)")


if __name__ == "__main__":
    print(run())
