"""§5.3.1 — SLE elision-idiom statistics.

The paper reports that, for commercial workloads, only ~25% of
larx/stcx acquire idioms attempt elision (the confidence predictor
filters the rest), and ~70% of attempts never encounter a release —
netting ~8% successfully elided idioms.  This harness reproduces that
breakdown per benchmark from the ``sle`` column of the run matrix.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.experiments.runner import MatrixRunner
from repro.workloads.registry import BENCHMARKS

HEADERS = [
    "Benchmark",
    "Candidates",
    "Attempts",
    "Attempt%",
    "Successes",
    "Success/Attempt%",
    "NoRelease*",  # incl. nested-control aborts: no release was found
    "Conflict",
    "Serialize",
    "Fallbacks",
]


def collect(runner: MatrixRunner, benchmarks=None, seeds=(1,)) -> list[list]:
    """Run the experiment and return its result rows."""
    rows = []
    for benchmark in benchmarks or BENCHMARKS:
        cells = runner.cells(benchmark, "sle", seeds)
        total = lambda key: sum(c[key] for c in cells)
        candidates = total("sle_candidates")
        attempts = total("sle_attempts")
        successes = total("sle_successes")
        rows.append([
            benchmark,
            candidates,
            attempts,
            round(100 * attempts / candidates, 1) if candidates else 0,
            successes,
            round(100 * successes / attempts, 1) if attempts else 0,
            # Regions aborted without ever seeing a release — whether
            # they overflowed the window or hit a control barrier
            # first, the idiom was imprecise (the paper's "never
            # encounter a release" bucket).
            total("sle_fail_no_release") + total("sle_fail_nested"),
            total("sle_fail_conflict"),
            total("sle_fail_serialize"),
            total("sle_fallback_acquisitions"),
        ])
    return rows


def run(scale: float = 1.0, seeds=(1,), results_dir="results", verbose=True,
        workers: int | None = None) -> str:
    """Run the experiment and return the rendered text.

    ``workers`` > 1 prefetches the uncached ``sle`` cells in parallel.
    """
    runner = MatrixRunner(scale=scale, results_dir=results_dir, verbose=verbose,
                          workers=workers)
    if workers and workers > 1:
        runner.run_matrix(None, ("sle",), seeds)
    rows = collect(runner, seeds=seeds)
    return render_table(HEADERS, rows, title="SLE elision idiom statistics (§5.3.1)")


if __name__ == "__main__":
    print(run())
