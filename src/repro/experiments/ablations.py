"""Ablations of the design choices DESIGN.md calls out.

* **Validate policies** (§2.2–2.4): always vs snoop-aware vs the
  useful-validate predictor, on a validate-hostile workload (specjbb)
  and a validate-friendly one (tpc-b).
* **SLE confidence prediction** (§4.2.3): enhanced predictor vs the
  simple restart threshold (the paper reports 5–10% commercial
  slowdowns without it).
* **SLE isync safety check** (§4.2.2): naive handling fails every
  kernel critical section.
* **SLE ROB threshold**: the in-core buffering bound.
* **Update-silent store squashing** ([21]) on top of the baseline.

Each ablation builds its full (config × benchmark) job list up front
and dispatches through :func:`~repro.experiments.runner.map_cells`, so
``workers`` > 1 runs the sweep on a process pool with results
identical to the serial order.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.report import render_table
from repro.common.config import MachineConfig, ValidatePolicy, scaled_config
from repro.experiments.runner import DEFAULT_JITTER, map_cells
from repro.system.techniques import configure_technique


def _jittered(config: MachineConfig) -> MachineConfig:
    return dataclasses.replace(config, latency_jitter=DEFAULT_JITTER)


def _sweep(specs, scale: float, seed: int, workers: int | None):
    """Run ``(tag, config)`` specs; returns {tag: summary} in job order."""
    jobs = [
        (_jittered(config), benchmark, scale, seed)
        for (benchmark, _label), config in specs
    ]
    summaries = map_cells(jobs, workers)
    return {tag: summary for (tag, _), summary in zip(specs, summaries)}


def validate_policy_ablation(scale=1.0, seed=1, benchmarks=("specjbb", "tpc-b"),
                             verbose=True, workers=None) -> str:
    """Validate policy sweep on MESTI."""
    policies = [
        (ValidatePolicy.ALWAYS, "mesti"),
        (ValidatePolicy.SNOOP_AWARE, "mesti"),
        (ValidatePolicy.PREDICTOR, "emesti"),
    ]
    specs = []
    for benchmark in benchmarks:
        specs.append(((benchmark, "base"),
                      configure_technique(scaled_config(), "base")))
        for policy, technique in policies:
            cfg = configure_technique(scaled_config(), technique)
            cfg = cfg.with_protocol(validate_policy=policy,
                                    enhanced=(policy is ValidatePolicy.PREDICTOR))
            specs.append(((benchmark, policy.value), cfg))
    results = _sweep(specs, scale, seed, workers)
    rows = []
    for benchmark in benchmarks:
        base = results[(benchmark, "base")]
        for policy, _technique in policies:
            summary = results[(benchmark, policy.value)]
            rows.append([
                benchmark,
                policy.value,
                round(base["cycles"] / summary["cycles"], 3),
                summary["txn_validate"],
                round(summary["txn_total"] / base["txn_total"], 3),
            ])
            if verbose:
                print(f"  validate-ablation {benchmark}/{policy.value} done",
                      flush=True)
    return render_table(
        ["Benchmark", "Policy", "Speedup", "Validates", "Txn vs base"],
        rows, title="Ablation: validate broadcast policy",
    )


def sle_predictor_ablation(scale=1.0, seed=1, benchmarks=("tpc-b", "raytrace"),
                           verbose=True, workers=None) -> str:
    """Enhanced elision confidence vs simple restart threshold."""
    variants = [
        ("enhanced-confidence", {"confidence_enabled": True}),
        ("simple-threshold", {"confidence_enabled": False}),
        ("naive-isync", {"isync_safety_check": False}),
        ("checkpoint-mode", {"checkpoint_mode": True}),
    ]
    specs = []
    for benchmark in benchmarks:
        specs.append(((benchmark, "base"),
                      configure_technique(scaled_config(), "base")))
        for label, kw in variants:
            specs.append(((benchmark, label),
                          configure_technique(scaled_config(), "sle").with_sle(**kw)))
    results = _sweep(specs, scale, seed, workers)
    rows = []
    for benchmark in benchmarks:
        base = results[(benchmark, "base")]
        for label, _kw in variants:
            summary = results[(benchmark, label)]
            rows.append([
                benchmark, label,
                round(base["cycles"] / summary["cycles"], 3),
                summary["sle_attempts"], summary["sle_successes"],
                summary["sle_fail_no_release"] + summary["sle_fail_serialize"],
            ])
            if verbose:
                print(f"  sle-ablation {benchmark}/{label} done", flush=True)
    return render_table(
        ["Benchmark", "SLE variant", "Speedup", "Attempts", "Successes", "Hard fails"],
        rows, title="Ablation: SLE prediction and isync handling (§4.2.2–4.2.3)",
    )


def sle_rob_threshold_ablation(scale=1.0, seed=1, benchmark="raytrace",
                               thresholds=(0.25, 0.5, 0.75), verbose=True,
                               workers=None) -> str:
    """Critical-section buffering bound sweep."""
    specs = [((benchmark, "base"), configure_technique(scaled_config(), "base"))]
    for threshold in thresholds:
        specs.append((
            (benchmark, threshold),
            configure_technique(scaled_config(), "sle").with_sle(
                rob_threshold=threshold
            ),
        ))
    results = _sweep(specs, scale, seed, workers)
    base = results[(benchmark, "base")]
    rows = []
    for threshold in thresholds:
        summary = results[(benchmark, threshold)]
        rows.append([
            threshold,
            round(base["cycles"] / summary["cycles"], 3),
            summary["sle_successes"],
            summary["sle_fail_no_release"],
        ])
        if verbose:
            print(f"  rob-ablation {threshold} done", flush=True)
    return render_table(
        ["ROB threshold", "Speedup", "Successes", "No-release aborts"],
        rows, title=f"Ablation: SLE ROB threshold ({benchmark})",
    )


def silent_store_ablation(scale=1.0, seed=1, benchmarks=("ocean", "tpc-b"),
                          verbose=True, workers=None) -> str:
    """Update-silent store squashing on the baseline protocol."""
    specs = []
    for benchmark in benchmarks:
        specs.append(((benchmark, "base"),
                      configure_technique(scaled_config(), "base")))
        specs.append(((benchmark, "squash"),
                      scaled_config().with_protocol(squash_silent_stores=True)))
    results = _sweep(specs, scale, seed, workers)
    rows = []
    for benchmark in benchmarks:
        base = results[(benchmark, "base")]
        summary = results[(benchmark, "squash")]
        rows.append([
            benchmark,
            round(base["cycles"] / summary["cycles"], 3),
            summary["us_stores"],
            round(summary["txn_upgrade"] / max(1, base["txn_upgrade"]), 3),
        ])
        if verbose:
            print(f"  silent-ablation {benchmark} done", flush=True)
    return render_table(
        ["Benchmark", "Speedup", "US stores", "Upgrades vs base"],
        rows, title="Ablation: update-silent store squashing [21]",
    )


def run(scale: float = 1.0, seed: int = 1, verbose=True,
        workers: int | None = None) -> str:
    """Run the experiment and return the rendered text."""
    parts = [
        validate_policy_ablation(scale, seed, verbose=verbose, workers=workers),
        sle_predictor_ablation(scale, seed, verbose=verbose, workers=workers),
        sle_rob_threshold_ablation(scale, seed, verbose=verbose, workers=workers),
        silent_store_ablation(scale, seed, verbose=verbose, workers=workers),
    ]
    return "\n\n".join(parts)


if __name__ == "__main__":
    print(run())
