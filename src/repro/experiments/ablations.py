"""Ablations of the design choices DESIGN.md calls out.

* **Validate policies** (§2.2–2.4): always vs snoop-aware vs the
  useful-validate predictor, on a validate-hostile workload (specjbb)
  and a validate-friendly one (tpc-b).
* **SLE confidence prediction** (§4.2.3): enhanced predictor vs the
  simple restart threshold (the paper reports 5–10% commercial
  slowdowns without it).
* **SLE isync safety check** (§4.2.2): naive handling fails every
  kernel critical section.
* **SLE ROB threshold**: the in-core buffering bound.
* **Update-silent store squashing** ([21]) on top of the baseline.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.report import render_table
from repro.common.config import ValidatePolicy, scaled_config
from repro.experiments.runner import DEFAULT_JITTER, summarize
from repro.system.system import System
from repro.system.techniques import configure_technique
from repro.workloads.registry import get_benchmark


def _run(config, benchmark: str, scale: float, seed: int):
    config = dataclasses.replace(config, latency_jitter=DEFAULT_JITTER)
    workload = get_benchmark(benchmark, scale=scale)
    result = System(config, workload, seed=seed).run(
        max_cycles=500_000_000, max_events=300_000_000
    )
    return summarize(result)


def validate_policy_ablation(scale=1.0, seed=1, benchmarks=("specjbb", "tpc-b"),
                             verbose=True) -> str:
    """Validate policy sweep on MESTI."""
    rows = []
    for benchmark in benchmarks:
        base = _run(configure_technique(scaled_config(), "base"), benchmark, scale, seed)
        for policy, technique in [
            (ValidatePolicy.ALWAYS, "mesti"),
            (ValidatePolicy.SNOOP_AWARE, "mesti"),
            (ValidatePolicy.PREDICTOR, "emesti"),
        ]:
            cfg = configure_technique(scaled_config(), technique)
            cfg = cfg.with_protocol(validate_policy=policy,
                                    enhanced=(policy is ValidatePolicy.PREDICTOR))
            summary = _run(cfg, benchmark, scale, seed)
            rows.append([
                benchmark,
                policy.value,
                round(base["cycles"] / summary["cycles"], 3),
                summary["txn_validate"],
                round(summary["txn_total"] / base["txn_total"], 3),
            ])
            if verbose:
                print(f"  validate-ablation {benchmark}/{policy.value} done", flush=True)
    return render_table(
        ["Benchmark", "Policy", "Speedup", "Validates", "Txn vs base"],
        rows, title="Ablation: validate broadcast policy",
    )


def sle_predictor_ablation(scale=1.0, seed=1, benchmarks=("tpc-b", "raytrace"),
                           verbose=True) -> str:
    """Enhanced elision confidence vs simple restart threshold."""
    rows = []
    for benchmark in benchmarks:
        base = _run(configure_technique(scaled_config(), "base"), benchmark, scale, seed)
        for label, kw in [
            ("enhanced-confidence", {"confidence_enabled": True}),
            ("simple-threshold", {"confidence_enabled": False}),
            ("naive-isync", {"isync_safety_check": False}),
            ("checkpoint-mode", {"checkpoint_mode": True}),
        ]:
            cfg = configure_technique(scaled_config(), "sle").with_sle(**kw)
            summary = _run(cfg, benchmark, scale, seed)
            rows.append([
                benchmark, label,
                round(base["cycles"] / summary["cycles"], 3),
                summary["sle_attempts"], summary["sle_successes"],
                summary["sle_fail_no_release"] + summary["sle_fail_serialize"],
            ])
            if verbose:
                print(f"  sle-ablation {benchmark}/{label} done", flush=True)
    return render_table(
        ["Benchmark", "SLE variant", "Speedup", "Attempts", "Successes", "Hard fails"],
        rows, title="Ablation: SLE prediction and isync handling (§4.2.2–4.2.3)",
    )


def sle_rob_threshold_ablation(scale=1.0, seed=1, benchmark="raytrace",
                               thresholds=(0.25, 0.5, 0.75), verbose=True) -> str:
    """Critical-section buffering bound sweep."""
    rows = []
    base = _run(configure_technique(scaled_config(), "base"), benchmark, scale, seed)
    for threshold in thresholds:
        cfg = configure_technique(scaled_config(), "sle").with_sle(rob_threshold=threshold)
        summary = _run(cfg, benchmark, scale, seed)
        rows.append([
            threshold,
            round(base["cycles"] / summary["cycles"], 3),
            summary["sle_successes"],
            summary["sle_fail_no_release"],
        ])
        if verbose:
            print(f"  rob-ablation {threshold} done", flush=True)
    return render_table(
        ["ROB threshold", "Speedup", "Successes", "No-release aborts"],
        rows, title=f"Ablation: SLE ROB threshold ({benchmark})",
    )


def silent_store_ablation(scale=1.0, seed=1, benchmarks=("ocean", "tpc-b"),
                          verbose=True) -> str:
    """Update-silent store squashing on the baseline protocol."""
    rows = []
    for benchmark in benchmarks:
        base = _run(configure_technique(scaled_config(), "base"), benchmark, scale, seed)
        cfg = scaled_config().with_protocol(squash_silent_stores=True)
        summary = _run(cfg, benchmark, scale, seed)
        rows.append([
            benchmark,
            round(base["cycles"] / summary["cycles"], 3),
            summary["us_stores"],
            round(summary["txn_upgrade"] / max(1, base["txn_upgrade"]), 3),
        ])
        if verbose:
            print(f"  silent-ablation {benchmark} done", flush=True)
    return render_table(
        ["Benchmark", "Speedup", "US stores", "Upgrades vs base"],
        rows, title="Ablation: update-silent store squashing [21]",
    )


def run(scale: float = 1.0, seed: int = 1, verbose=True) -> str:
    """Run the experiment and return the rendered text."""
    parts = [
        validate_policy_ablation(scale, seed, verbose=verbose),
        sle_predictor_ablation(scale, seed, verbose=verbose),
        sle_rob_threshold_ablation(scale, seed, verbose=verbose),
        silent_store_ablation(scale, seed, verbose=verbose),
    ]
    return "\n\n".join(parts)


if __name__ == "__main__":
    print(run())
