"""Figure 6 — communication misses vs stale-storage capacity.

Reproduces the paper's study of the explicit stale-storage mechanism
(Figure 5): an 8 KB 4-way L1-D whose temporal-silence detection uses
(a) only the inclusive hierarchy (no explicit stale storage), (b) a
32 KB stale store, (c) a 128 KB stale store, and (d) ideal (full) stale
storage — all under MESTI, reporting communication misses per
benchmark.  Both finite capacities should land close to ideal, which is
the result that justifies the paper's "all studies assume perfect
temporal silence detection".
"""

from __future__ import annotations

import dataclasses

from repro.analysis.report import render_table
from repro.common.config import (
    CacheConfig,
    MachineConfig,
    StaleDetectionMode,
    scaled_config,
)
from repro.experiments.runner import summarize
from repro.system.system import System
from repro.system.techniques import configure_technique
from repro.workloads.registry import BENCHMARKS, get_benchmark

#: The sweep: label -> (mode, stale storage bytes).  The paper pairs an
#: 8 KB L1-D with 32 KB / 128 KB stale stores (4x / 16x the L1); our
#: machine scales capacities down, so the Figure 6 L1 is 2 KB and the
#: stale stores keep the same 4x / 16x ratios.
CONFIGS = (
    ("inclusive-only", StaleDetectionMode.EXPLICIT, 0),
    ("4x stale (32KB)", StaleDetectionMode.EXPLICIT, 8 * 1024),
    ("16x stale (128KB)", StaleDetectionMode.EXPLICIT, 32 * 1024),
    ("ideal", StaleDetectionMode.IDEAL, 0),
)


def figure6_machine(base: MachineConfig | None = None) -> MachineConfig:
    """The Figure 6 machine: deliberately small L1-D, MESTI."""
    cfg = base or scaled_config()
    cfg = dataclasses.replace(cfg, l1=CacheConfig(2 * 1024, 4, latency=2))
    return configure_technique(cfg, "mesti")


def sweep(scale: float = 1.0, seed: int = 1, benchmarks=None, verbose=True):
    """Run the capacity sweep; returns {benchmark: {label: comm misses}}."""
    out: dict[str, dict[str, float]] = {}
    for benchmark in benchmarks or BENCHMARKS:
        out[benchmark] = {}
        for label, mode, stale_bytes in CONFIGS:
            cfg = figure6_machine()
            cfg = cfg.with_protocol(
                stale_detection=mode, stale_storage_bytes=stale_bytes
            )
            workload = get_benchmark(benchmark, scale=scale)
            result = System(cfg, workload, seed=seed).run(
                max_cycles=500_000_000, max_events=300_000_000
            )
            summary = summarize(result)
            out[benchmark][label] = summary["miss_comm"]
            if verbose:
                print(
                    f"  figure6 {benchmark:>9s} {label:<14s} "
                    f"comm={summary['miss_comm']:.0f} "
                    f"validates={summary['txn_validate']:.0f}",
                    flush=True,
                )
    return out


def render(results: dict[str, dict[str, float]]) -> str:
    """Render collected results as a text table."""
    labels = [label for label, _, _ in CONFIGS]
    headers = ["Benchmark", *labels, "4x/ideal"]
    rows = []
    for benchmark, per_cfg in results.items():
        ideal = per_cfg["ideal"]
        ratio = per_cfg[labels[1]] / ideal if ideal else 1.0
        rows.append([benchmark, *(per_cfg[label] for label in labels), round(ratio, 3)])
    return render_table(
        headers, rows,
        title="Figure 6: Communication misses vs stale-storage capacity "
              "(small 4-way L1-D, MESTI)",
    )


def run(scale: float = 1.0, seed: int = 1, benchmarks=None, verbose=True) -> str:
    """Run the experiment and return the rendered text."""
    return render(sweep(scale=scale, seed=seed, benchmarks=benchmarks, verbose=verbose))


if __name__ == "__main__":
    print(run())
