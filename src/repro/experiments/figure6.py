"""Figure 6 — communication misses vs stale-storage capacity.

Reproduces the paper's study of the explicit stale-storage mechanism
(Figure 5): an 8 KB 4-way L1-D whose temporal-silence detection uses
(a) only the inclusive hierarchy (no explicit stale storage), (b) a
32 KB stale store, (c) a 128 KB stale store, and (d) ideal (full) stale
storage — all under MESTI, reporting communication misses per
benchmark.  Both finite capacities should land close to ideal, which is
the result that justifies the paper's "all studies assume perfect
temporal silence detection".
"""

from __future__ import annotations

import dataclasses

from repro.analysis.report import render_table
from repro.common.config import (
    CacheConfig,
    MachineConfig,
    StaleDetectionMode,
    scaled_config,
)
from repro.experiments.runner import map_cells
from repro.system.techniques import configure_technique
from repro.workloads.registry import BENCHMARKS

#: The sweep: label -> (mode, stale storage bytes).  The paper pairs an
#: 8 KB L1-D with 32 KB / 128 KB stale stores (4x / 16x the L1); our
#: machine scales capacities down, so the Figure 6 L1 is 2 KB and the
#: stale stores keep the same 4x / 16x ratios.
CONFIGS = (
    ("inclusive-only", StaleDetectionMode.EXPLICIT, 0),
    ("4x stale (32KB)", StaleDetectionMode.EXPLICIT, 8 * 1024),
    ("16x stale (128KB)", StaleDetectionMode.EXPLICIT, 32 * 1024),
    ("ideal", StaleDetectionMode.IDEAL, 0),
)


def figure6_machine(base: MachineConfig | None = None) -> MachineConfig:
    """The Figure 6 machine: deliberately small L1-D, MESTI."""
    cfg = base or scaled_config()
    cfg = dataclasses.replace(cfg, l1=CacheConfig(2 * 1024, 4, latency=2))
    return configure_technique(cfg, "mesti")


def sweep(scale: float = 1.0, seed: int = 1, benchmarks=None, verbose=True,
          workers: int | None = None):
    """Run the capacity sweep; returns {benchmark: {label: comm misses}}.

    ``workers`` > 1 fans the (benchmark × capacity) cells out over a
    process pool; the returned numbers are identical to a serial sweep.
    """
    tags = []
    jobs = []
    for benchmark in benchmarks or BENCHMARKS:
        for label, mode, stale_bytes in CONFIGS:
            cfg = figure6_machine().with_protocol(
                stale_detection=mode, stale_storage_bytes=stale_bytes
            )
            tags.append((benchmark, label))
            jobs.append((cfg, benchmark, scale, seed))
    out: dict[str, dict[str, float]] = {}
    for (benchmark, label), summary in zip(tags, map_cells(jobs, workers)):
        out.setdefault(benchmark, {})[label] = summary["miss_comm"]
        if verbose:
            print(
                f"  figure6 {benchmark:>9s} {label:<14s} "
                f"comm={summary['miss_comm']:.0f} "
                f"validates={summary['txn_validate']:.0f}",
                flush=True,
            )
    return out


def render(results: dict[str, dict[str, float]]) -> str:
    """Render collected results as a text table."""
    labels = [label for label, _, _ in CONFIGS]
    headers = ["Benchmark", *labels, "4x/ideal"]
    rows = []
    for benchmark, per_cfg in results.items():
        ideal = per_cfg["ideal"]
        ratio = per_cfg[labels[1]] / ideal if ideal else 1.0
        rows.append([benchmark, *(per_cfg[label] for label in labels), round(ratio, 3)])
    return render_table(
        headers, rows,
        title="Figure 6: Communication misses vs stale-storage capacity "
              "(small 4-way L1-D, MESTI)",
    )


def run(scale: float = 1.0, seed: int = 1, benchmarks=None, verbose=True,
        workers: int | None = None) -> str:
    """Run the experiment and return the rendered text."""
    return render(sweep(scale=scale, seed=seed, benchmarks=benchmarks,
                        verbose=verbose, workers=workers))


if __name__ == "__main__":
    print(run())
