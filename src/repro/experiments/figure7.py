"""Figure 7 — performance comparison of application benchmarks.

For every benchmark and every technique combination, speedup over the
MOESI baseline (runtime ratio, paired per seed) with 95% confidence
intervals from the Alameldeen–Wood style perturbation runs.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.analysis.variability import ConfidenceInterval, speedup_ci
from repro.experiments.runner import MatrixRunner
from repro.system.techniques import ALL_TECHNIQUES
from repro.workloads.registry import BENCHMARKS

DEFAULT_SEEDS = (1, 2, 3)

#: Techniques shown in the figure (everything except the baseline).
FIGURE7_TECHNIQUES = tuple(t for t in ALL_TECHNIQUES if t != "base")


def speedups(
    runner: MatrixRunner,
    benchmarks=None,
    techniques=FIGURE7_TECHNIQUES,
    seeds=DEFAULT_SEEDS,
) -> dict[str, dict[str, ConfidenceInterval]]:
    """Speedup CI per (benchmark, technique), paired by seed."""
    out: dict[str, dict[str, ConfidenceInterval]] = {}
    for benchmark in benchmarks or BENCHMARKS:
        base_cycles = [c["cycles"] for c in runner.cells(benchmark, "base", seeds)]
        out[benchmark] = {}
        for technique in techniques:
            cyc = [c["cycles"] for c in runner.cells(benchmark, technique, seeds)]
            out[benchmark][technique] = speedup_ci(base_cycles, cyc)
    return out


def render(results: dict[str, dict[str, ConfidenceInterval]]) -> str:
    """Render the speedup matrix as a table of 'speedup ± ci'."""
    techniques = list(next(iter(results.values())).keys())
    headers = ["Benchmark", *techniques]
    rows = []
    for benchmark, per_tech in results.items():
        row = [benchmark]
        for technique in techniques:
            ci = per_tech[technique]
            row.append(f"{ci.mean:.3f}±{ci.half_width:.3f}")
        rows.append(row)
    return render_table(
        headers, rows,
        title="Figure 7: Speedup over baseline (runtime ratio, 95% CI)",
    )


def render_chart(results: dict[str, dict[str, ConfidenceInterval]]) -> str:
    """Render the speedups as grouped horizontal bars (the paper's
    figure layout: one group per benchmark, one bar per technique)."""
    from repro.analysis.report import render_grouped_bars

    benchmarks = list(results)
    techniques = list(next(iter(results.values())).keys())
    series = {
        tech: [results[b][tech].mean for b in benchmarks]
        for tech in techniques
    }
    return (
        "Figure 7 (bars): speedup over baseline = 1.000\n\n"
        + render_grouped_bars(benchmarks, series, unit="x", baseline=1.0)
    )


def run(scale: float = 1.0, seeds=DEFAULT_SEEDS, results_dir="results",
        benchmarks=None, techniques=FIGURE7_TECHNIQUES, verbose=True,
        chart: bool = False, claims: bool = True,
        workers: int | None = None) -> str:
    """Run the full matrix and return the rendered figure.

    ``workers`` > 1 fans the uncached cells (baseline included) out
    over a process pool first; results are identical to the serial run.
    With ``claims`` (and a full benchmark/technique matrix), the
    paper's qualitative findings are evaluated against the measured
    speedups and reported claim by claim.
    """
    runner = MatrixRunner(scale=scale, results_dir=results_dir, verbose=verbose,
                          workers=workers)
    if workers and workers > 1:
        runner.run_matrix(benchmarks, ("base", *techniques), seeds)
    results = speedups(runner, benchmarks, techniques, seeds)
    out = render(results)
    if chart:
        out += "\n\n" + render_chart(results)
    if claims and benchmarks is None and set(techniques) >= {
        "mesti", "emesti", "lvp", "sle", "emesti+lvp",
    }:
        from repro.analysis.claims import evaluate_claims, matrix_from_speedups

        out += "\n\n" + evaluate_claims(matrix_from_speedups(results)).render()
    return out


if __name__ == "__main__":
    print(run())
