"""Performance bench harness (``repro-sim bench``).

Tracks the perf trajectory of the simulator itself: two microbenchmarks
(the :class:`~repro.common.events.Scheduler` event loop and the
:class:`~repro.common.stats.StatsRegistry` counter hot path), a fixed
mini-matrix timed cell by cell (serially, and optionally through the
parallel runner for a wall-clock speedup figure), and the
serial-vs-worker determinism check that guards the parallel runner's
core contract.  Results are written as machine-readable JSON
(``BENCH_matrix.json`` at the repo root by default) so successive runs
are diffable; ``repro-sim bench --compare BASELINE.json`` diffs a fresh
report against a committed one via :mod:`repro.obs.regress` and exits
non-zero on regressions, which is how CI gates perf drift.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.common.config import scaled_config
from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.experiments.runner import (
    NONDETERMINISTIC_FIELDS,
    MatrixRunner,
    config_fingerprint,
    effective_workers,
    run_cell,
    summaries_equal,
    warm_pool,
)

log = logging.getLogger("repro.bench")

#: The fixed mini-matrix: small but heterogeneous (one scientific + one
#: commercial workload, baseline + the headline technique), so per-cell
#: wall times stay comparable run over run.
MINI_MATRIX = {
    "benchmarks": ("radiosity", "tpc-b"),
    "techniques": ("base", "emesti"),
    "seeds": (1,),
    "scale": 0.1,
}

#: ``--quick`` variant for CI smoke runs.
QUICK_MATRIX = {
    "benchmarks": ("radiosity",),
    "techniques": ("base", "emesti"),
    "seeds": (1,),
    "scale": 0.05,
}


def scheduler_microbench(n_events: int = 200_000) -> dict:
    """Time ``n_events`` self-rescheduling events through the run loop."""
    sched = Scheduler()
    remaining = [n_events]

    def tick():
        remaining[0] -= 1
        if remaining[0] > 0:
            sched.after(1, tick)

    sched.at(0, tick)
    start = time.perf_counter()
    sched.run()
    seconds = time.perf_counter() - start
    return {
        "events": sched.events_fired,
        "seconds": round(seconds, 4),
        "events_per_sec": round(sched.events_fired / seconds) if seconds else None,
    }


def stats_microbench(n_adds: int = 300_000) -> dict:
    """Time counter increments through the ScopedStats hot path."""
    registry = StatsRegistry()
    scoped = registry.scoped("node0")
    add = scoped.add
    start = time.perf_counter()
    for _ in range(n_adds):
        add("stores.update_silent")
    add_seconds = time.perf_counter() - start
    hist = registry.histogram("miss_latency")
    record = hist.record
    start = time.perf_counter()
    for value in range(n_adds):
        record(value & 1023)
    hist_seconds = time.perf_counter() - start
    return {
        "adds": n_adds,
        "add_seconds": round(add_seconds, 4),
        "adds_per_sec": round(n_adds / add_seconds) if add_seconds else None,
        "hist_records": n_adds,
        "hist_seconds": round(hist_seconds, 4),
        "hist_records_per_sec": (
            round(n_adds / hist_seconds) if hist_seconds else None
        ),
    }


def determinism_check(scale: float = 0.05, benchmark: str = "radiosity",
                      technique: str = "emesti", seed: int = 1) -> dict:
    """Run one cell serially and in a worker process; compare summaries.

    This is the parallel runner's non-negotiable contract: both paths
    must produce identical summaries (every field except the
    ``wall_seconds`` host measurement).
    """
    runner = MatrixRunner(scale=scale, results_dir=tempfile.mkdtemp(),
                          verbose=False)
    config = runner.cell_config(technique)
    serial = run_cell(config, benchmark, scale, seed)
    with ProcessPoolExecutor(max_workers=1) as pool:
        parallel = pool.submit(run_cell, config, benchmark, scale, seed).result()
    mismatched = sorted(
        key
        for key in set(serial) | set(parallel)
        if key not in NONDETERMINISTIC_FIELDS
        and serial.get(key) != parallel.get(key)
    )
    return {
        "benchmark": benchmark,
        "technique": technique,
        "seed": seed,
        "scale": scale,
        "ok": not mismatched,
        "mismatched_fields": mismatched,
    }


def matrix_bench(spec: dict, workers: int | None = None,
                 results_dir: str | Path | None = None) -> dict:
    """Time the fixed mini-matrix cell by cell (plus a parallel pass).

    Every cell runs fresh in an empty results dir — the point is
    wall time, not reuse.  With ``workers`` > 1 the same matrix is
    also run through ``run_matrix(workers=...)`` against a second
    empty cache, yielding the serial/parallel wall-clock ratio and a
    summary-equality cross-check between the two paths.  Pass
    ``results_dir`` to keep the caches and run manifests around
    (CI uploads them as artifacts); the default is a throwaway tempdir.
    """
    scale = spec["scale"]
    root = Path(results_dir) if results_dir else Path(tempfile.mkdtemp())
    serial = MatrixRunner(scale=scale, results_dir=root / "serial",
                          verbose=False)
    cells = []
    start = time.perf_counter()
    serial_out = serial.run_matrix(
        benchmarks=spec["benchmarks"], techniques=spec["techniques"],
        seeds=spec["seeds"],
    )
    serial_seconds = time.perf_counter() - start
    for key, summary in serial_out.items():
        benchmark, technique, seed = key.split("|")
        cells.append({
            "benchmark": benchmark,
            "technique": technique,
            "seed": int(seed),
            "wall_seconds": summary["wall_seconds"],
            "cycles": summary["cycles"],
            "committed": summary["committed"],
        })
    n_cells = len(cells)
    effective = effective_workers(workers, n_cells)
    out = {
        "scale": scale,
        "benchmarks": list(spec["benchmarks"]),
        "techniques": list(spec["techniques"]),
        "seeds": list(spec["seeds"]),
        "fingerprint": config_fingerprint(scaled_config()),
        "cells": cells,
        "serial_seconds": round(serial_seconds, 3),
        "workers": workers,
        "workers_effective": effective,
        "parallel_seconds": None,
        "speedup": None,
        "speedup_basis": None,
        "parallel_matches_serial": None,
    }
    if workers and workers > 1:
        if effective > 1:
            # Pre-warm the persistent pool outside the timed window:
            # the measured figure is steady-state dispatch, matching
            # how a long-running service actually uses the pool.
            warm_pool(min(effective, n_cells))
        par = MatrixRunner(scale=scale, results_dir=root / "parallel",
                           verbose=False, workers=workers)
        start = time.perf_counter()
        par_out = par.run_matrix(
            benchmarks=spec["benchmarks"], techniques=spec["techniques"],
            seeds=spec["seeds"],
        )
        parallel_seconds = time.perf_counter() - start
        out["parallel_seconds"] = round(parallel_seconds, 3)
        if effective <= 1:
            # Right-sizing degraded the pool to the serial execution
            # plan (single core, or one cell): the "parallel" and
            # serial passes run identical code, so their speedup is
            # 1.0 by construction — reporting the measured ratio of
            # two runs of the same plan would just be timer noise.
            # The measured wall time is still recorded above.
            out["speedup"] = 1.0
            out["speedup_basis"] = "right-sized-serial"
        else:
            out["speedup"] = (
                round(serial_seconds / parallel_seconds, 3)
                if parallel_seconds else None
            )
            out["speedup_basis"] = "measured"
        out["parallel_matches_serial"] = all(
            summaries_equal(serial_out[key], par_out[key]) for key in serial_out
        )
    return out


def run(quick: bool = False, workers: int | None = None,
        output: str | Path = "BENCH_matrix.json", verbose: bool = True,
        results_dir: str | Path | None = None) -> dict:
    """Run the full bench suite and write the JSON report.

    Returns the report dict; ``report["determinism"]["ok"]`` is the
    pass/fail signal (the CLI turns it into the exit code).  With
    ``results_dir`` the matrix caches and run manifests are kept
    there instead of a throwaway tempdir.
    """
    spec = QUICK_MATRIX if quick else MINI_MATRIX
    if workers is None:
        workers = min(4, os.cpu_count() or 1)
    n_events = 50_000 if quick else 200_000
    n_adds = 100_000 if quick else 300_000
    if verbose:
        log.info("scheduler microbench (%d events)...", n_events)
    scheduler = scheduler_microbench(n_events)
    if verbose:
        log.info("stats microbench (%d adds)...", n_adds)
    stats = stats_microbench(n_adds)
    if verbose:
        log.info("mini-matrix (%d cells, scale=%s, workers=%s)...",
                 len(spec["benchmarks"]) * len(spec["techniques"])
                 * len(spec["seeds"]), spec["scale"], workers)
    matrix = matrix_bench(spec, workers=workers, results_dir=results_dir)
    if verbose:
        log.info("determinism check (serial vs worker)...")
    determinism = determinism_check(scale=spec["scale"])
    report = {
        "schema": 2,
        "quick": quick,
        "python": sys.version.split()[0],
        "platform": sys.platform,
        "cpu_count": os.cpu_count(),
        "scheduler": scheduler,
        "stats": stats,
        "matrix": matrix,
        "determinism": determinism,
    }
    if matrix["parallel_matches_serial"] is False:
        report["determinism"]["ok"] = False
        report["determinism"]["mismatched_fields"].append(
            "<run_matrix parallel/serial summaries differ>"
        )
    Path(output).write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    if verbose:
        log.info("wrote %s", output)
    return report


def render(report: dict) -> str:
    """One-screen human summary of a bench report."""
    lines = [
        f"scheduler : {report['scheduler']['events_per_sec']:,} events/s",
        f"stats     : {report['stats']['adds_per_sec']:,} counter adds/s, "
        f"{report['stats']['hist_records_per_sec']:,} histogram records/s",
    ]
    matrix = report["matrix"]
    lines.append(
        f"matrix    : {len(matrix['cells'])} cells at scale {matrix['scale']} "
        f"in {matrix['serial_seconds']}s serial"
    )
    for cell in matrix["cells"]:
        lines.append(
            f"  {cell['benchmark']:>10s}/{cell['technique']:<8s} seed={cell['seed']} "
            f"{cell['wall_seconds']:.2f}s"
        )
    if matrix["parallel_seconds"] is not None:
        effective = matrix.get("workers_effective", matrix["workers"])
        lines.append(
            f"parallel  : {matrix['parallel_seconds']}s with "
            f"{matrix['workers']} workers requested, {effective} effective "
            f"(speedup {matrix['speedup']}x, cpu_count={report['cpu_count']})"
        )
    det = report["determinism"]
    lines.append(
        "determinism: "
        + ("ok (serial == worker)" if det["ok"]
           else f"MISMATCH in fields {det['mismatched_fields']}")
    )
    return "\n".join(lines)
