"""Experiment harnesses: one module per table/figure of the paper.

* :mod:`repro.experiments.table2`  — workload characteristics.
* :mod:`repro.experiments.figure6` — stale-storage capacity sweep.
* :mod:`repro.experiments.figure7` — per-technique speedups with CIs.
* :mod:`repro.experiments.figure8` — address-transaction breakdown.
* :mod:`repro.experiments.sle_idioms` — §5.3.1 elision statistics.
* :mod:`repro.experiments.ablations` — validate policies, SLE knobs.

All build on :mod:`repro.experiments.runner`, which runs and caches the
(benchmark × technique × seed) matrix.
"""

from repro.experiments.runner import MatrixRunner, RunSummary, summarize

__all__ = ["MatrixRunner", "RunSummary", "summarize"]
