"""§5.1.2 — trace-driven capturability vs execution-driven reality.

The paper's methodological point: "any evaluation of LVP without
considering ILP/MLP effects, i.e. trace-based analysis, is
inconclusive."  This harness makes the point quantitative on our own
workloads:

1. run each benchmark execution-driven under the baseline while
   recording its reference trace;
2. replay the trace through the limit-study analyzer: the fraction of
   communication misses LVP/MESTI could *theoretically* capture;
3. run the same benchmark execution-driven with LVP / E-MESTI and
   report the *measured* speedup.

Trace-driven capture rates are high; measured LVP speedups are much
smaller, because the consumer still waits out verification latency
unless independent work exists to overlap it — while E-MESTI turns a
similar capture rate into larger gains by eliminating the transfer at
the producer.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.report import render_table
from repro.analysis.trace import TraceRecorder
from repro.analysis.tracedriven import TraceDrivenAnalyzer
from repro.common.config import scaled_config
from repro.experiments.runner import DEFAULT_JITTER
from repro.system.system import System
from repro.system.techniques import configure_technique
from repro.workloads.registry import get_benchmark

HEADERS = [
    "Benchmark",
    "Comm misses (trace)",
    "LVP capturable%",
    "MESTI capturable%",
    "LVP measured speedup",
    "E-MESTI measured speedup",
]


def _run(technique: str, benchmark: str, scale: float, seed: int, record=False):
    cfg = dataclasses.replace(
        configure_technique(scaled_config(), technique), latency_jitter=DEFAULT_JITTER
    )
    system = System(cfg, get_benchmark(benchmark, scale=scale), seed=seed)
    recorder = TraceRecorder(system) if record else None
    result = system.run(max_cycles=500_000_000, max_events=300_000_000)
    return result, recorder


def collect(scale=0.5, seed=1, benchmarks=("tpc-b", "specweb"), verbose=True):
    """Run the experiment and return its result rows."""
    rows = []
    for benchmark in benchmarks:
        base, recorder = _run("base", benchmark, scale, seed, record=True)
        analyzer = TraceDrivenAnalyzer(base.config.n_procs, base.config.line_size)
        analysis = analyzer.analyze(recorder.records)
        lvp, _ = _run("lvp", benchmark, scale, seed)
        emesti, _ = _run("emesti", benchmark, scale, seed)
        rows.append([
            benchmark,
            analysis.comm_misses,
            round(100 * analysis.lvp_fraction, 1),
            round(100 * analysis.mesti_fraction, 1),
            round(base.cycles / lvp.cycles, 3),
            round(base.cycles / emesti.cycles, 3),
        ])
        if verbose:
            print(f"  trace-vs-exec {benchmark} done", flush=True)
    return rows


def run(scale=0.5, seed=1, benchmarks=("tpc-b", "specweb"), verbose=True) -> str:
    """Run the experiment and return the rendered text."""
    rows = collect(scale, seed, benchmarks, verbose)
    return render_table(
        HEADERS, rows,
        title="Trace-driven capturability vs execution-driven speedup (§5.1.2)",
    )


if __name__ == "__main__":
    print(run())
