"""Temporal-silence provenance: explain every communication miss.

The paper's argument is causal — a communication miss is avoidable iff
a temporally silent store pair reverted the line before the consumer's
reload, and MESTI / Enhanced MESTI / LVP each intercept a different
link in that chain.  This module reconstructs those chains from one
traced run: it folds the span stream (:mod:`repro.obs.spans`) and the
point events back into per-line lifetimes, attributes every
communication miss to a provenance class, accounts every validate's
fate, and builds the intermediate-value-distance and silence-lifetime
distributions of the paper's Figures 2 and 5.

Miss provenance classes (:data:`MISS_CLASSES`):

* ``lvp``            — the reload's speculative value verified: LVP hid
  the miss latency (LVP-verifiable).
* ``tss.suppressed`` — a temporally silent sharing miss whose most
  recent silence episode was *suppressed* by the validate policy: the
  miss would have been saved had the validate been broadcast (the cost
  side of the E-MESTI predictor).
* ``tss.validated``  — a validate *was* broadcast but this consumer
  still missed (no T copy to re-install: evicted, never held, or
  raced) — the residual MESTI cannot reach.
* ``tss.unexploited``— temporally silent sharing with no validate
  machinery acting (base protocol, or silence undetected): avoidable
  in principle by MESTI.
* ``false-sharing``  — the referenced word was unchanged: capturable
  by LVP (§3.1).
* ``true-sharing``   — the referenced word changed: fundamental
  communication.
* ``unattributed``   — a communication miss the analyzer could not
  sub-classify (no invalidation snapshot was available).

Validate accounting distinguishes *reinstalling* broadcasts (at least
one remote T copy was re-installed — the paper's useful validates)
from *inert* ones, and reconciles the trace-side totals exactly
against the :class:`~repro.obs.metrics.MetricsRegistry` counters: both
sides are incremented by the same code paths, so any mismatch is an
instrumentation bug, not noise.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass, field
from typing import Iterable

from repro.common.stats import Histogram
from repro.obs.spans import collect_spans

#: Provenance classes, in attribution priority order.
MISS_CLASSES = (
    "lvp",
    "tss.suppressed",
    "tss.validated",
    "tss.unexploited",
    "false-sharing",
    "true-sharing",
    "unattributed",
)

#: Transactions whose grant ends a silence lifetime (the line's
#: reverted value stops being the globally visible one, or the copies
#: that could exploit it are gone).
_LIFETIME_ENDERS = ("ReadX", "Upgrade", "Writeback")


@dataclass
class LineProvenance:
    """Per-line aggregate: misses by class, validate fate, traffic."""

    base: int
    misses: int = 0
    comm: int = 0
    classes: dict[str, int] = field(default_factory=dict)
    validates: int = 0
    suppressed: int = 0
    revalidations: int = 0

    @property
    def avoidable(self) -> int:
        """Comm misses in a class some studied technique addresses."""
        return sum(
            self.classes.get(c, 0)
            for c in ("lvp", "tss.suppressed", "tss.validated",
                      "tss.unexploited", "false-sharing")
        )

    def to_dict(self) -> dict:
        """JSON-safe representation (classes in fixed order)."""
        return {
            "base": hex(self.base),
            "misses": self.misses,
            "comm": self.comm,
            "classes": {c: self.classes.get(c, 0) for c in MISS_CLASSES
                        if self.classes.get(c, 0)},
            "validates": self.validates,
            "suppressed": self.suppressed,
            "revalidations": self.revalidations,
        }


@dataclass
class ProvenanceReport:
    """Everything one traced run can say about its communication."""

    misses_total: int
    misses_by_class: dict[str, int]
    comm_classes: dict[str, int]
    comm_causes: dict[str, int]
    validates: dict[str, int]
    ivd: dict
    silence_lifetime: dict
    lines: dict[int, LineProvenance]
    spans: dict[str, int]

    @property
    def comm_misses(self) -> int:
        """Total communication misses observed in the trace."""
        return self.misses_by_class.get("comm", 0)

    @property
    def attributed(self) -> int:
        """Communication misses placed in a real provenance class."""
        return self.comm_misses - self.comm_classes.get("unattributed", 0)

    @property
    def attribution_rate(self) -> float:
        """Fraction of communication misses attributed (1.0 when none)."""
        comm = self.comm_misses
        return self.attributed / comm if comm else 1.0

    def top_lines(self, n: int = 10) -> list[LineProvenance]:
        """The ``n`` worst offender lines by communication misses."""
        ranked = sorted(
            self.lines.values(), key=lambda lp: (-lp.comm, -lp.misses, lp.base)
        )
        return ranked[:n]

    def cell_summary(self) -> dict:
        """Compact per-cell summary for matrix manifests and CI."""
        return {
            "comm_misses": self.comm_misses,
            "attributed": self.attributed,
            "attribution_rate": round(self.attribution_rate, 4),
            "classes": {c: self.comm_classes.get(c, 0) for c in MISS_CLASSES
                        if self.comm_classes.get(c, 0)},
            "validates": dict(self.validates),
            "spans": dict(self.spans),
        }

    def to_json(self) -> dict:
        """Full JSON document (``repro-sim explain --format json``)."""
        return {
            "schema": 1,
            "misses": {
                "total": self.misses_total,
                "by_class": dict(self.misses_by_class),
                "comm_provenance": {
                    c: self.comm_classes.get(c, 0) for c in MISS_CLASSES
                },
                "comm_causes": dict(self.comm_causes),
                "attributed": self.attributed,
                "attribution_rate": round(self.attribution_rate, 4),
            },
            "validates": dict(self.validates),
            "ivd": self.ivd,
            "silence_lifetime": self.silence_lifetime,
            "spans": dict(self.spans),
            "top_lines": [lp.to_dict() for lp in self.top_lines(20)],
        }


def analyze_events(events: Iterable) -> ProvenanceReport:
    """Build a :class:`ProvenanceReport` from a trace event stream.

    Accepts any iterable of event objects (``ts``/``kind``/``node``/
    ``base``/``fields`` attributes) — a live
    :class:`~repro.obs.tracer.Tracer`'s buffer or a loaded trace file.
    """
    events = list(events)
    stream = collect_spans(events)

    # Index 1: miss spans that were verified by LVP (lvp.verify tags
    # the miss span of the reload it hid).
    lvp_verified: dict[int, bool] = {}
    # Index 2: per-base silence episodes (ts, outcome) and per-base
    # lifetime-ending grants, both in stream order (ts-sorted since
    # these events are emitted live, never retroactively).
    silences: dict[int, list[tuple[int, str]]] = {}
    enders: dict[int, list[int]] = {}
    # Index 3: validate accounting.
    validates = {
        "broadcast": 0, "suppressed": 0, "cancelled": 0,
        "reinstalling": 0, "inert": 0, "revalidations": 0,
        "useful": 0, "useless": 0,
    }
    revalidated_spans: dict[int, int] = {}
    broadcast_spans: list[int] = []
    ivd_hist = Histogram()
    last_ts = 0

    for ev in events:
        last_ts = max(last_ts, ev.ts)
        kind = ev.kind
        if kind == "lvp.verify":
            span = ev.fields.get("span")
            if span is not None:
                lvp_verified[span] = True
        elif kind == "validate.broadcast":
            validates["broadcast"] += 1
            silences.setdefault(ev.base, []).append((ev.ts, "broadcast"))
            ivd_hist.record(ev.fields.get("ivd", 0))
            span = ev.fields.get("span")
            if span is not None:
                broadcast_spans.append(span)
        elif kind == "validate.suppressed":
            validates["suppressed"] += 1
            silences.setdefault(ev.base, []).append((ev.ts, "suppressed"))
            ivd_hist.record(ev.fields.get("ivd", 0))
        elif kind == "validate.revalidate":
            validates["revalidations"] += 1
            span = ev.fields.get("span")
            if span is not None:
                revalidated_spans[span] = revalidated_spans.get(span, 0) + 1
        elif kind == "bus.cancel":
            if ev.fields.get("txn") == "Validate":
                validates["cancelled"] += 1
        elif kind == "bus.grant":
            if ev.fields.get("txn") in _LIFETIME_ENDERS:
                enders.setdefault(ev.base, []).append(ev.ts)
        elif kind == "predictor.train":
            cause = ev.fields.get("cause")
            if cause in ("external_request", "useful_snoop"):
                validates["useful"] += 1
            elif cause == "useless_snoop":
                validates["useless"] += 1

    validates["reinstalling"] = sum(
        1 for span in broadcast_spans if revalidated_spans.get(span)
    )
    validates["inert"] = validates["broadcast"] - validates["reinstalling"]

    # Silence lifetimes: from each silence episode to the next
    # lifetime-ending grant on the same line; episodes still live at
    # the end of the run are censored (counted, not recorded).
    life_hist = Histogram()
    censored = 0
    for base in sorted(silences):
        ends = enders.get(base, ())
        for ts, _outcome in silences[base]:
            idx = bisect.bisect_right(ends, ts)
            if idx < len(ends):
                life_hist.record(ends[idx] - ts)
            else:
                censored += 1

    # Pass 2: attribute every miss.
    misses_total = 0
    misses_by_class: dict[str, int] = {}
    comm_classes: dict[str, int] = {}
    comm_causes: dict[str, int] = {}
    lines: dict[int, LineProvenance] = {}
    for ev in events:
        if ev.kind not in ("mem.miss", "validate.broadcast",
                           "validate.suppressed", "validate.revalidate"):
            continue
        lp = lines.get(ev.base)
        if lp is None:
            lp = lines[ev.base] = LineProvenance(base=ev.base)
        if ev.kind == "validate.broadcast":
            lp.validates += 1
            continue
        if ev.kind == "validate.suppressed":
            lp.suppressed += 1
            continue
        if ev.kind == "validate.revalidate":
            lp.revalidations += 1
            continue
        misses_total += 1
        lp.misses += 1
        cls = ev.fields.get("cls") or "unknown"
        misses_by_class[cls] = misses_by_class.get(cls, 0) + 1
        if cls != "comm":
            continue
        lp.comm += 1
        cause = ev.fields.get("cause") or "unknown"
        comm_causes[cause] = comm_causes.get(cause, 0) + 1
        prov = _attribute(ev, lvp_verified, silences)
        comm_classes[prov] = comm_classes.get(prov, 0) + 1
        lp.classes[prov] = lp.classes.get(prov, 0) + 1

    return ProvenanceReport(
        misses_total=misses_total,
        misses_by_class=misses_by_class,
        comm_classes=comm_classes,
        comm_causes=comm_causes,
        validates=validates,
        ivd=ivd_hist.summary(),
        silence_lifetime={**life_hist.summary(), "censored": censored},
        lines=lines,
        spans={
            "total": len(stream.spans),
            "open": stream.open,
            "truncated": stream.truncated,
        },
    )


def _attribute(ev, lvp_verified: dict[int, bool], silences: dict) -> str:
    """Attribute one communication-miss event to a provenance class."""
    span = ev.fields.get("span")
    if span is not None and lvp_verified.get(span):
        return "lvp"
    cause = ev.fields.get("cause")
    if cause == "tss":
        # The miss's fill time bounds the consumer's reload; the most
        # recent silence episode on the line before it tells which
        # mechanism had (or missed) its chance.
        fill_ts = ev.ts + ev.fields.get("dur", 0)
        episodes = silences.get(ev.base, ())
        idx = bisect.bisect_right([ts for ts, _ in episodes], fill_ts)
        if idx == 0:
            return "tss.unexploited"
        outcome = episodes[idx - 1][1]
        return "tss.suppressed" if outcome == "suppressed" else "tss.validated"
    if cause == "false":
        return "false-sharing"
    if cause == "true":
        return "true-sharing"
    return "unattributed"


def line_chain(events: Iterable, base: int, limit: int | None = None) -> list[dict]:
    """Chronological event chain for one line (``--line`` drill-down).

    Returns the line's lifetime as flattened event dicts — store /
    invalidate / silent revert / validate / next access — newest last;
    ``limit`` keeps only the most recent entries.
    """
    chain = [ev.to_dict() for ev in events if ev.base == base]
    chain.sort(key=lambda d: d["ts"])
    if limit is not None and len(chain) > limit:
        chain = chain[-limit:]
    return chain


# ---------------------------------------------------------------------------
# Reconciliation against the metrics registry
# ---------------------------------------------------------------------------


def _metric_sum(metrics, name: str, **match) -> float:
    """Sum a family's series values over all series matching ``match``."""
    total = 0.0
    for family in metrics.families():
        if family.name != name:
            continue
        for series in family.series():
            values = getattr(series, "value", None)
            if values is None:
                continue
            if all(series.labels.get(k) == str(v) for k, v in match.items()):
                total += series.value
    return total


def reconcile(report: ProvenanceReport, metrics) -> list[dict]:
    """Check the trace-derived totals against the metrics registry.

    Both sides are produced by the same increments (the tracer emit
    and the mirrored counter sit on the same code path), so every row
    must match *exactly*; a mismatch is an instrumentation bug.
    Returns one row per checked quantity:
    ``{"name", "trace", "counter", "ok"}``.
    """
    validates = report.validates
    rows = [
        ("validates.broadcast", validates["broadcast"],
         _metric_sum(metrics, "repro_validates_total", outcome="broadcast")),
        ("validates.suppressed", validates["suppressed"],
         _metric_sum(metrics, "repro_validates_total", outcome="suppressed")),
        ("validates.cancelled", validates["cancelled"],
         _metric_sum(metrics, "repro_validates_total", outcome="cancelled")),
        ("validates.useful", validates["useful"],
         _metric_sum(metrics, "repro_predictor_transitions_total",
                     cause="external_request")
         + _metric_sum(metrics, "repro_predictor_transitions_total",
                       cause="useful_snoop")),
        ("validates.useless", validates["useless"],
         _metric_sum(metrics, "repro_predictor_transitions_total",
                     cause="useless_snoop")),
        ("revalidations", validates["revalidations"],
         _metric_sum(metrics, "repro_revalidations_total")),
        ("misses.comm", report.comm_misses,
         _metric_sum(metrics, "repro_misses_total", cls="comm")),
        # Cause buckets (not provenance classes): LVP-verified misses
        # are attributed "lvp" first, so classes understate the raw
        # causes the classifier counted; comm_causes keeps the raw
        # tallies precisely for this comparison.
        ("misses.comm.tss", report.comm_causes.get("tss", 0),
         _metric_sum(metrics, "repro_comm_misses_total", cause="tss")),
        ("misses.comm.false", report.comm_causes.get("false", 0),
         _metric_sum(metrics, "repro_comm_misses_total", cause="false")),
        ("misses.comm.true", report.comm_causes.get("true", 0),
         _metric_sum(metrics, "repro_comm_misses_total", cause="true")),
    ]
    out = []
    for name, trace_val, counter_val in rows:
        out.append(
            {
                "name": name,
                "trace": int(trace_val),
                "counter": int(counter_val),
                "ok": int(trace_val) == int(counter_val),
            }
        )
    return out


def reconciliation_ok(rows: list[dict]) -> bool:
    """True when every reconciliation row matched exactly."""
    return all(row["ok"] for row in rows)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def render_provenance(
    report: ProvenanceReport,
    reconciliation: list[dict] | None = None,
    top: int = 10,
) -> str:
    """Human-readable explain report (``repro-sim explain``)."""
    lines = ["== miss provenance =="]
    lines.append(f"misses total               : {report.misses_total}")
    for cls in sorted(report.misses_by_class):
        lines.append(f"  {cls:<25}: {report.misses_by_class[cls]}")
    comm = report.comm_misses
    lines.append(
        f"communication misses       : {comm} "
        f"({report.attributed} attributed, "
        f"{report.attribution_rate:.1%})"
    )
    for cls in MISS_CLASSES:
        count = report.comm_classes.get(cls, 0)
        if count:
            share = count / comm if comm else 0.0
            lines.append(f"  {cls:<25}: {count} ({share:.1%})")
    lines.append("")
    lines.append("== validates ==")
    for key in ("broadcast", "reinstalling", "inert", "suppressed",
                "cancelled", "revalidations", "useful", "useless"):
        lines.append(f"  {key:<25}: {report.validates[key]}")
    lines.append("")
    lines.append("== distributions ==")
    lines.append(f"  intermediate-value dist  : {report.ivd}")
    lines.append(f"  silence lifetime (cycles): {report.silence_lifetime}")
    lines.append(
        f"  spans: {report.spans['total']} "
        f"(open {report.spans['open']}, truncated {report.spans['truncated']})"
    )
    offenders = report.top_lines(top)
    if offenders:
        lines.append("")
        lines.append(f"== top {len(offenders)} offender lines ==")
        lines.append(
            f"  {'base':>10} {'comm':>6} {'miss':>6} {'val':>5} "
            f"{'supp':>5} {'reval':>6}  classes"
        )
        for lp in offenders:
            classes = ", ".join(
                f"{c}={lp.classes[c]}"
                for c in MISS_CLASSES if lp.classes.get(c)
            )
            lines.append(
                f"  {lp.base:#10x} {lp.comm:>6} {lp.misses:>6} "
                f"{lp.validates:>5} {lp.suppressed:>5} "
                f"{lp.revalidations:>6}  {classes}"
            )
    if reconciliation is not None:
        lines.append("")
        lines.append("== metrics reconciliation ==")
        for row in reconciliation:
            mark = "ok" if row["ok"] else "MISMATCH"
            lines.append(
                f"  {row['name']:<25}: trace={row['trace']} "
                f"counter={row['counter']} [{mark}]"
            )
    return "\n".join(lines)
