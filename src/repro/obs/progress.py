"""Parallel-run telemetry: per-cell progress events and run manifests.

While a :class:`~repro.experiments.runner.MatrixRunner` fans cells out
over worker processes, the only signal used to be a log line per
finished cell.  This module adds two observability surfaces:

* :class:`MatrixProgress` renders :class:`CellUpdate` events —
  start / finish / retry / timeout, worker pid, wall time — as a live
  single-line progress display on a TTY (falling back to plain log
  lines otherwise);
* :class:`RunManifest` persists the same telemetry next to the result
  cache (``<cache>.manifest.json``): for every cell, whether it was
  served from cache or ran, which worker ran it, how many retries it
  took, and its wall time.  CI uploads the manifest as an artifact, so
  a flaky or slow cell is diagnosable after the fact.

Timestamps are deliberately relative (``time.perf_counter`` deltas):
the manifest must be byte-stable across reruns of a fully cached
matrix, and simlint's SL001 bans wall-clock reads in ``src/repro``.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

log = logging.getLogger("repro.progress")

#: The event vocabulary carried by :class:`CellUpdate`.
UPDATE_KINDS = ("start", "finish", "retry", "timeout")


@dataclass
class CellUpdate:
    """One telemetry event for one matrix cell."""

    kind: str  # one of UPDATE_KINDS
    key: str  # "benchmark|technique|seed"
    worker: int | None = None  # pid that produced the summary
    wall_seconds: float | None = None
    retries: int = 0
    error: str | None = None  # failure text for retry/timeout events

    def __post_init__(self):
        if self.kind not in UPDATE_KINDS:
            raise ValueError(f"unknown cell update kind {self.kind!r}")


class MatrixProgress:
    """Renders cell updates as a live progress line (or log lines).

    On a TTY ``stream`` the display is a single ``\\r``-rewritten line
    (``label 3/8 done, 1 running, 1 retried — last tpc-b|emesti|1
    2.1s``); otherwise every finish/retry/timeout becomes one log
    record, so redirected output stays readable.
    """

    def __init__(self, total: int, label: str = "matrix", stream=None,
                 live: bool | None = None):
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.live = (
            live if live is not None
            else bool(getattr(self.stream, "isatty", lambda: False)())
        )
        self.done = 0
        self.running = 0
        self.retried = 0
        self.last: CellUpdate | None = None
        self._start = time.perf_counter()

    def update(self, event: CellUpdate) -> None:
        """Fold one event into the display state and re-render."""
        if event.kind == "start":
            self.running += 1
        elif event.kind == "finish":
            self.done += 1
            self.running = max(0, self.running - 1)
            self.last = event
        elif event.kind in ("retry", "timeout"):
            self.retried += 1
        if self.live:
            self._render()
        elif event.kind in ("retry", "timeout"):
            # Failures are always worth a log line; routine finishes
            # stay at DEBUG (the runner already logs each cell).
            log.info("%s", self._line(event))
        elif event.kind == "finish":
            log.debug("%s", self._line(event))

    def _line(self, event: CellUpdate) -> str:
        bits = [f"{self.label} {self.done}/{self.total} done"]
        if self.running:
            bits.append(f"{self.running} running")
        if self.retried:
            bits.append(f"{self.retried} retried")
        if event.kind in ("retry", "timeout"):
            bits.append(f"{event.kind} {event.key}: {event.error or '?'}")
        elif event.key:
            detail = f"last {event.key}"
            if event.wall_seconds is not None:
                detail += f" {event.wall_seconds:.1f}s"
            bits.append(detail)
        return ", ".join(bits)

    def _render(self) -> None:
        line = self._line(self.last or CellUpdate("finish", ""))
        self.stream.write("\r" + line.ljust(79)[:200])
        self.stream.flush()

    def close(self) -> None:
        """Finish the live line (newline) and log the total wall time."""
        elapsed = time.perf_counter() - self._start
        if self.live:
            self.stream.write("\n")
            self.stream.flush()
        log.debug(
            "%s: %d/%d cells in %.1fs (%d retried)",
            self.label, self.done, self.total, elapsed, self.retried,
        )


@dataclass
class RunManifest:
    """Per-cell provenance for one matrix sweep, persisted as JSON.

    ``cells`` maps cache keys to ``{"status": "cached"|"ran",
    "worker": pid|None, "retries": n, "wall_seconds": s}``.  No
    wall-clock dates on purpose — a fully cached rerun must produce an
    identical manifest.
    """

    SCHEMA = 1

    label: str
    scale: float
    fingerprint: str
    workers: int | None = None
    cells: dict[str, dict] = field(default_factory=dict)

    def record(
        self,
        key: str,
        status: str,
        worker: int | None = None,
        retries: int = 0,
        wall_seconds: float | None = None,
        provenance: dict | None = None,
    ) -> None:
        """Record one cell's provenance (``status``: cached / ran).

        ``provenance`` is the optional miss-provenance summary from a
        traced sweep (:meth:`repro.obs.provenance.ProvenanceReport.
        cell_summary`); the key is only written when present, so
        manifests from untraced sweeps are byte-identical to before.
        """
        if status not in ("cached", "ran"):
            raise ValueError(f"unknown manifest status {status!r}")
        self.cells[key] = {
            "status": status,
            "worker": worker,
            "retries": retries,
            "wall_seconds": wall_seconds,
        }
        if provenance is not None:
            self.cells[key]["provenance"] = provenance

    @property
    def ran(self) -> int:
        """Number of cells that actually executed."""
        return sum(1 for c in self.cells.values() if c["status"] == "ran")

    @property
    def cached(self) -> int:
        """Number of cells served from the result cache."""
        return sum(1 for c in self.cells.values() if c["status"] == "cached")

    @property
    def retries(self) -> int:
        """Total retries across all cells."""
        return sum(c["retries"] for c in self.cells.values())

    def to_json(self) -> dict:
        """JSON-safe document for persistence."""
        return {
            "schema": self.SCHEMA,
            "label": self.label,
            "scale": self.scale,
            "fingerprint": self.fingerprint,
            "workers": self.workers,
            "cells": self.cells,
        }

    def save(self, path: str | Path) -> Path:
        """Write the manifest to ``path`` and return it."""
        path = Path(path)
        path.write_text(json.dumps(self.to_json(), indent=1, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        """Read a manifest written by :meth:`save`."""
        data = json.loads(Path(path).read_text())
        return cls(
            label=data["label"],
            scale=data["scale"],
            fingerprint=data["fingerprint"],
            workers=data.get("workers"),
            cells=dict(data.get("cells", {})),
        )
