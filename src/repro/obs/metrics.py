"""Labeled metrics registry with JSON / Prometheus export.

The :class:`StatsRegistry` counters are flat dotted strings — good for
summing, bad for analysis: ``ctrl3.validates_suppressed`` encodes the
node id in the name and nothing records which counters form one
logical series.  :class:`MetricsRegistry` layers first-class *named
series* on top: a metric family has a name, a help string, a kind
(counter / gauge / histogram), and label names; each label-value
combination is one series.  The paper-level event counts —
communication misses by cause, validates issued/useful/useless,
predictor confidence transitions, LVP verify/squash — become queryable
families instead of string-prefix conventions.

Two design rules keep the simulator's hot path intact:

* **Stats stay authoritative.**  Components instrument a site with
  :meth:`MetricsRegistry.bound_counter`, which mirrors every increment
  into both the stats counter (which ``summarize()`` and the figures
  read) and the metric series.  Parity is by construction, not by
  bookkeeping.
* **Off by default, at zero cost.**  ``NULL_METRICS`` (the default
  everywhere, mirroring ``NULL_TRACER``) returns a plain
  :class:`~repro.common.stats.CounterHandle` from ``bound_counter`` —
  the stats counter is still bumped, through a *faster* path than the
  old ``stats.add`` string concatenation, and no series exists.

Exports: :meth:`MetricsRegistry.to_json` for programmatic diffing and
:meth:`MetricsRegistry.to_prometheus` for the Prometheus text
exposition format (``repro-sim run --metrics``).
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Iterable

from repro.common.stats import CounterHandle, Histogram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from repro.common.stats import ScopedStats

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format rules."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: dict[str, str]) -> str:
    """Render ``{k="v",...}`` (empty string when there are no labels)."""
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in labels.items()
    )
    return "{" + inner + "}"


class MetricSeries:
    """One labeled child of a counter/gauge family: a scalar value."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: dict[str, str]):
        self.labels = labels
        self.value: float = 0.0

    def inc(self, amount: float = 1) -> None:
        """Increment the series (counters should only ever go up)."""
        self.value += amount

    def set(self, value: float) -> None:
        """Set the series to an absolute value (gauges)."""
        self.value = value


class HistogramSeries:
    """One labeled child of a histogram family.

    Wraps a :class:`~repro.common.stats.Histogram` — either a private
    one, or (via :meth:`MetricsRegistry.bind_histogram`) an *existing*
    stats histogram, so the distribution a component already records
    is exported without double bookkeeping.
    """

    __slots__ = ("labels", "hist")

    def __init__(self, labels: dict[str, str], hist: Histogram):
        self.labels = labels
        self.hist = hist

    def record(self, value: float, n: int = 1) -> None:
        """Record ``n`` observations of ``value``."""
        self.hist.record(value, n)


class MirroredCounter:
    """Counter handle incrementing a stats counter AND a metric series.

    Drop-in replacement for :class:`~repro.common.stats.CounterHandle`
    at instrumented sites: one ``inc`` keeps the legacy dotted counter
    (read by ``summarize()``) and the labeled series in lockstep.
    """

    __slots__ = ("_counters", "_key", "_series")

    def __init__(self, counters: dict, key: str, series: MetricSeries):
        self._counters = counters
        self._key = key
        self._series = series

    @property
    def name(self) -> str:
        """The full dotted stats-counter name this handle mirrors."""
        return self._key

    def inc(self, amount: float = 1) -> None:
        """Increment both the stats counter and the metric series."""
        self._counters[self._key] += amount
        self._series.value += amount

    @property
    def value(self) -> float:
        """Current stats-counter value (equals the series by design)."""
        return self._counters.get(self._key, 0)


class MetricFamily:
    """A named metric with fixed label names and one series per value set."""

    __slots__ = ("name", "help", "kind", "label_names", "bounds", "_series")

    def __init__(
        self,
        name: str,
        help: str,  # noqa: A002 - Prometheus calls it "help"
        kind: str,
        label_names: tuple[str, ...],
        bounds: tuple[float, ...] | None = None,
    ):
        self.name = name
        self.help = help
        self.kind = kind
        self.label_names = label_names
        self.bounds = bounds
        self._series: dict[tuple[str, ...], MetricSeries | HistogramSeries] = {}

    def labels(self, **labels) -> MetricSeries | HistogramSeries:
        """The series for one label-value combination (created on first use).

        Label values are stringified; the keyword names must match the
        family's ``label_names`` exactly.
        """
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"metric {self.name!r} takes labels {sorted(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        series = self._series.get(key)
        if series is None:
            label_map = dict(zip(self.label_names, key))
            if self.kind == HISTOGRAM:
                series = HistogramSeries(label_map, Histogram(self.bounds))
            else:
                series = MetricSeries(label_map)
            self._series[key] = series
        return series

    def attach(self, hist: Histogram, **labels) -> Histogram:
        """Register an *existing* histogram as this family's series.

        Used by :meth:`MetricsRegistry.bind_histogram` so a component's
        stats histogram doubles as the exported series.
        """
        if self.kind != HISTOGRAM:
            raise ValueError(f"metric {self.name!r} is not a histogram")
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"metric {self.name!r} takes labels {sorted(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        self._series[key] = HistogramSeries(dict(zip(self.label_names, key)), hist)
        return hist

    def series(self) -> Iterable[MetricSeries | HistogramSeries]:
        """All series in deterministic (label-value) order."""
        return (self._series[key] for key in sorted(self._series))


class MetricsRegistry:
    """Registry of metric families with JSON and Prometheus export.

    Families are created idempotently: re-registering the same name
    with the same kind and label names returns the existing family
    (components each register their own sites); a conflicting
    re-registration raises.
    """

    def __init__(self):
        self._families: dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def _register(
        self,
        name: str,
        help: str,  # noqa: A002
        kind: str,
        labels: Iterable[str],
        bounds: Iterable[float] | None = None,
    ) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        label_names = tuple(labels)
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name: {label!r}")
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or set(family.label_names) != set(label_names):
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind} with "
                    f"labels {sorted(family.label_names)}"
                )
            if help and not family.help:
                family.help = help
            return family
        family = MetricFamily(
            name, help, kind, label_names,
            tuple(bounds) if bounds is not None else None,
        )
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "",  # noqa: A002
                labels: Iterable[str] = ()) -> MetricFamily:
        """Get-or-create a counter family."""
        return self._register(name, help, COUNTER, labels)

    def gauge(self, name: str, help: str = "",  # noqa: A002
              labels: Iterable[str] = ()) -> MetricFamily:
        """Get-or-create a gauge family."""
        return self._register(name, help, GAUGE, labels)

    def histogram(self, name: str, help: str = "",  # noqa: A002
                  labels: Iterable[str] = (),
                  bounds: Iterable[float] | None = None) -> MetricFamily:
        """Get-or-create a histogram family."""
        return self._register(name, help, HISTOGRAM, labels, bounds)

    # ------------------------------------------------------------------
    # Component instrumentation
    # ------------------------------------------------------------------

    def bound_counter(
        self,
        stats: "ScopedStats",
        stat_name: str,
        name: str,
        help: str = "",  # noqa: A002
        **labels,
    ) -> MirroredCounter:
        """Instrument one stats-counter site as a labeled metric series.

        Returns a handle whose ``inc`` bumps the legacy dotted stats
        counter (``stats``'s prefix + ``stat_name``) and the series of
        family ``name`` with the given labels, keeping the two in
        parity by construction.
        """
        family = self.counter(name, help, labels=tuple(labels))
        series = family.labels(**labels)
        handle = stats.counter(stat_name)
        return MirroredCounter(handle._counters, handle._key, series)

    def bind_histogram(
        self,
        hist: Histogram,
        name: str,
        help: str = "",  # noqa: A002
        **labels,
    ) -> Histogram:
        """Export an existing stats histogram as a labeled series.

        The component keeps recording into the same
        :class:`~repro.common.stats.Histogram` object; the registry
        merely exports it.  Returns ``hist`` so call sites stay
        one-liners.
        """
        family = self.histogram(name, help, labels=tuple(labels))
        family.attach(hist, **labels)
        return hist

    # ------------------------------------------------------------------
    # Reading and export
    # ------------------------------------------------------------------

    def families(self) -> Iterable[MetricFamily]:
        """All families in name order."""
        return (self._families[name] for name in sorted(self._families))

    def get(self, name: str, **labels) -> float:
        """Value of one scalar series (0 if the series does not exist)."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        key = tuple(str(labels[label]) for label in family.label_names)
        series = family._series.get(key)
        if series is None or isinstance(series, HistogramSeries):
            return 0.0
        return series.value

    def total(self, name: str) -> float:
        """Sum of every series of one counter/gauge family."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        return sum(
            s.value for s in family.series() if isinstance(s, MetricSeries)
        )

    def to_json(self) -> dict:
        """JSON-safe document: one entry per series, sorted, diffable."""
        out = []
        for family in self.families():
            for series in family.series():
                entry = {
                    "name": family.name,
                    "kind": family.kind,
                    "help": family.help,
                    "labels": series.labels,
                }
                if isinstance(series, HistogramSeries):
                    entry["histogram"] = series.hist.summary()
                else:
                    entry["value"] = series.value
                out.append(entry)
        return {"schema": 1, "series": out}

    def to_prometheus(self) -> str:
        """Render the registry in the Prometheus text exposition format."""
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for series in family.series():
                if isinstance(series, HistogramSeries):
                    lines.extend(self._prom_histogram(family, series))
                else:
                    labels = _format_labels(series.labels)
                    lines.append(f"{family.name}{labels} {series.value:g}")
        return "\n".join(lines) + "\n"

    @staticmethod
    def _prom_histogram(family: MetricFamily, series: HistogramSeries) -> list[str]:
        """``_bucket``/``_sum``/``_count`` lines for one histogram series."""
        hist = series.hist
        lines = []
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.counts):
            cumulative += count
            labels = _format_labels({**series.labels, "le": f"{bound:g}"})
            lines.append(f"{family.name}_bucket{labels} {cumulative}")
        labels = _format_labels({**series.labels, "le": "+Inf"})
        lines.append(f"{family.name}_bucket{labels} {hist.count}")
        base = _format_labels(series.labels)
        lines.append(f"{family.name}_sum{base} {hist.total:g}")
        lines.append(f"{family.name}_count{base} {hist.count}")
        return lines


class _NullSeries:
    """Series stand-in that accepts and discards everything."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        """Discard the increment."""

    def set(self, value: float) -> None:
        """Discard the value."""

    def record(self, value: float, n: int = 1) -> None:
        """Discard the observation."""


class _NullFamily:
    """Family stand-in whose every series is the shared null series."""

    __slots__ = ()

    def labels(self, **labels) -> _NullSeries:
        """Return the shared no-op series."""
        return _NULL_SERIES


class _NullMetrics:
    """Zero-overhead stand-in used when metrics collection is off.

    Deliberately *not* a :class:`MetricsRegistry` subclass (same
    pattern as ``NULL_TRACER``): components hold whichever object they
    were given and never branch.  Crucially, :meth:`bound_counter`
    still returns a live stats :class:`CounterHandle` — figures depend
    on the stats counters, which must be counted with metrics off.
    """

    __slots__ = ()

    def counter(self, name: str, help: str = "",  # noqa: A002
                labels: Iterable[str] = ()) -> _NullFamily:
        """Return the shared no-op family."""
        return _NULL_FAMILY

    def gauge(self, name: str, help: str = "",  # noqa: A002
              labels: Iterable[str] = ()) -> _NullFamily:
        """Return the shared no-op family."""
        return _NULL_FAMILY

    def histogram(self, name: str, help: str = "",  # noqa: A002
                  labels: Iterable[str] = (),
                  bounds: Iterable[float] | None = None) -> _NullFamily:
        """Return the shared no-op family."""
        return _NULL_FAMILY

    def bound_counter(self, stats: "ScopedStats", stat_name: str, name: str,
                      help: str = "", **labels) -> CounterHandle:  # noqa: A002
        """Return a stats-only handle — the counter is still counted."""
        return stats.counter(stat_name)

    def bind_histogram(self, hist: Histogram, name: str, help: str = "",  # noqa: A002
                       **labels) -> Histogram:
        """Return ``hist`` unchanged — nothing is exported."""
        return hist


_NULL_SERIES = _NullSeries()
_NULL_FAMILY = _NullFamily()

#: Shared no-op registry; the default for every component.
NULL_METRICS = _NullMetrics()
