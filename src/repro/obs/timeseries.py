"""Ring-buffer time series for service telemetry.

The service samples its own vitals — queue depth, per-state job
counts, lease latency, worker utilization, cache-hit ratio, event-ring
occupancy — on a background cadence (``repro.service.api.Service``'s
telemetry loop) and records each row here.  The store is a bounded
ring of *rows* (one dict per sampling tick, each stamped with a
monotonic ``ts``), which keeps the memory bound explicit and makes
the JSON export trivially greppable; :meth:`TelemetryStore.series`
projects one named column out of the rows for sparklines and tests.

Thread-safety: rows are recorded from the event loop's sampler but
read from API coroutines and the flight recorder, so every access
takes the store's lock.  The export is the ``GET /telemetry`` body
(schema documented in docs/observability.md, "Service telemetry").
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

#: Rows retained; at the default 1 s cadence this is ~12 minutes.
DEFAULT_CAPACITY = 720

#: The numeric columns every sample carries (the time-series schema).
SAMPLE_COLUMNS = (
    "queued",            # cells waiting in the queue
    "leased",            # cells currently under a worker lease
    "jobs_active",       # jobs not yet terminal
    "jobs_done",         # jobs completed with reason=done
    "jobs_failed",       # jobs completed with reason=failed
    "jobs_cancelled",    # jobs completed with reason=cancelled
    "workers",           # worker slots in the shard
    "busy",              # workers currently simulating
    "utilization",       # busy / workers
    "leases",            # cumulative leases granted
    "lease_wait_avg",    # mean queued->leased latency, seconds
    "lease_wait_max",    # worst queued->leased latency, seconds
    "cache_hit_ratio",   # cache_hits / (cache_hits + started)
    "event_records",     # EventLog ring occupancy
    "event_dropped",     # cumulative records the ring overwrote
)


class TelemetryStore:
    """Bounded, thread-safe ring of telemetry sample rows."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self._lock = threading.RLock()
        self._rows: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._recorded = 0

    def record(self, sample: dict[str, Any]) -> None:
        """Append one sample row (must carry a monotonic ``ts``)."""
        if "ts" not in sample:
            raise ValueError("telemetry sample missing 'ts'")
        with self._lock:
            self._rows.append(dict(sample))
            self._recorded += 1

    def latest(self) -> dict[str, Any] | None:
        """The newest row, or None before the first sample."""
        with self._lock:
            return dict(self._rows[-1]) if self._rows else None

    def rows(self, limit: int | None = None) -> list[dict[str, Any]]:
        """The newest ``limit`` rows (all retained rows when None)."""
        with self._lock:
            rows = list(self._rows)
        if limit is not None:
            rows = rows[-limit:]
        return [dict(row) for row in rows]

    def series(self, name: str, limit: int | None = None) -> list[tuple]:
        """Project one column as ``(ts, value)`` pairs, oldest first."""
        return [
            (row["ts"], row[name])
            for row in self.rows(limit)
            if name in row
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    def to_json(self, limit: int | None = None) -> dict[str, Any]:
        """The ``GET /telemetry`` document (schema 1)."""
        with self._lock:
            rows = list(self._rows)
            recorded = self._recorded
        if limit is not None:
            rows = rows[-limit:]
        return {
            "schema": 1,
            "capacity": self.capacity,
            "recorded": recorded,
            "columns": list(SAMPLE_COLUMNS),
            "latest": dict(rows[-1]) if rows else None,
            "samples": [dict(row) for row in rows],
        }
