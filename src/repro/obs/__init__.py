"""Simulation observability: tracing, metrics, profiling, and reports.

* :class:`~repro.obs.tracer.Tracer` — typed structured event tracing
  (JSONL / Chrome trace-event output, per-kind/node/address filtering,
  bounded ring-buffer mode).  :data:`~repro.obs.tracer.NULL_TRACER` is
  the zero-overhead default every component holds when tracing is off.
* :class:`~repro.obs.metrics.MetricsRegistry` — named, labeled metric
  series (counters, gauges, histograms) threaded through the coherence
  / LVP / SLE layers; exports JSON and Prometheus text.
  :data:`~repro.obs.metrics.NULL_METRICS` is the no-op default.
* :class:`~repro.obs.progress.MatrixProgress` /
  :class:`~repro.obs.progress.RunManifest` — parallel-run telemetry:
  live per-cell progress and the persisted per-cell provenance record.
* :func:`~repro.obs.regress.compare_reports` — cross-run perf
  regression tracking (the ``repro-sim bench --compare`` gate).
* :class:`~repro.obs.profiler.SimProfiler` — per-component event counts
  and wall-time attribution from the scheduler;
  :class:`~repro.obs.profiler.Heartbeat` — periodic progress logging.
* :func:`~repro.obs.report.load_trace` /
  :func:`~repro.obs.report.summarize_trace` — load (tolerantly) and
  summarize a trace file (the ``repro-sim report`` command).
* :func:`~repro.obs.spans.collect_spans` — fold a trace's
  ``span.begin`` / ``span.end`` events back into causal
  :class:`~repro.obs.spans.SpanRecord` chains.
* :func:`~repro.obs.provenance.analyze_events` — attribute every
  communication miss to a temporal-silence provenance class and
  reconcile the totals against the metrics registry (the
  ``repro-sim explain`` command).
"""

from repro.obs.metrics import (
    NULL_METRICS,
    MetricFamily,
    MetricsRegistry,
    MirroredCounter,
)
from repro.obs.profiler import Heartbeat, SimProfiler
from repro.obs.progress import CellUpdate, MatrixProgress, RunManifest
from repro.obs.regress import (
    Comparison,
    Delta,
    compare_reports,
    load_report,
    render_comparison,
)
from repro.obs.provenance import (
    ProvenanceReport,
    analyze_events,
    reconcile,
    render_provenance,
)
from repro.obs.report import (
    TraceLoad,
    load_trace,
    read_trace,
    render_report,
    summarize_trace,
)
from repro.obs.spans import SpanRecord, SpanStream, collect_spans
from repro.obs.tracer import (
    EVENT_KINDS,
    NULL_TRACER,
    TraceEvent,
    TraceFilter,
    Tracer,
)

__all__ = [
    "EVENT_KINDS",
    "NULL_TRACER",
    "NULL_METRICS",
    "TraceEvent",
    "TraceFilter",
    "Tracer",
    "MetricFamily",
    "MetricsRegistry",
    "MirroredCounter",
    "CellUpdate",
    "MatrixProgress",
    "RunManifest",
    "Comparison",
    "Delta",
    "compare_reports",
    "load_report",
    "render_comparison",
    "SimProfiler",
    "Heartbeat",
    "SpanRecord",
    "SpanStream",
    "collect_spans",
    "ProvenanceReport",
    "analyze_events",
    "reconcile",
    "render_provenance",
    "TraceLoad",
    "load_trace",
    "read_trace",
    "render_report",
    "summarize_trace",
]
