"""Simulation observability: tracing, profiling, and trace reports.

* :class:`~repro.obs.tracer.Tracer` — typed structured event tracing
  (JSONL / Chrome trace-event output, per-kind/node/address filtering,
  bounded ring-buffer mode).  :data:`~repro.obs.tracer.NULL_TRACER` is
  the zero-overhead default every component holds when tracing is off.
* :class:`~repro.obs.profiler.SimProfiler` — per-component event counts
  and wall-time attribution from the scheduler;
  :class:`~repro.obs.profiler.Heartbeat` — periodic progress logging.
* :func:`~repro.obs.report.read_trace` /
  :func:`~repro.obs.report.summarize_trace` — load and summarize a
  trace file (the ``repro-sim report`` command).
"""

from repro.obs.profiler import Heartbeat, SimProfiler
from repro.obs.report import read_trace, render_report, summarize_trace
from repro.obs.tracer import (
    EVENT_KINDS,
    NULL_TRACER,
    TraceEvent,
    TraceFilter,
    Tracer,
)

__all__ = [
    "EVENT_KINDS",
    "NULL_TRACER",
    "TraceEvent",
    "TraceFilter",
    "Tracer",
    "SimProfiler",
    "Heartbeat",
    "read_trace",
    "render_report",
    "summarize_trace",
]
