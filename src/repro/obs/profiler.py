"""Profiling hooks: wall-time attribution and run heartbeats.

:class:`SimProfiler` instruments the discrete-event scheduler (via
:meth:`repro.common.events.Scheduler.enable_profiling`) to count events
and attribute wall time per component — callbacks are grouped by the
qualified name of the scheduling site (``SnoopBus.request``,
``Core.pump``, ...), which is exactly the breakdown needed to find the
hot component of a slow run.  When profiling is not enabled the
scheduler's fast path is untouched (the profiled step is swapped in as
an instance attribute, so the default ``step`` has no branch).

:class:`Heartbeat` emits a periodic progress line (cycles, committed
ops, IPC-so-far, events/sec) through the ``repro.heartbeat`` logger so
multi-minute runs are observable without tracing everything.
"""

from __future__ import annotations

import logging
import time
from collections import defaultdict
from typing import Callable

log = logging.getLogger("repro.heartbeat")


def component_of(callback: Callable) -> str:
    """Attribution label for a scheduled callback.

    Closures keep the qualified name of the function that created them
    (``SnoopBus.request.<locals>.<lambda>`` → ``SnoopBus.request``);
    bound methods use ``Class.method``.
    """
    qualname = getattr(callback, "__qualname__", None)
    if qualname is None:  # pragma: no cover - exotic callables
        return type(callback).__name__
    return qualname.split(".<locals>", 1)[0]


class SimProfiler:
    """Per-component event counts and wall-time attribution."""

    def __init__(self):
        self.counts: dict[str, int] = defaultdict(int)
        self.seconds: dict[str, float] = defaultdict(float)

    def record(self, label: str, seconds: float) -> None:
        """Account one fired event to ``label``."""
        self.counts[label] += 1
        self.seconds[label] += seconds

    @property
    def total_events(self) -> int:
        """Total events attributed so far."""
        return sum(self.counts.values())

    @property
    def total_seconds(self) -> float:
        """Total wall time attributed so far."""
        return sum(self.seconds.values())

    def rows(self) -> list[tuple[str, int, float]]:
        """``(label, events, seconds)`` rows, most expensive first."""
        return sorted(
            ((k, self.counts[k], self.seconds[k]) for k in self.counts),
            key=lambda r: r[2],
            reverse=True,
        )

    def report(self, top: int = 20) -> str:
        """Render the attribution table."""
        total_s = self.total_seconds or 1e-12
        lines = [
            f"{'component':<40s} {'events':>10s} {'seconds':>9s} {'share':>6s}"
        ]
        for label, count, seconds in self.rows()[:top]:
            lines.append(
                f"{label:<40s} {count:>10d} {seconds:>9.3f} "
                f"{100 * seconds / total_s:>5.1f}%"
            )
        lines.append(
            f"{'TOTAL':<40s} {self.total_events:>10d} "
            f"{self.total_seconds:>9.3f} 100.0%"
        )
        return "\n".join(lines)


class Heartbeat:
    """Periodic progress reporting for long simulations.

    Every ``interval`` cycles, logs the simulated cycle count and the
    metrics supplied by ``progress`` (a callable returning a dict, e.g.
    committed ops and IPC-so-far), plus the wall-clock event rate.
    The heartbeat stops rescheduling itself once ``stop`` returns True,
    so it never keeps the event queue alive after the run finishes.
    """

    def __init__(
        self,
        scheduler,
        interval: int,
        progress: Callable[[], dict] | None = None,
        stop: Callable[[], bool] | None = None,
    ):
        if interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        self.scheduler = scheduler
        self.interval = interval
        self.progress = progress
        self.stop = stop
        self.beats = 0
        self._wall_start = time.perf_counter()
        self._last_events = scheduler.events_fired
        self._last_wall = self._wall_start
        scheduler.after(interval, self._tick)

    def _tick(self) -> None:
        self.beats += 1
        now_wall = time.perf_counter()
        events = self.scheduler.events_fired
        rate = (events - self._last_events) / max(now_wall - self._last_wall, 1e-9)
        self._last_events, self._last_wall = events, now_wall
        extra = ""
        if self.progress is not None:
            parts = [f"{k}={v:.3g}" if isinstance(v, float) else f"{k}={v}"
                     for k, v in self.progress().items()]
            extra = " " + " ".join(parts)
        log.info(
            "cycle=%d events=%d events/s=%.0f%s",
            self.scheduler.now, events, rate, extra,
        )
        if self.stop is None or not self.stop():
            self.scheduler.after(self.interval, self._tick)
