"""Per-job distributed trace store for the simulation service.

The service keeps one bounded span buffer *per job trace* rather than
one global ring: a large cell folding thousands of coherence spans
into its job must not evict another job's causal tree.  Spans are
minted here (service side: ``job``, ``cell.lease``, ``cell.run``,
``cell.cache_hit`` — see :data:`repro.obs.spans.SERVICE_SPAN_NAMES`)
or ingested as folded worker payloads (:func:`repro.obs.spans.
fold_spans` / :func:`~repro.obs.spans.remap_spans`), and exported as
the same span-event JSONL the tracer writes, so ``repro-sim report``
(and its ``--chrome`` export) consume a job trace unchanged.

Thread-safety: span ids come from one ``itertools.count`` and every
buffer mutation happens under one reentrant lock, because the queue
mints spans from executor threads while the worker shard mints them
on the event loop.  Two clock domains share a trace: service spans
are stamped in perf-counter microseconds, ingested worker spans keep
their simulated-cycle timestamps and carry ``clock: "cycles"`` so
viewers and reports can tell them apart.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from itertools import count
from typing import Any, Iterable

#: Traces retained (whole oldest traces are evicted beyond this).
DEFAULT_MAX_TRACES = 64

#: Span events retained per trace; the excess is counted, not kept.
DEFAULT_MAX_EVENTS = 50_000


def _microseconds() -> int:
    """Default timestamp: monotonic perf-counter microseconds."""
    return int(time.perf_counter() * 1e6)


class _TraceBuf:
    """One trace's event rows plus overflow accounting."""

    __slots__ = ("rows", "dropped")

    def __init__(self):
        self.rows: list[dict[str, Any]] = []
        self.dropped = 0


class JobTraceStore:
    """Bounded, thread-safe store of span events keyed by trace id."""

    def __init__(
        self,
        max_traces: int = DEFAULT_MAX_TRACES,
        max_events: int = DEFAULT_MAX_EVENTS,
        clock=_microseconds,
    ):
        self.max_traces = max_traces
        self.max_events = max_events
        self.clock = clock
        self._lock = threading.RLock()
        self._traces: OrderedDict[str, _TraceBuf] = OrderedDict()
        self._span_ids = count(1)

    # -- span minting (service side) -------------------------------------

    def span_begin(
        self,
        trace: str,
        name: str,
        parent: int | None = None,
        ts: int | None = None,
        **fields: Any,
    ) -> int:
        """Open a service span on ``trace``; returns its id."""
        sid = next(self._span_ids)
        row: dict[str, Any] = {
            "ts": ts if ts is not None else self.clock(),
            "kind": "span.begin",
            "span": sid,
            "name": name,
            "trace": trace,
        }
        if parent is not None:
            row["parent"] = parent
        row.update(fields)
        self._append(trace, [row])
        return sid

    def span_end(
        self,
        trace: str,
        span: int | None,
        ts: int | None = None,
        **fields: Any,
    ) -> None:
        """Close a span; ``None`` (span never opened) is ignored."""
        if span is None:
            return
        row: dict[str, Any] = {
            "ts": ts if ts is not None else self.clock(),
            "kind": "span.end",
            "span": span,
        }
        row.update(fields)
        self._append(trace, [row])

    def ingest(self, trace: str, spans: Iterable[dict], truncated: int = 0) -> None:
        """Add remapped worker spans (see :func:`~repro.obs.spans.remap_spans`).

        Each folded span becomes a begin row (and an end row when the
        span closed worker-side) stamped ``clock: "cycles"`` — worker
        timestamps are simulated cycles, not service microseconds.
        """
        rows: list[dict[str, Any]] = []
        for rec in spans:
            begin: dict[str, Any] = {
                "ts": rec.get("begin", 0),
                "kind": "span.begin",
                "span": rec.get("span"),
                "name": rec.get("name", "span"),
                "trace": trace,
                "clock": "cycles",
            }
            if rec.get("node") is not None:
                begin["node"] = rec["node"]
            if rec.get("base") is not None:
                begin["base"] = rec["base"]
            if rec.get("parent") is not None:
                begin["parent"] = rec["parent"]
            begin.update(rec.get("fields") or {})
            rows.append(begin)
            if rec.get("end") is not None:
                rows.append(
                    {
                        "ts": rec["end"],
                        "kind": "span.end",
                        "span": rec.get("span"),
                    }
                )
        with self._lock:
            self._append(trace, rows)
            if truncated:
                self._buf(trace).dropped += truncated

    # -- read side -------------------------------------------------------

    def has(self, trace: str) -> bool:
        """True if ``trace`` still has a buffer (not yet evicted)."""
        with self._lock:
            return trace in self._traces

    def traces(self) -> list[str]:
        """Retained trace ids, oldest first."""
        with self._lock:
            return list(self._traces)

    def events(self, trace: str) -> list[dict[str, Any]]:
        """The trace's span-event rows in emission order (copies)."""
        with self._lock:
            buf = self._traces.get(trace)
            return [dict(row) for row in buf.rows] if buf else []

    def dropped(self, trace: str) -> int:
        """Rows lost to the per-trace cap plus worker-side truncation."""
        with self._lock:
            buf = self._traces.get(trace)
            return buf.dropped if buf else 0

    def to_jsonl(self, trace: str) -> str:
        """Span-event JSONL (the tracer's wire format) for one trace.

        Ends with a meta trailer carrying ``trace``/``events``/
        ``dropped`` so consumers can detect bounded-buffer loss; the
        report loader counts the trailer as one skipped line.
        """
        with self._lock:
            buf = self._traces.get(trace)
            rows = list(buf.rows) if buf else []
            dropped = buf.dropped if buf else 0
        lines = [json.dumps(row) for row in rows]
        lines.append(
            json.dumps(
                {"meta": "job-trace", "trace": trace, "events": len(rows),
                 "dropped": dropped}
            )
        )
        return "\n".join(lines) + "\n"

    def stats(self) -> dict[str, Any]:
        """Occupancy summary for telemetry sampling."""
        with self._lock:
            return {
                "traces": len(self._traces),
                "events": sum(len(b.rows) for b in self._traces.values()),
                "dropped": sum(b.dropped for b in self._traces.values()),
            }

    # -- internals -------------------------------------------------------

    def _buf(self, trace: str) -> _TraceBuf:
        buf = self._traces.get(trace)
        if buf is None:
            buf = self._traces[trace] = _TraceBuf()
            while len(self._traces) > self.max_traces:
                self._traces.popitem(last=False)
        return buf

    def _append(self, trace: str, rows: list[dict[str, Any]]) -> None:
        with self._lock:
            buf = self._buf(trace)
            room = self.max_events - len(buf.rows)
            if room < len(rows):
                buf.dropped += len(rows) - max(room, 0)
                rows = rows[: max(room, 0)]
            buf.rows.extend(rows)
