"""Structured, typed simulation tracing.

Every interesting protocol moment — a bus grant, a cache state
transition (including T and Validate_Shared), a validate broadcast or
suppression, an LVP prediction/verification/squash, an SLE
attempt/abort — is emitted as a :class:`TraceEvent` with the simulated
cycle, the node, the line address, and event-specific fields.  Traces
serialize to JSON-lines (one event per line, grep/jq-friendly) or to
the Chrome trace-event format (open in Perfetto / ``chrome://tracing``
with one track per node).

The taxonomy is the closed set in :data:`EVENT_KINDS`; dotted names
group related events (``bus.*``, ``cache.*``, ``validate.*``,
``lvp.*``, ``sle.*``, ``mem.*``, ``predictor.*``) so filters can match
whole families by prefix.

Disabled-by-default with zero cost: components hold a tracer reference
that defaults to :data:`NULL_TRACER`, a dedicated no-op object that
shares no code with :class:`Tracer` — there is no ``if enabled`` branch
or filtering logic on the default path, only an empty method.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.common.errors import ConfigError

#: The closed event taxonomy.  Dotted prefixes group families.
EVENT_KINDS = frozenset(
    {
        # Address network / interconnect.
        "bus.grant",          # transaction granted; aggregate snoop result
        "bus.cancel",         # transaction cancelled at pre-grant fixup
        # L2 line state machine (any protocol, incl. T and VS states).
        "cache.transition",   # frm/to states, via = transaction kind
        # Temporal-silence validate lifecycle.
        "validate.broadcast",  # TS detected and validate sent
        "validate.suppressed", # TS detected, policy suppressed the validate
        "validate.revalidate", # remote T copy re-installed by a validate
        # Useful-validate predictor (Figure 4).
        "predictor.decide",   # confidence read at TS-detect: send yes/no
        "predictor.train",    # confidence bumped (+/-) with the cause
        # Load value prediction from stale lines.
        "lvp.predict",        # stale word delivered speculatively
        "lvp.verify",         # coherent data confirmed the prediction(s)
        "lvp.squash",         # mismatch: machine squash at oldest consumer
        # Speculative lock elision.
        "sle.attempt",        # elision begun for a candidate region
        "sle.commit",         # region committed atomically
        "sle.abort",          # region aborted (reason field)
        "sle.fallback",       # non-retried abort: fallback acquisition
        # Memory hierarchy timing.
        "mem.miss",           # one line miss, emitted at fill with dur
    }
)


@dataclass
class TraceEvent:
    """One structured trace event."""

    ts: int
    kind: str
    node: int | None = None
    base: int | None = None
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Flatten to the JSONL wire form."""
        out: dict[str, Any] = {"ts": self.ts, "kind": self.kind}
        if self.node is not None:
            out["node"] = self.node
        if self.base is not None:
            out["base"] = self.base
        out.update(self.fields)
        return out


class TraceFilter:
    """Per-kind / per-node / per-address event filter.

    ``kinds`` entries match exactly or by dotted prefix (``bus`` and
    ``bus.`` both match every ``bus.*`` event); ``nodes`` and ``bases``
    match exactly (events without a node/base always pass that clause).
    """

    def __init__(
        self,
        kinds: Iterable[str] | None = None,
        nodes: Iterable[int] | None = None,
        bases: Iterable[int] | None = None,
    ):
        self.kinds = tuple(k.rstrip(".") for k in kinds) if kinds else None
        self.nodes = frozenset(nodes) if nodes is not None else None
        self.bases = frozenset(bases) if bases is not None else None

    def matches(self, kind: str, node: int | None, base: int | None) -> bool:
        """True if an event with these coordinates should be kept."""
        if self.kinds is not None and not any(
            kind == k or kind.startswith(k + ".") for k in self.kinds
        ):
            return False
        if self.nodes is not None and node is not None and node not in self.nodes:
            return False
        if self.bases is not None and base is not None and base not in self.bases:
            return False
        return True

    @classmethod
    def parse(cls, expr: str) -> "TraceFilter":
        """Parse a CLI filter expression.

        Grammar: comma-separated ``key=value[|value...]`` clauses with
        keys ``kind``, ``node``, ``addr``.  Node values may be ranges
        (``0-3``); addresses accept ``0x`` hex.  Example::

            kind=validate|bus.grant,node=0-3,addr=0x1440
        """
        kinds: list[str] = []
        nodes: list[int] = []
        bases: list[int] = []
        for clause in filter(None, (c.strip() for c in expr.split(","))):
            key, sep, values = clause.partition("=")
            key = key.strip()
            if not sep:
                raise ConfigError(f"bad trace filter clause {clause!r}")
            for value in values.split("|"):
                value = value.strip()
                if key == "kind":
                    kinds.append(value)
                elif key == "node":
                    lo, dash, hi = value.partition("-")
                    if dash:
                        nodes.extend(range(int(lo), int(hi) + 1))
                    else:
                        nodes.append(int(value))
                elif key == "addr":
                    bases.append(int(value, 0))
                else:
                    raise ConfigError(f"unknown trace filter key {key!r}")
        return cls(
            kinds=kinds or None,
            nodes=nodes or None,
            bases=bases or None,
        )


class _NullTracer:
    """The do-nothing tracer installed by default.

    Deliberately *not* a :class:`Tracer` subclass: the default
    (untraced) simulation path reaches only this empty method and
    shares none of the real tracer's filtering or buffering code.
    """

    __slots__ = ()

    def emit(self, kind, node=None, base=None, ts=None, **fields):
        """Discard the event."""


#: Shared process-wide no-op tracer; components default to this.
NULL_TRACER = _NullTracer()


class Tracer:
    """Collects :class:`TraceEvent` records during a simulation.

    ``clock`` supplies the current cycle (bound to the scheduler by
    :meth:`bind_clock` — :class:`repro.system.system.System` does this
    automatically).  ``ring`` bounds the buffer to the most recent N
    events (long-run flight-recorder mode); unbounded otherwise.
    """

    def __init__(
        self,
        clock: Callable[[], int] | None = None,
        filter: TraceFilter | None = None,
        ring: int | None = None,
    ):
        if ring is not None and ring <= 0:
            raise ConfigError(f"trace ring size must be positive, got {ring}")
        self._clock = clock or (lambda: 0)
        self.filter = filter
        self.ring = ring
        self._events: deque[TraceEvent] | list[TraceEvent]
        self._events = deque(maxlen=ring) if ring else []
        self.dropped = 0  # events rejected by the filter

    def bind_clock(self, scheduler) -> None:
        """Read timestamps from ``scheduler.now`` from now on."""
        self._clock = lambda: scheduler.now

    def emit(
        self,
        kind: str,
        node: int | None = None,
        base: int | None = None,
        ts: int | None = None,
        **fields: Any,
    ) -> None:
        """Record one event (``ts`` overrides the clock, e.g. for
        duration events stamped at their start time)."""
        if self.filter is not None and not self.filter.matches(kind, node, base):
            self.dropped += 1
            return
        self._events.append(
            TraceEvent(
                ts=ts if ts is not None else self._clock(),
                kind=kind,
                node=node,
                base=base,
                fields=fields,
            )
        )

    @property
    def events(self) -> list[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    # -- serialization ---------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per line, in emission order."""
        return "\n".join(json.dumps(e.to_dict()) for e in self._events)

    def to_chrome(self) -> dict[str, Any]:
        """The Chrome trace-event format (Perfetto-compatible).

        One ``tid`` track per node; events carrying a ``dur`` field
        become complete (``X``) duration events, the rest instants.
        Events are sorted by timestamp so viewers see a monotone
        timeline even when duration events were stamped retroactively.
        """
        trace_events = []
        for e in sorted(self._events, key=lambda e: e.ts):
            args = dict(e.fields)
            if e.base is not None:
                args["base"] = f"{e.base:#x}"
            record: dict[str, Any] = {
                "name": e.kind,
                "cat": e.kind.split(".", 1)[0],
                "ts": e.ts,
                "pid": 0,
                "tid": e.node if e.node is not None else -1,
                "args": args,
            }
            dur = args.pop("dur", None)
            if dur is not None:
                record["ph"] = "X"
                record["dur"] = dur
            else:
                record["ph"] = "i"
                record["s"] = "t"
            trace_events.append(record)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ns",
            "metadata": {"clock": "cycles"},
        }

    def save(self, path, format: str = "jsonl") -> None:
        """Write the trace to ``path`` as ``jsonl`` or ``chrome``."""
        if format == "jsonl":
            text = self.to_jsonl() + "\n"
        elif format == "chrome":
            text = json.dumps(self.to_chrome(), indent=1)
        else:
            raise ConfigError(f"unknown trace format {format!r}")
        with open(path, "w") as fh:
            fh.write(text)
