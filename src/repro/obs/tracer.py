"""Structured, typed simulation tracing.

Every interesting protocol moment — a bus grant, a cache state
transition (including T and Validate_Shared), a validate broadcast or
suppression, an LVP prediction/verification/squash, an SLE
attempt/abort — is emitted as a :class:`TraceEvent` with the simulated
cycle, the node, the line address, and event-specific fields.  Traces
serialize to JSON-lines (one event per line, grep/jq-friendly) or to
the Chrome trace-event format (open in Perfetto / ``chrome://tracing``
with one track per node).

The taxonomy is the closed set in :data:`EVENT_KINDS`; dotted names
group related events (``bus.*``, ``cache.*``, ``validate.*``,
``lvp.*``, ``sle.*``, ``mem.*``, ``predictor.*``) so filters can match
whole families by prefix.

Disabled-by-default with zero cost: components hold a tracer reference
that defaults to :data:`NULL_TRACER`, a dedicated no-op object that
shares no code with :class:`Tracer` — there is no ``if enabled`` branch
or filtering logic on the default path, only an empty method.

Beyond point events, the tracer carries *spans*: begin/end pairs with
parent links that bound causal episodes (a miss's MSHR lifetime, a bus
transaction, a validate episode, an SLE region).  Span ids are minted
by :meth:`Tracer.span_begin` from a monotonic counter, so they are
deterministic across runs; :mod:`repro.obs.spans` reconstructs them
and :mod:`repro.obs.provenance` builds miss/validate attributions on
top.  A tracer is also a context manager with an ``atexit`` safety
net: attach a sink path and a crashed or interrupted run still writes
the partial buffer instead of losing it.
"""

from __future__ import annotations

import atexit
import json
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Callable, Iterable, Iterator

from repro.common.errors import ConfigError
from repro.obs.spans import chrome_span_records, collect_spans, spans_to_jsonl

#: The closed event taxonomy.  Dotted prefixes group families.
EVENT_KINDS = frozenset(
    {
        # Address network / interconnect.
        "bus.grant",          # transaction granted; aggregate snoop result
        "bus.cancel",         # transaction cancelled at pre-grant fixup
        # L2 line state machine (any protocol, incl. T and VS states).
        "cache.transition",   # frm/to states, via = transaction kind
        # Temporal-silence validate lifecycle.
        "validate.broadcast",  # TS detected and validate sent
        "validate.suppressed", # TS detected, policy suppressed the validate
        "validate.revalidate", # remote T copy re-installed by a validate
        # Useful-validate predictor (Figure 4).
        "predictor.decide",   # confidence read at TS-detect: send yes/no
        "predictor.train",    # confidence bumped (+/-) with the cause
        # Load value prediction from stale lines.
        "lvp.predict",        # stale word delivered speculatively
        "lvp.verify",         # coherent data confirmed the prediction(s)
        "lvp.squash",         # mismatch: machine squash at oldest consumer
        # Speculative lock elision.
        "sle.attempt",        # elision begun for a candidate region
        "sle.commit",         # region committed atomically
        "sle.abort",          # region aborted (reason field)
        "sle.fallback",       # non-retried abort: fallback acquisition
        # Memory hierarchy timing.
        "mem.miss",           # one line miss, emitted at fill with dur
        # Causal spans (see repro.obs.spans).
        "span.begin",         # span opened: id, name, optional parent
        "span.end",           # span closed: id, outcome fields
    }
)


@dataclass
class TraceEvent:
    """One structured trace event."""

    ts: int
    kind: str
    node: int | None = None
    base: int | None = None
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Flatten to the JSONL wire form."""
        out: dict[str, Any] = {"ts": self.ts, "kind": self.kind}
        if self.node is not None:
            out["node"] = self.node
        if self.base is not None:
            out["base"] = self.base
        out.update(self.fields)
        return out


class TraceFilter:
    """Per-kind / per-node / per-address event filter.

    ``kinds`` entries match exactly or by dotted prefix (``bus`` and
    ``bus.`` both match every ``bus.*`` event); ``nodes`` and ``bases``
    match exactly (events without a node/base always pass that clause).
    """

    def __init__(
        self,
        kinds: Iterable[str] | None = None,
        nodes: Iterable[int] | None = None,
        bases: Iterable[int] | None = None,
    ):
        self.kinds = tuple(k.rstrip(".") for k in kinds) if kinds else None
        self.nodes = frozenset(nodes) if nodes is not None else None
        self.bases = frozenset(bases) if bases is not None else None

    def matches(self, kind: str, node: int | None, base: int | None) -> bool:
        """True if an event with these coordinates should be kept."""
        if self.kinds is not None and not any(
            kind == k or kind.startswith(k + ".") for k in self.kinds
        ):
            return False
        if self.nodes is not None and node is not None and node not in self.nodes:
            return False
        if self.bases is not None and base is not None and base not in self.bases:
            return False
        return True

    @classmethod
    def parse(cls, expr: str) -> "TraceFilter":
        """Parse a CLI filter expression.

        Grammar: comma-separated ``key=value[|value...]`` clauses with
        keys ``kind``, ``node``, ``addr``.  Node values may be ranges
        (``0-3``); addresses accept ``0x`` hex.  Example::

            kind=validate|bus.grant,node=0-3,addr=0x1440
        """
        kinds: list[str] = []
        nodes: list[int] = []
        bases: list[int] = []
        for clause in filter(None, (c.strip() for c in expr.split(","))):
            key, sep, values = clause.partition("=")
            key = key.strip()
            if not sep:
                raise ConfigError(f"bad trace filter clause {clause!r}")
            for value in values.split("|"):
                value = value.strip()
                if key == "kind":
                    kinds.append(value)
                elif key == "node":
                    lo, dash, hi = value.partition("-")
                    if dash:
                        nodes.extend(range(int(lo), int(hi) + 1))
                    else:
                        nodes.append(int(value))
                elif key == "addr":
                    bases.append(int(value, 0))
                else:
                    raise ConfigError(f"unknown trace filter key {key!r}")
        return cls(
            kinds=kinds or None,
            nodes=nodes or None,
            bases=bases or None,
        )


class _NullSpan:
    """No-op span context manager returned by ``_NullTracer.span``."""

    __slots__ = ()

    def __enter__(self):
        """Enter the no-op span; there is no span id."""
        return None

    def __exit__(self, exc_type, exc, tb):
        """Leave the no-op span without suppressing exceptions."""
        return False


_NULL_SPAN = _NullSpan()


class _NullTracer:
    """The do-nothing tracer installed by default.

    Deliberately *not* a :class:`Tracer` subclass: the default
    (untraced) simulation path reaches only these empty methods and
    shares none of the real tracer's filtering or buffering code.
    """

    __slots__ = ()

    def emit(self, kind, node=None, base=None, ts=None, **fields):
        """Discard the event."""

    def span_begin(self, name, node=None, base=None, parent=None, ts=None,
                   **fields):
        """Discard the span; the null span id is None."""
        return None

    def span_end(self, span, node=None, base=None, ts=None, **fields):
        """Discard the span end."""

    def span(self, name, node=None, base=None, parent=None, **fields):
        """Return the shared no-op span context manager."""
        return _NULL_SPAN


#: Shared process-wide no-op tracer; components default to this.
NULL_TRACER = _NullTracer()


class Tracer:
    """Collects :class:`TraceEvent` records during a simulation.

    ``clock`` supplies the current cycle (bound to the scheduler by
    :meth:`bind_clock` — :class:`repro.system.system.System` does this
    automatically).  ``ring`` bounds the buffer to the most recent N
    events (long-run flight-recorder mode); unbounded otherwise.

    ``path``/``format`` attach a *sink*: the trace is written there by
    :meth:`close` (or the context-manager exit), and — crash safety —
    by an ``atexit`` hook if the process dies with the tracer still
    open, so an interrupted run keeps its partial trace.
    """

    def __init__(
        self,
        clock: Callable[[], int] | None = None,
        filter: TraceFilter | None = None,
        ring: int | None = None,
        path=None,
        format: str = "jsonl",
    ):
        if ring is not None and ring <= 0:
            raise ConfigError(f"trace ring size must be positive, got {ring}")
        self._clock = clock or (lambda: 0)
        self.filter = filter
        self.ring = ring
        self._events: deque[TraceEvent] | list[TraceEvent]
        self._events = deque(maxlen=ring) if ring else []
        self.dropped = 0  # events rejected by the filter
        # itertools.count: next() is atomic under the GIL, so span ids
        # stay unique when the service mints spans from both the event
        # loop and executor threads.
        self._span_ids = count(1)
        self._sink_path = None
        self._sink_format = "jsonl"
        self._atexit_registered = False
        if path is not None:
            self.attach_sink(path, format)

    def bind_clock(self, scheduler) -> None:
        """Read timestamps from ``scheduler.now`` from now on."""
        self._clock = lambda: scheduler.now

    def emit(
        self,
        kind: str,
        node: int | None = None,
        base: int | None = None,
        ts: int | None = None,
        **fields: Any,
    ) -> None:
        """Record one event (``ts`` overrides the clock, e.g. for
        duration events stamped at their start time)."""
        if self.filter is not None and not self.filter.matches(kind, node, base):
            self.dropped += 1
            return
        self._events.append(
            TraceEvent(
                ts=ts if ts is not None else self._clock(),
                kind=kind,
                node=node,
                base=base,
                fields=fields,
            )
        )

    # -- spans -----------------------------------------------------------

    def span_begin(
        self,
        name: str,
        node: int | None = None,
        base: int | None = None,
        parent: int | None = None,
        ts: int | None = None,
        **fields: Any,
    ) -> int:
        """Open a span; returns its id (thread it to :meth:`span_end`).

        Ids come from a per-tracer monotonic counter, so they are
        deterministic and double as creation order.  ``parent`` links
        this span under another, forming the causal tree.
        """
        sid = next(self._span_ids)
        if parent is not None:
            fields["parent"] = parent
        self.emit("span.begin", node=node, base=base, ts=ts, span=sid,
                  name=name, **fields)
        return sid

    def span_end(
        self,
        span: int | None,
        node: int | None = None,
        base: int | None = None,
        ts: int | None = None,
        **fields: Any,
    ) -> None:
        """Close a span; ``None`` (the null span id) is ignored, so
        call sites never branch on whether tracing is enabled."""
        if span is None:
            return
        self.emit("span.end", node=node, base=base, ts=ts, span=span, **fields)

    @contextmanager
    def span(
        self,
        name: str,
        node: int | None = None,
        base: int | None = None,
        parent: int | None = None,
        **fields: Any,
    ):
        """Context manager bounding a span; yields the span id."""
        sid = self.span_begin(name, node=node, base=base, parent=parent,
                              **fields)
        try:
            yield sid
        finally:
            self.span_end(sid, node=node, base=base)

    @property
    def spans_truncated(self) -> int:
        """Span ends whose begin was evicted from the ring buffer.

        Computed on demand from the buffer (no hot-path bookkeeping);
        non-zero means the span set is incomplete and downstream
        analysis should treat per-span data as a sample.
        """
        return collect_spans(self._events).truncated

    # -- crash safety ----------------------------------------------------

    def attach_sink(self, path, format: str = "jsonl") -> None:
        """Write the trace to ``path`` at close/exit (flush-on-crash).

        Registers an ``atexit`` hook so the buffer survives an
        unhandled exception or interrupt; :meth:`close` (or leaving
        the ``with`` block) writes the file and unregisters the hook.
        """
        if format not in ("jsonl", "chrome", "spans"):
            raise ConfigError(f"unknown trace format {format!r}")
        self._sink_path = path
        self._sink_format = format
        if not self._atexit_registered:
            atexit.register(self._atexit_flush)
            self._atexit_registered = True

    def _atexit_flush(self) -> None:
        """Best-effort sink write at interpreter exit (never raises)."""
        if self._sink_path is None:
            return
        try:
            self.save(self._sink_path, format=self._sink_format)
        except Exception:  # noqa: BLE001 - crash path must not mask exit
            pass

    def close(self) -> None:
        """Write the attached sink (if any) and drop the atexit hook."""
        if self._atexit_registered:
            atexit.unregister(self._atexit_flush)
            self._atexit_registered = False
        if self._sink_path is not None:
            self.save(self._sink_path, format=self._sink_format)

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    @property
    def events(self) -> list[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    # -- serialization ---------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per line, in emission order."""
        return "\n".join(json.dumps(e.to_dict()) for e in self._events)

    def to_chrome(self) -> dict[str, Any]:
        """The Chrome trace-event format (see :func:`chrome_document`)."""
        return chrome_document(self._events, spans_truncated=self.spans_truncated)

    def to_spans(self) -> str:
        """Span-JSONL: one object per reconstructed span, plus a meta
        trailer with ``count``/``open``/``truncated`` health fields."""
        return spans_to_jsonl(self._events)

    def save(self, path, format: str = "jsonl") -> None:
        """Write the trace to ``path`` as ``jsonl``, ``chrome`` or
        ``spans``."""
        if format == "jsonl":
            text = self.to_jsonl() + "\n"
        elif format == "chrome":
            text = json.dumps(self.to_chrome(), indent=1)
        elif format == "spans":
            text = self.to_spans()
        else:
            raise ConfigError(f"unknown trace format {format!r}")
        with open(path, "w") as fh:
            fh.write(text)


def chrome_document(
    events: Iterable[TraceEvent], spans_truncated: int | None = None
) -> dict[str, Any]:
    """Render any event stream as a Chrome trace document.

    One ``tid`` track per node; events carrying a ``dur`` field
    become complete (``X``) duration events, the rest instants.
    ``span.begin``/``span.end`` become async (``b``/``e``) events
    keyed by span id, and parent links become flow (``s``/``f``)
    arrows from the parent's begin to the child's begin.  Events
    are sorted by timestamp so viewers see a monotone timeline
    even when duration events were stamped retroactively.

    Module-level (not a :class:`Tracer` method) so loaded traces —
    ``repro-sim report --chrome`` and the per-job service trace
    export — convert without round-tripping through a tracer.
    """
    events = sorted(events, key=lambda e: e.ts)
    if spans_truncated is None:
        spans_truncated = collect_spans(events).truncated
    # Prescan: span id -> (name, begin ts, tid) so end events can
    # carry the span's name and flow arrows can anchor on parents.
    begun: dict[int, tuple[str, int, int]] = {}
    for e in events:
        if e.kind == "span.begin":
            begun[e.fields.get("span")] = (
                e.fields.get("name", "span"),
                e.ts,
                e.node if e.node is not None else -1,
            )
    trace_events = []
    for e in events:
        if e.kind in ("span.begin", "span.end"):
            trace_events.extend(chrome_span_records(e, begun))
            continue
        args = dict(e.fields)
        if e.base is not None:
            args["base"] = f"{e.base:#x}"
        record: dict[str, Any] = {
            "name": e.kind,
            "cat": e.kind.split(".", 1)[0],
            "ts": e.ts,
            "pid": 0,
            "tid": e.node if e.node is not None else -1,
            "args": args,
        }
        dur = args.pop("dur", None)
        if dur is not None:
            record["ph"] = "X"
            record["dur"] = dur
        else:
            record["ph"] = "i"
            record["s"] = "t"
        trace_events.append(record)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "metadata": {
            "clock": "cycles",
            "spans_truncated": spans_truncated,
        },
    }
