"""Span stream: causal begin/end pairs reconstructed from trace events.

A *span* is one causally-bounded episode in the simulator — a miss's
MSHR lifetime, a bus transaction from issue to grant, a temporal-
silence detection through its validate's fate, an SLE elision region.
Spans are carried in-band in the ordinary trace-event stream as paired
``span.begin`` / ``span.end`` events whose ``span`` field holds an id
minted by :meth:`~repro.obs.tracer.Tracer.span_begin` (monotonic per
tracer, so runs are deterministic and ids double as creation order).
Parent links (``parent`` field on the begin event) form the causal
tree: a miss span parents the bus transaction it issues.

This module is the *read side*: it folds an event stream back into
:class:`SpanRecord` objects, serializes them as span-JSONL, and
renders the Chrome async/flow records the tracer's ``chrome`` export
embeds.  It deliberately does not import the tracer (the tracer
imports us), and treats events duck-typed: anything with ``ts``,
``kind``, ``node``, ``base`` and ``fields`` attributes works.

Ring-buffer interaction: when the tracer runs with a bounded ring, a
``span.begin`` may be evicted while its ``span.end`` survives.  Such
orphaned ends are counted in :attr:`SpanStream.truncated` — an
explicit marker that the span set is incomplete — rather than being
silently dropped or mispaired.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable

#: Event kinds that carry the span stream.
SPAN_EVENT_KINDS = frozenset({"span.begin", "span.end"})

#: The span vocabulary emitted by the simulator (see docs/observability.md).
SPAN_NAMES = (
    "miss",        # MSHR lifetime: request issue -> data delivery
    "txn",         # bus/directory transaction: issue -> grant (or cancel)
    "validate",    # temporal-silence episode: detect -> broadcast/suppress
    "sle.region",  # SLE elision attempt: speculation begin -> commit/fallback
)

#: Service-level spans minted by the job service (docs/service.md):
#: each one carries a ``trace`` field naming the job trace it belongs
#: to, so a single job's causal tree spans the HTTP request, the
#: queue, and the worker process.
SERVICE_SPAN_NAMES = (
    "job",             # submit accepted -> job terminal (done/failed/cancelled)
    "cell.lease",      # worker took the lease -> complete or bounce
    "cell.run",        # executor dispatch -> summary returned
    "cell.cache_hit",  # result-store probe satisfied the cell
)

#: Cap on worker-side spans folded into one cell's trace payload; the
#: excess is reported in the fold's ``truncated`` count, never silently.
CELL_SPAN_LIMIT = 20_000

#: Remapped worker span ids start at ``run_span * SPAN_REMAP_STRIDE``;
#: worker tracers mint small monotonic ids, so a stride of 2**32 keeps
#: every cell's remapped ids disjoint from each other and from the
#: service-side id space.
SPAN_REMAP_STRIDE = 1 << 32


@dataclass
class SpanRecord:
    """One reconstructed span: identity, bounds, parent, merged fields."""

    span: int
    name: str
    node: int | None
    base: int | None
    begin: int
    end: int | None = None
    parent: int | None = None
    fields: dict = field(default_factory=dict)

    @property
    def dur(self) -> int | None:
        """Span duration in cycles (None while the span is open)."""
        return None if self.end is None else self.end - self.begin

    def to_dict(self) -> dict:
        """JSON-safe representation (one span-JSONL line)."""
        out = {
            "span": self.span,
            "name": self.name,
            "node": self.node,
            "base": hex(self.base) if self.base is not None else None,
            "begin": self.begin,
            "end": self.end,
            "dur": self.dur,
            "parent": self.parent,
        }
        out.update(self.fields)
        return out


@dataclass
class SpanStream:
    """All spans recovered from one event stream, plus health counters."""

    spans: list[SpanRecord]
    by_id: dict[int, SpanRecord]
    truncated: int

    @property
    def open(self) -> int:
        """Spans with a begin but no end in the stream (crash/in-flight)."""
        return sum(1 for s in self.spans if s.end is None)

    def children(self, span_id: int) -> list[SpanRecord]:
        """Direct children of ``span_id`` in creation order."""
        return [s for s in self.spans if s.parent == span_id]


def collect_spans(events: Iterable) -> SpanStream:
    """Fold an event stream into :class:`SpanRecord` objects.

    End-event fields are merged into the record without overwriting
    begin-time fields of the same name.  A ``span.end`` whose begin is
    absent (ring eviction) or already closed increments ``truncated``.
    """
    spans: list[SpanRecord] = []
    by_id: dict[int, SpanRecord] = {}
    truncated = 0
    for ev in events:
        if ev.kind == "span.begin":
            fields = dict(ev.fields)
            sid = fields.pop("span", None)
            rec = SpanRecord(
                span=sid,
                name=fields.pop("name", "span"),
                node=ev.node,
                base=ev.base,
                begin=ev.ts,
                parent=fields.pop("parent", None),
                fields=fields,
            )
            spans.append(rec)
            if sid is not None:
                by_id[sid] = rec
        elif ev.kind == "span.end":
            sid = ev.fields.get("span")
            rec = by_id.get(sid)
            if rec is None or rec.end is not None:
                truncated += 1
                continue
            rec.end = ev.ts
            for key, value in ev.fields.items():
                if key != "span":
                    rec.fields.setdefault(key, value)
    return SpanStream(spans=spans, by_id=by_id, truncated=truncated)


def spans_to_jsonl(events: Iterable) -> str:
    """Serialize the reconstructed spans as span-JSONL.

    One JSON object per span in creation order, then a trailing meta
    record ``{"meta": "spans", "count": ..., "open": ...,
    "truncated": ...}`` so consumers can detect ring-buffer loss.
    """
    stream = collect_spans(events)
    lines = [json.dumps(rec.to_dict(), sort_keys=True) for rec in stream.spans]
    lines.append(
        json.dumps(
            {
                "meta": "spans",
                "count": len(stream.spans),
                "open": stream.open,
                "truncated": stream.truncated,
            },
            sort_keys=True,
        )
    )
    return "\n".join(lines) + "\n"


def fold_spans(events: Iterable, limit: int = CELL_SPAN_LIMIT) -> dict:
    """Fold an event stream into a plain-data span payload.

    The worker side of trace propagation: ``run_cell`` folds its
    tracer's span events into JSON/pickle-safe dicts that ride back
    across the process-pool boundary inside the summary.  Ids are the
    worker tracer's raw ids (remapped service-side by
    :func:`remap_spans`).  Returns ``{"spans", "count", "truncated"}``
    where ``count`` is the pre-cap span count and ``truncated`` counts
    both orphaned ends and spans dropped by ``limit``.
    """
    stream = collect_spans(events)
    kept = stream.spans[:limit]
    spans = [
        {
            "span": rec.span,
            "name": rec.name,
            "node": rec.node,
            "base": rec.base,
            "begin": rec.begin,
            "end": rec.end,
            "parent": rec.parent,
            "fields": dict(rec.fields),
        }
        for rec in kept
    ]
    return {
        "spans": spans,
        "count": len(stream.spans),
        "truncated": stream.truncated + (len(stream.spans) - len(kept)),
    }


def remap_spans(
    spans: Iterable[dict], base: int, parent: int | None, trace: str | None
) -> list[dict]:
    """Rebase folded worker spans into the service id space.

    Every id is shifted by ``base`` (``run_span * SPAN_REMAP_STRIDE``);
    roots — spans with no worker-side parent — are parented under
    ``parent`` (the service's ``cell.run`` span) and every span is
    stamped with the job ``trace``, so the worker's coherence spans
    hang off the submitting job's causal tree with the same trace id
    on both sides of the pool boundary.
    """
    out = []
    for rec in spans:
        rec = dict(rec)
        if rec.get("span") is not None:
            rec["span"] = base + rec["span"]
        if rec.get("parent") is not None:
            rec["parent"] = base + rec["parent"]
        else:
            rec["parent"] = parent
        rec["trace"] = trace
        out.append(rec)
    return out


def chrome_span_records(event, begun: dict) -> list[dict]:
    """Chrome records for one span event: async b/e plus flow links.

    ``begun`` maps span id -> ``(name, begin_ts, tid)`` for every
    ``span.begin`` in the stream (prescanned by the tracer so end
    events and parent links can resolve names and anchor points).
    A ``span.begin`` with a known parent also emits a flow-start /
    flow-finish pair connecting the parent's begin to this begin —
    the Chrome "flow event" arrows that make the causal tree visible
    in the trace viewer.
    """
    args = dict(event.fields)
    tid = event.node if event.node is not None else -1
    if event.base is not None:
        args["base"] = hex(event.base)
    records: list[dict] = []
    if event.kind == "span.begin":
        sid = args.pop("span", None)
        name = args.pop("name", "span")
        records.append(
            {
                "name": name, "cat": "span", "id": sid, "ph": "b",
                "ts": event.ts, "pid": 0, "tid": tid, "args": args,
            }
        )
        parent = args.get("parent")
        if parent is not None and parent in begun:
            _, parent_ts, parent_tid = begun[parent]
            flow = {"name": "span-link", "cat": "flow", "id": sid, "pid": 0}
            records.append(
                {**flow, "ph": "s", "ts": parent_ts, "tid": parent_tid}
            )
            records.append(
                {**flow, "ph": "f", "bp": "e", "ts": event.ts, "tid": tid}
            )
    else:
        sid = args.pop("span", None)
        info = begun.get(sid)
        records.append(
            {
                "name": info[0] if info else "span",
                "cat": "span", "id": sid, "ph": "e",
                "ts": event.ts, "pid": 0, "tid": tid, "args": args,
            }
        )
    return records
