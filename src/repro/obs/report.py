"""Trace file reading and summarization (``repro-sim report``).

Reads a trace written by :class:`repro.obs.tracer.Tracer` in either
format (JSONL or Chrome trace-event JSON), reduces it to counts per
event kind / per node / per hot line address plus the covered cycle
span, and renders a terminal report.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Any

from repro.common.errors import ConfigError
from repro.obs.tracer import TraceEvent


def read_trace(path) -> list[TraceEvent]:
    """Load a JSONL or Chrome-format trace back into events.

    Format auto-detection: a Chrome trace is one JSON document with a
    ``traceEvents`` key; anything else that parses line-by-line is
    JSONL (whose every line also starts with ``{``, so the whole-file
    parse — not the first character — is what disambiguates).
    """
    text = Path(path).read_text()
    if not text.strip():
        return []
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None  # multi-line JSONL
    if isinstance(doc, dict):
        if "traceEvents" in doc:
            return _from_chrome(doc)
        if "kind" not in doc:  # neither Chrome nor a single JSONL event
            raise ConfigError("not a Chrome trace: missing 'traceEvents'")
    events = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        raw = json.loads(line)
        events.append(
            TraceEvent(
                ts=raw.pop("ts"),
                kind=raw.pop("kind"),
                node=raw.pop("node", None),
                base=raw.pop("base", None),
                fields=raw,
            )
        )
    return events


def _from_chrome(doc: dict[str, Any]) -> list[TraceEvent]:
    if "traceEvents" not in doc:
        raise ConfigError("not a Chrome trace: missing 'traceEvents'")
    events = []
    for raw in doc["traceEvents"]:
        args = dict(raw.get("args", {}))
        base = args.pop("base", None)
        if isinstance(base, str):
            base = int(base, 0)
        if "dur" in raw:
            args["dur"] = raw["dur"]
        tid = raw.get("tid", -1)
        events.append(
            TraceEvent(
                ts=raw["ts"],
                kind=raw["name"],
                node=None if tid == -1 else tid,
                base=base,
                fields=args,
            )
        )
    return events


def summarize_trace(events: list[TraceEvent], top: int = 10) -> dict[str, Any]:
    """Reduce a trace to its headline numbers."""
    kinds = Counter(e.kind for e in events)
    nodes = Counter(e.node for e in events if e.node is not None)
    bases = Counter(e.base for e in events if e.base is not None)
    ts = [e.ts for e in events]
    return {
        "events": len(events),
        "first_ts": min(ts) if ts else 0,
        "last_ts": max(ts) if ts else 0,
        "kinds": dict(kinds.most_common()),
        "nodes": {f"P{n}": c for n, c in sorted(nodes.items())},
        "hot_lines": {f"{b:#x}": c for b, c in bases.most_common(top)},
    }


def render_report(summary: dict[str, Any]) -> str:
    """Render :func:`summarize_trace` output for the terminal."""
    lines = [
        f"events     : {summary['events']}",
        f"cycle span : {summary['first_ts']} .. {summary['last_ts']}"
        f" ({summary['last_ts'] - summary['first_ts']} cycles)",
        "",
        "by kind:",
    ]
    for kind, count in summary["kinds"].items():
        lines.append(f"  {kind:<22s} {count:>8d}")
    if summary["nodes"]:
        lines.append("")
        lines.append("by node:")
        for node, count in summary["nodes"].items():
            lines.append(f"  {node:<22s} {count:>8d}")
    if summary["hot_lines"]:
        lines.append("")
        lines.append("hottest lines:")
        for base, count in summary["hot_lines"].items():
            lines.append(f"  {base:<22s} {count:>8d}")
    return "\n".join(lines)
