"""Trace file reading and summarization (``repro-sim report``).

Reads a trace written by :class:`repro.obs.tracer.Tracer` in either
format (JSONL or Chrome trace-event JSON — including the bare
top-level-array Chrome variant), reduces it to counts per event kind /
per node / per hot line address plus the covered cycle span, and
renders a terminal report.  Loading is tolerant: an empty file is an
empty trace, and malformed lines/records are counted and skipped
rather than aborting the whole report (a trace from an interrupted run
is exactly when you want the report most).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.common.errors import ConfigError
from repro.obs.tracer import TraceEvent


@dataclass
class TraceLoad:
    """The outcome of loading a trace file.

    ``format`` is the detected input format (``jsonl``, ``chrome``, or
    ``empty``); ``skipped`` counts malformed lines/records that were
    dropped instead of raising.
    """

    events: list[TraceEvent] = field(default_factory=list)
    skipped: int = 0
    format: str = "empty"


def load_trace(path) -> TraceLoad:
    """Load a JSONL or Chrome-format trace, tolerating damage.

    Format auto-detection: a Chrome trace is one JSON document with a
    ``traceEvents`` key (or a bare top-level array of trace events —
    the variant Chrome itself accepts); anything else is treated as
    JSONL.  A whole-file parse — not the first character — is what
    disambiguates, since every JSONL line also starts with ``{``.

    Malformed JSONL lines (bad JSON, missing ``ts``/``kind``) and
    Chrome records (missing ``ts``/``name``) are skipped and counted
    in :attr:`TraceLoad.skipped`; a truncated final line from an
    interrupted run therefore costs one event, not the whole report.
    Raises :class:`~repro.common.errors.ConfigError` only when the
    file is a JSON document that is not a trace at all.
    """
    text = Path(path).read_text()
    if not text.strip():
        return TraceLoad()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None  # multi-line JSONL (or a truncated single document)
    if isinstance(doc, list):
        return _from_chrome(doc)
    if isinstance(doc, dict):
        if "traceEvents" in doc:
            return _from_chrome(doc["traceEvents"])
        if "kind" not in doc:  # neither Chrome nor a single JSONL event
            raise ConfigError("not a Chrome trace: missing 'traceEvents'")
    out = TraceLoad(format="jsonl")
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            raw = json.loads(line)
            event = TraceEvent(
                ts=raw.pop("ts"),
                kind=raw.pop("kind"),
                node=raw.pop("node", None),
                base=raw.pop("base", None),
                fields=raw,
            )
        except (json.JSONDecodeError, KeyError, AttributeError, TypeError):
            out.skipped += 1
            continue
        out.events.append(event)
    return out


def read_trace(path) -> list[TraceEvent]:
    """Back-compat wrapper around :func:`load_trace` (events only)."""
    return load_trace(path).events


def _from_chrome(records: list[Any]) -> TraceLoad:
    out = TraceLoad(format="chrome")
    for raw in records:
        try:
            ts = raw["ts"]
            kind = raw["name"]
        except (KeyError, TypeError):
            out.skipped += 1
            continue
        args = dict(raw.get("args", {}))
        base = args.pop("base", None)
        if isinstance(base, str):
            try:
                base = int(base, 0)
            except ValueError:
                out.skipped += 1
                continue
        if "dur" in raw:
            args["dur"] = raw["dur"]
        tid = raw.get("tid", -1)
        out.events.append(
            TraceEvent(
                ts=ts,
                kind=kind,
                node=None if tid == -1 else tid,
                base=base,
                fields=args,
            )
        )
    return out


def summarize_trace(events: list[TraceEvent], top: int = 10) -> dict[str, Any]:
    """Reduce a trace to its headline numbers."""
    kinds = Counter(e.kind for e in events)
    nodes = Counter(e.node for e in events if e.node is not None)
    bases = Counter(e.base for e in events if e.base is not None)
    ts = [e.ts for e in events]
    return {
        "events": len(events),
        "first_ts": min(ts) if ts else 0,
        "last_ts": max(ts) if ts else 0,
        "kinds": dict(kinds.most_common()),
        "nodes": {f"P{n}": c for n, c in sorted(nodes.items())},
        "hot_lines": {f"{b:#x}": c for b, c in bases.most_common(top)},
    }


def render_report(summary: dict[str, Any]) -> str:
    """Render :func:`summarize_trace` output for the terminal."""
    lines = [
        f"events     : {summary['events']}",
        f"cycle span : {summary['first_ts']} .. {summary['last_ts']}"
        f" ({summary['last_ts'] - summary['first_ts']} cycles)",
        "",
        "by kind:",
    ]
    for kind, count in summary["kinds"].items():
        lines.append(f"  {kind:<22s} {count:>8d}")
    if summary["nodes"]:
        lines.append("")
        lines.append("by node:")
        for node, count in summary["nodes"].items():
            lines.append(f"  {node:<22s} {count:>8d}")
    if summary["hot_lines"]:
        lines.append("")
        lines.append("hottest lines:")
        for base, count in summary["hot_lines"].items():
            lines.append(f"  {base:<22s} {count:>8d}")
    return "\n".join(lines)
