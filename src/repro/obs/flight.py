"""Service flight recorder: a persisted ring for crash postmortems.

The EventLog and telemetry sampler are in-memory; a killed server
takes them with it.  The flight recorder buffers the last-N service
events, telemetry samples, and free-form notes (e.g. the EventLog's
``events.dropped`` overflow marker) and periodically persists them as
one atomic JSON document (tmp + ``os.replace``), so the file on disk
is always a complete, parseable snapshot — never a torn write.  After
a crash, ``repro-sim service postmortem PATH`` renders the document:
the last telemetry sample, the notes, each job's last known state
reconstructed from its events, and the newest event tail.

Buffering is deliberately split from flushing: ``record_event`` runs
inside EventLog subscriber callbacks (sometimes on the event loop),
so it only appends under the lock; :meth:`FlightRecorder.flush` does
the file write and is called from executor threads — the service's
telemetry loop offloads it every tick, and ``Service.stop`` forces a
final flush.  ``flush`` also self-debounces (``min_interval``) so a
caller may invoke it optimistically without hammering the disk.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any

#: On-disk document format version.
FLIGHT_FORMAT = 1

DEFAULT_EVENTS = 2048
DEFAULT_SAMPLES = 256
DEFAULT_NOTES = 64

#: Terminal job reasons (mirrors the job.completed event contract).
_TERMINAL = ("done", "failed", "cancelled")


class FlightRecorder:
    """Bounded in-memory ring persisted atomically to one JSON file."""

    def __init__(
        self,
        path,
        events: int = DEFAULT_EVENTS,
        samples: int = DEFAULT_SAMPLES,
        notes: int = DEFAULT_NOTES,
        min_interval: float = 0.25,
        clock=time.perf_counter,
    ):
        self.path = Path(path)
        self.clock = clock
        self.min_interval = min_interval
        self._lock = threading.RLock()
        self._events: deque[dict[str, Any]] = deque(maxlen=events)
        self._samples: deque[dict[str, Any]] = deque(maxlen=samples)
        self._notes: deque[dict[str, Any]] = deque(maxlen=notes)
        self._recorded = 0
        self._dirty = False
        self._last_flush = None

    # -- recording (cheap, lock-only; safe from subscriber callbacks) ----

    def record_event(self, record: dict[str, Any]) -> None:
        """Buffer one EventLog record (an EventLog subscriber)."""
        with self._lock:
            self._events.append(dict(record))
            self._recorded += 1
            self._dirty = True

    def record_sample(self, sample: dict[str, Any]) -> None:
        """Buffer one telemetry sample row."""
        with self._lock:
            self._samples.append(dict(sample))
            self._dirty = True

    def note(self, message: str, **fields: Any) -> None:
        """Buffer a free-form annotation (overflow markers, shutdown)."""
        entry = {"ts": self.clock(), "note": message}
        entry.update(fields)
        with self._lock:
            self._notes.append(entry)
            self._dirty = True

    # -- persistence (file I/O; call from executor threads only) ---------

    def snapshot(self) -> dict[str, Any]:
        """The current document (what :meth:`flush` writes)."""
        with self._lock:
            return {
                "format": FLIGHT_FORMAT,
                "recorded": self._recorded,
                "events": [dict(r) for r in self._events],
                "samples": [dict(r) for r in self._samples],
                "notes": [dict(r) for r in self._notes],
            }

    def flush(self, force: bool = False) -> bool:
        """Atomically persist the ring if dirty (debounced); True if written."""
        with self._lock:
            if not self._dirty and not force:
                return False
            now = self.clock()
            if (
                not force
                and self._last_flush is not None
                and now - self._last_flush < self.min_interval
            ):
                return False
            doc = self.snapshot()
            self._dirty = False
            self._last_flush = now
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(doc, indent=1))
        os.replace(tmp, self.path)
        return True

    def close(self) -> None:
        """Force a final flush (service shutdown path)."""
        self.flush(force=True)


def load_flight(path) -> dict[str, Any]:
    """Read a flight-recorder file, validating the format stamp."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or doc.get("format") != FLIGHT_FORMAT:
        raise ValueError(f"{path}: not a flight-recorder file (format 1)")
    return doc


def _job_states(events: list[dict[str, Any]]) -> dict[str, dict[str, Any]]:
    """Reconstruct each job's last known state from its buffered events."""
    jobs: dict[str, dict[str, Any]] = {}
    for record in events:
        job = record.get("job")
        if job is None:
            continue
        state = jobs.setdefault(job, {"state": "in flight", "last": None})
        state["last"] = record
        if record.get("event") == "job.completed":
            state["state"] = record.get("reason", "completed")
    return jobs


def render_postmortem(doc: dict[str, Any], tail: int = 15) -> str:
    """Render a flight-recorder document for the terminal."""
    events = doc.get("events", [])
    samples = doc.get("samples", [])
    notes = doc.get("notes", [])
    lines = [
        "flight recorder postmortem (format"
        f" {doc.get('format')}, {doc.get('recorded', len(events))} events"
        f" recorded, {len(events)} buffered)",
    ]
    if samples:
        last = samples[-1]
        vitals = " ".join(
            f"{key}={last[key]}"
            for key in (
                "queued", "leased", "busy", "workers", "utilization",
                "lease_wait_avg", "cache_hit_ratio", "event_dropped",
            )
            if key in last
        )
        lines.append(f"last sample : {vitals}")
    else:
        lines.append("last sample : (none recorded)")
    if notes:
        lines.append("")
        lines.append("notes:")
        for entry in notes:
            extra = " ".join(
                f"{k}={v}" for k, v in entry.items() if k not in ("ts", "note")
            )
            lines.append(f"  {entry.get('note')}" + (f" ({extra})" if extra else ""))
    jobs = _job_states(events)
    if jobs:
        lines.append("")
        lines.append("jobs (last known state):")
        for job, state in jobs.items():
            last = state["last"] or {}
            marker = state["state"]
            flag = "" if marker in _TERMINAL else "  <- interrupted"
            lines.append(
                f"  {job:<12s} {marker:<10s} last event"
                f" {last.get('event', '?')} (seq {last.get('seq', '?')}){flag}"
            )
    if events:
        lines.append("")
        lines.append(f"newest {min(tail, len(events))} events:")
        for record in events[-tail:]:
            detail = " ".join(
                f"{k}={v}"
                for k, v in record.items()
                if k not in ("seq", "event")
            )
            lines.append(
                f"  seq {record.get('seq', '?'):>6} {record.get('event', '?'):<18s}"
                f" {detail}"
            )
    return "\n".join(lines)
