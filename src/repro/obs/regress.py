"""Cross-run performance regression tracking.

Compares two bench reports (``repro-sim bench`` JSON, see
:mod:`repro.experiments.bench`) or two metrics exports
(:meth:`~repro.obs.metrics.MetricsRegistry.to_json`) and classifies
every comparable number:

* **rate metrics** (events/sec, counter adds/sec, ...) are
  higher-is-better: a relative drop beyond the threshold is a
  regression;
* **time metrics** (serial matrix seconds, per-cell wall time) are
  lower-is-better: a relative rise beyond the threshold is a
  regression;
* **exact metrics** (per-cell ``cycles``/``committed``, metric series
  of a deterministic run) must match bit-for-bit — any difference is
  reported as *changed* and fails the gate, forcing a deliberate
  baseline regeneration whenever the simulation's behavior shifts;
* the current report's determinism check must pass.

Cells are only compared when the config fingerprint and scale match;
otherwise they are *skipped* with a note, a named
``compare.cell_skipped{reason=...}`` warning is logged per cell
(reasons: ``fingerprint_mismatch``, ``scale_mismatch``), and the
delta-table header reports the skipped count (the microbenchmarks
still compare — they do not depend on the machine config).

``repro-sim bench --compare BASELINE.json`` wraps
:func:`compare_reports` + :func:`render_comparison` and exits non-zero
when :attr:`Comparison.ok` is false; CI runs it against the committed
``BENCH_matrix.json``.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass, field
from pathlib import Path

log = logging.getLogger("repro.regress")

#: Default relative threshold for rate/time metrics: ±50%.  Generous on
#: purpose — wall clocks on shared CI runners are noisy, and the exact
#: metrics (cycles/committed) catch behavioral drift precisely.
DEFAULT_REL_THRESHOLD = 0.5

#: Delta classification vocabulary.
STATUSES = ("ok", "improved", "regression", "changed", "missing", "skipped")

#: Statuses that fail the gate.
FAILING_STATUSES = ("regression", "changed", "missing")


@dataclass
class Delta:
    """One compared metric."""

    metric: str
    baseline: float | None
    current: float | None
    rel: float | None  # (current - baseline) / baseline, when defined
    status: str  # one of STATUSES
    note: str = ""

    def to_json(self) -> dict:
        """JSON-safe representation."""
        return {
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "rel": self.rel,
            "status": self.status,
            "note": self.note,
        }


@dataclass
class Comparison:
    """The outcome of one report-vs-baseline diff."""

    deltas: list[Delta] = field(default_factory=list)

    @property
    def regressions(self) -> list[Delta]:
        """Deltas that fail the gate (regression / changed / missing)."""
        return [d for d in self.deltas if d.status in FAILING_STATUSES]

    @property
    def ok(self) -> bool:
        """True when nothing fails the gate."""
        return not self.regressions

    @property
    def skipped(self) -> list[Delta]:
        """Deltas that were not compared (mismatched cells, absences)."""
        return [d for d in self.deltas if d.status == "skipped"]

    def to_json(self) -> dict:
        """JSON-safe document (CI artifact)."""
        return {
            "ok": self.ok,
            "regressions": len(self.regressions),
            "skipped": len(self.skipped),
            "deltas": [d.to_json() for d in self.deltas],
        }


def load_report(path: str | Path) -> dict:
    """Read a bench report or metrics export from disk."""
    return json.loads(Path(path).read_text())


def _rel(baseline: float, current: float) -> float | None:
    if baseline == 0:
        return None if current == 0 else float("inf")
    return (current - baseline) / baseline


def _classify(
    metric: str,
    baseline,
    current,
    direction: str,
    threshold: float,
    note: str = "",
) -> Delta:
    """Build the :class:`Delta` for one metric given its direction."""
    if baseline is None and current is None:
        return Delta(metric, None, None, None, "skipped", note or "absent in both")
    if current is None:
        return Delta(metric, baseline, None, None, "missing",
                     note or "absent in current report")
    if baseline is None:
        return Delta(metric, None, current, None, "skipped",
                     note or "absent in baseline")
    if direction == "exact":
        if baseline == current:
            return Delta(metric, baseline, current, 0.0, "ok", note)
        return Delta(metric, baseline, current, _rel(baseline, current),
                     "changed", note or "exact metric differs")
    rel = _rel(baseline, current)
    if rel is None:
        return Delta(metric, baseline, current, None, "ok", note)
    worse = rel < -threshold if direction == "higher_better" else rel > threshold
    better = rel > threshold if direction == "higher_better" else rel < -threshold
    status = "regression" if worse else ("improved" if better else "ok")
    return Delta(metric, baseline, current, rel, status, note)


def _bench_entries(report: dict) -> list[tuple[str, float | None, str]]:
    """Flatten a bench report into (metric, value, direction) rows."""
    rows: list[tuple[str, float | None, str]] = []
    scheduler = report.get("scheduler", {})
    stats = report.get("stats", {})
    rows.append(("scheduler.events_per_sec",
                 scheduler.get("events_per_sec"), "higher_better"))
    rows.append(("stats.adds_per_sec", stats.get("adds_per_sec"), "higher_better"))
    rows.append(("stats.hist_records_per_sec",
                 stats.get("hist_records_per_sec"), "higher_better"))
    matrix = report.get("matrix", {})
    rows.append(("matrix.serial_seconds",
                 matrix.get("serial_seconds"), "lower_better"))
    if matrix.get("speedup") is not None:
        rows.append(("matrix.speedup", matrix["speedup"], "higher_better"))
    for cell in matrix.get("cells", ()):
        key = f"{cell['benchmark']}|{cell['technique']}|{cell['seed']}"
        rows.append((f"cell[{key}].wall_seconds",
                     cell.get("wall_seconds"), "lower_better"))
        rows.append((f"cell[{key}].cycles", cell.get("cycles"), "exact"))
        rows.append((f"cell[{key}].committed", cell.get("committed"), "exact"))
    return rows


def _compare_bench(
    baseline: dict,
    current: dict,
    threshold: float,
    thresholds: dict[str, float],
) -> Comparison:
    base_rows = dict(
        (name, (value, direction))
        for name, value, direction in _bench_entries(baseline)
    )
    cur_rows = dict(
        (name, (value, direction))
        for name, value, direction in _bench_entries(current)
    )
    base_matrix = baseline.get("matrix", {})
    cur_matrix = current.get("matrix", {})
    skip_reasons = []
    if base_matrix.get("fingerprint") != cur_matrix.get("fingerprint"):
        skip_reasons.append("fingerprint_mismatch")
    if base_matrix.get("scale") != cur_matrix.get("scale"):
        skip_reasons.append("scale_mismatch")
    cells_comparable = not skip_reasons
    skip_reason = "+".join(skip_reasons)
    out = Comparison()
    for name in sorted(set(base_rows) | set(cur_rows)):
        base_value, direction = base_rows.get(name, (None, None))
        cur_value, cur_dir = cur_rows.get(name, (None, None))
        direction = direction or cur_dir
        if name == "matrix.speedup" and (base_value is None or cur_value is None):
            out.deltas.append(Delta(
                name, base_value, cur_value, None, "skipped",
                "speedup absent in one report (serial-only bench run)",
            ))
            continue
        if name.startswith("cell[") and not cells_comparable:
            log.warning("compare.cell_skipped{reason=%s} %s", skip_reason, name)
            out.deltas.append(Delta(
                name, base_value, cur_value, None, "skipped",
                f"cell_skipped{{reason={skip_reason}}}: "
                "matrix fingerprint/scale differs; cells not comparable",
            ))
            continue
        out.deltas.append(_classify(
            name, base_value, cur_value, direction,
            thresholds.get(name, threshold),
        ))
    det = current.get("determinism", {})
    if det:
        out.deltas.append(Delta(
            "determinism.ok", 1.0, 1.0 if det.get("ok") else 0.0,
            None, "ok" if det.get("ok") else "regression",
            "" if det.get("ok") else
            f"serial/worker mismatch in {det.get('mismatched_fields')}",
        ))
    return out


def _metrics_entries(report: dict) -> dict[str, float]:
    """Flatten a metrics export into a series-key -> value mapping."""
    out: dict[str, float] = {}
    for series in report.get("series", ()):
        labels = ",".join(
            f"{k}={v}" for k, v in sorted(series.get("labels", {}).items())
        )
        key = f"{series['name']}{{{labels}}}"
        if "value" in series:
            out[key] = series["value"]
        elif "histogram" in series:
            out[key + ".count"] = series["histogram"].get("count", 0)
            out[key + ".mean"] = series["histogram"].get("mean", 0.0)
    return out


def _compare_metrics(
    baseline: dict,
    current: dict,
    threshold: float,
    thresholds: dict[str, float],
) -> Comparison:
    base = _metrics_entries(baseline)
    cur = _metrics_entries(current)
    out = Comparison()
    for name in sorted(set(base) | set(cur)):
        # Metric series of a deterministic simulation compare exactly
        # when the threshold is 0; otherwise treat growth in either
        # direction beyond the threshold as a change worth failing on.
        thr = thresholds.get(name, threshold)
        base_value, cur_value = base.get(name), cur.get(name)
        if thr == 0:
            out.deltas.append(_classify(name, base_value, cur_value, "exact", thr))
            continue
        if base_value is None or cur_value is None:
            out.deltas.append(_classify(name, base_value, cur_value, "exact", thr))
            continue
        rel = _rel(base_value, cur_value)
        changed = rel is not None and abs(rel) > thr
        out.deltas.append(Delta(
            name, base_value, cur_value, rel,
            "changed" if changed else "ok",
            "beyond threshold" if changed else "",
        ))
    return out


def compare_reports(
    baseline: dict,
    current: dict,
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
    thresholds: dict[str, float] | None = None,
) -> Comparison:
    """Diff two reports of the same shape (bench JSON or metrics JSON).

    ``rel_threshold`` applies to every rate/time metric;
    ``thresholds`` overrides it per metric name.  Returns a
    :class:`Comparison` whose :attr:`~Comparison.ok` is the gate.
    """
    thresholds = thresholds or {}
    if "series" in baseline or "series" in current:
        return _compare_metrics(baseline, current, rel_threshold, thresholds)
    return _compare_bench(baseline, current, rel_threshold, thresholds)


def render_comparison(comparison: Comparison, verbose: bool = False) -> str:
    """Human-readable delta table (regressions always shown first).

    ``verbose`` includes unchanged (``ok``) rows; otherwise only
    failures, improvements, and skips are listed under the summary.
    """

    def fmt(value: float | None) -> str:
        if value is None:
            return "-"
        if isinstance(value, float) and not value.is_integer():
            return f"{value:,.0f}" if abs(value) >= 1000 else f"{value:.4g}"
        return f"{int(value):,}"

    rows = []
    shown = sorted(
        (d for d in comparison.deltas
         if verbose or d.status != "ok"),
        key=lambda d: (d.status not in FAILING_STATUSES, d.metric),
    )
    for d in shown:
        rel = f"{d.rel:+.1%}" if d.rel is not None else "-"
        rows.append((d.metric, fmt(d.baseline), fmt(d.current), rel,
                     d.status.upper() if d.status in FAILING_STATUSES else d.status,
                     d.note))
    skipped = len(comparison.skipped)
    lines = [
        f"compared {len(comparison.deltas)} metrics: "
        f"{len(comparison.regressions)} failing"
        + (f", {skipped} skipped" if skipped else "")
        + ("" if comparison.ok else " — REGRESSION")
    ]
    if rows:
        widths = [max(len(r[i]) for r in rows) for i in range(5)]
        for r in rows:
            line = "  ".join(r[i].ljust(widths[i]) for i in range(5)).rstrip()
            if r[5]:
                line += f"  ({r[5]})"
            lines.append("  " + line)
    return "\n".join(lines)
