"""System assembly: multiprocessor wiring, run loop, technique matrix."""

from repro.system.system import RunResult, System
from repro.system.techniques import ALL_TECHNIQUES, configure_technique

__all__ = ["RunResult", "System", "ALL_TECHNIQUES", "configure_technique"]
