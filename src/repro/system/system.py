"""Multiprocessor system assembly and run loop.

``System`` builds an N-processor snoop-based SMP from a
:class:`~repro.common.config.MachineConfig` and a workload (anything
providing ``build_programs``), runs it to completion, and returns a
:class:`RunResult` with the runtime, the merged statistics registry,
and derived metrics (IPC, transaction counts, miss classes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.classify import MissClassifier
from repro.common.config import InterconnectKind, MachineConfig
from repro.common.errors import DeadlockError
from repro.common.events import Scheduler
from repro.common.rng import SplitRng
from repro.common.stats import StatsRegistry
from repro.coherence.bus import SnoopBus
from repro.coherence.directory import DirectoryNetwork
from repro.coherence.controller import CoherenceController
from repro.coherence.validation import CoherenceChecker
from repro.cpu.core import Core
from repro.memory.hierarchy import NodeMemory
from repro.memory.mainmem import MainMemory
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.profiler import Heartbeat
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sle.engine import SLEEngine


@dataclass
class RunResult:
    """Outcome of one complete simulation run."""

    cycles: int
    committed: int
    stats: StatsRegistry
    config: MachineConfig = field(repr=False, default=None)
    metrics: MetricsRegistry | None = field(repr=False, default=None)

    @property
    def ipc(self) -> float:
        """Committed micro-ops per cycle, across all processors."""
        return self.committed / self.cycles if self.cycles else 0.0

    def txn(self, kind: str) -> float:
        """Bus transaction count by kind name (read/readx/upgrade/...)."""
        return self.stats.get(f"bus.txn.{kind}")

    @property
    def address_transactions(self) -> float:
        """Total address-network transactions (Figure 8's metric)."""
        return self.stats.get("bus.txn.total")

    def miss_class(self, name: str) -> float:
        """Classified miss count (cold/capacity/comm, comm.tss/...)."""
        return self.stats.get(f"misses.miss.{name}")

    def core_stat(self, core_id: int, name: str) -> float:
        """Read one per-core counter."""
        return self.stats.get(f"core{core_id}.{name}")

    def node_sum(self, name: str) -> float:
        """Sum a per-node counter over all processors."""
        n = self.config.n_procs if self.config else 64
        return sum(self.stats.get(f"node{i}.{name}") for i in range(n))

    def ctrl_sum(self, name: str) -> float:
        """Sum a per-controller counter over all processors."""
        n = self.config.n_procs if self.config else 64
        return sum(self.stats.get(f"ctrl{i}.{name}") for i in range(n))


class System:
    """An N-processor snoop-based shared-memory multiprocessor."""

    def __init__(
        self,
        config: MachineConfig,
        workload,
        seed: int | str = 0,
        tracer: Tracer | None = None,
        check_invariants: bool = False,
        metrics: MetricsRegistry | None = None,
    ):
        config.validate()
        self.config = config
        self.workload = workload
        self.rng = SplitRng(seed)
        self.scheduler = Scheduler()
        self.stats = StatsRegistry()
        # Metrics default to the process-wide no-op object, which still
        # routes bound counters into the stats registry.
        self.metrics = metrics if metrics is not None else NULL_METRICS
        # Tracing defaults to the process-wide no-op object; a real
        # Tracer is bound to this system's cycle clock.
        if tracer is None:
            self.tracer = NULL_TRACER
        else:
            tracer.bind_clock(self.scheduler)
            self.tracer = tracer
        self.memory = MainMemory(config.line_size)
        if config.interconnect is InterconnectKind.DIRECTORY:
            self.bus = DirectoryNetwork(
                self.scheduler,
                config.bus,
                self.memory,
                self.stats.scoped("bus"),
                jitter=config.latency_jitter,
                rng=self.rng.split("bus"),
                tracer=self.tracer,
                metrics=self.metrics,
            )
        else:
            self.bus = SnoopBus(
                self.scheduler,
                config.bus,
                self.memory,
                self.stats.scoped("bus"),
                jitter=config.latency_jitter,
                rng=self.rng.split("bus"),
                tracer=self.tracer,
                metrics=self.metrics,
            )
        self.classifier = MissClassifier(
            self.stats.scoped("misses"), config.n_procs, metrics=self.metrics
        )
        programs = workload.build_programs(config, self.rng.split("workload"))
        if len(programs) != config.n_procs:
            raise DeadlockError(
                f"workload built {len(programs)} programs for "
                f"{config.n_procs} processors"
            )
        self.controllers: list[CoherenceController] = []
        self.nodes: list[NodeMemory] = []
        self.cores: list[Core] = []
        self.engines: list[SLEEngine] = []
        self._finished = 0
        for i in range(config.n_procs):
            ctrl = CoherenceController(
                i, config, self.bus, self.memory,
                self.stats.scoped(f"ctrl{i}"), tracer=self.tracer,
                metrics=self.metrics,
            )
            node = NodeMemory(
                i, config, self.scheduler, ctrl,
                self.stats.scoped(f"node{i}"), classifier=self.classifier,
                tracer=self.tracer, metrics=self.metrics,
            )
            core = Core(
                i, config, self.scheduler, node, programs[i],
                self.stats.scoped(f"core{i}"), on_finished=self._core_finished,
            )
            if config.sle.enabled:
                engine = SLEEngine(
                    config, core, node, self.scheduler,
                    self.stats.scoped(f"sle{i}"), tracer=self.tracer,
                    metrics=self.metrics,
                )
                self.engines.append(engine)
            self.controllers.append(ctrl)
            self.nodes.append(node)
            self.cores.append(core)
        # The runtime invariant checker intercepts every interconnect
        # grant; a coherence bug then fails fast at the violating event
        # instead of corrupting results silently.
        self.checker = CoherenceChecker(self) if check_invariants else None

    def _core_finished(self) -> None:
        self._finished += 1

    @property
    def all_finished(self) -> bool:
        """True once every core's program completed."""
        return self._finished >= len(self.cores)

    def run(
        self,
        max_cycles: int = 500_000_000,
        max_events: int = 200_000_000,
        heartbeat: int = 0,
    ) -> RunResult:
        """Run all programs to completion and return the result.

        ``heartbeat`` > 0 logs a progress line (cycles, committed ops,
        IPC-so-far, events/sec) every that-many cycles through the
        ``repro.heartbeat`` logger — observability for long runs.
        """
        for core in self.cores:
            core.start()
        if heartbeat:
            Heartbeat(
                self.scheduler,
                heartbeat,
                progress=self._progress,
                stop=lambda: self.all_finished,
            )
        self.scheduler.run(
            until=lambda: self.all_finished,
            max_cycles=max_cycles,
            max_events=max_events,
        )
        if not self.all_finished:
            stuck = [c.core_id for c in self.cores if not c.finished]
            detail = []
            for cid in stuck:
                core = self.cores[cid]
                head = core.window[0] if core.window else None
                detail.append(
                    f"P{cid}: window={len(core.window)} head={head!r} "
                    f"sb={len(core.sb)} await_ctl={core._await_control is not None} "
                    f"program_done={core.program_done}"
                )
            raise DeadlockError(
                "simulation stalled with unfinished cores: " + "; ".join(detail)
            )
        if self.checker is not None:
            # End-of-run sweep: every line still resident anywhere must
            # satisfy the invariants, not just lines touched by a grant.
            self.checker.check_all()
        committed = sum(core.committed for core in self.cores)
        cycles = max(
            int(self.stats.get(f"core{i}.finish_time"))
            for i in range(self.config.n_procs)
        )
        self._record_summary(cycles, committed)
        return RunResult(
            cycles=cycles, committed=committed, stats=self.stats,
            config=self.config,
            metrics=self.metrics if self.metrics is not NULL_METRICS else None,
        )

    def _progress(self) -> dict:
        committed = sum(core.committed for core in self.cores)
        now = self.scheduler.now
        return {
            "committed": committed,
            "ipc": committed / now if now else 0.0,
            "finished": f"{self._finished}/{len(self.cores)}",
        }

    def _record_summary(self, cycles: int, committed: int) -> None:
        self.stats.set("run.cycles", cycles)
        self.stats.set("run.committed", committed)
        self.stats.set("run.events", self.scheduler.events_fired)
        if cycles:
            self.stats.set("run.ipc", committed / cycles)
        if self.checker is not None:
            self.stats.set("run.invariant_checks", self.checker.checks)
        metrics = self.metrics
        metrics.gauge("repro_run_cycles", "Simulated cycles").labels().set(cycles)
        metrics.gauge(
            "repro_run_committed", "Committed micro-ops"
        ).labels().set(committed)
        metrics.gauge("repro_run_ipc", "Committed micro-ops per cycle").labels().set(
            committed / cycles if cycles else 0.0
        )
        metrics.gauge("repro_run_events", "Scheduler events fired").labels().set(
            self.scheduler.events_fired
        )


def run_workload(
    config: MachineConfig, workload, seed: int | str = 0, **run_kwargs
) -> RunResult:
    """Convenience: build a :class:`System` and run it."""
    return System(config, workload, seed=seed).run(**run_kwargs)
