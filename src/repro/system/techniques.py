"""The technique matrix of the paper's evaluation (Figures 7 and 8).

A *technique name* is a ``+``-joined combination of:

* ``base``   — the MOESI baseline (implied when nothing else names a
  protocol change);
* ``mesti``  — plain MESTI/MOESTI with unconditional validates;
* ``emesti`` — Enhanced MESTI with the useful-validate predictor;
* ``lvp``    — load value prediction from tag-match invalid lines;
* ``sle``    — speculative lock elision.

``mesti`` and ``emesti`` are mutually exclusive; everything else
composes freely, mirroring the paper's combined-technique runs.
"""

from __future__ import annotations

from repro.common.config import (
    MachineConfig,
    ProtocolKind,
    ValidatePolicy,
)
from repro.common.errors import ConfigError

#: The nine configurations evaluated in Figures 7 and 8.
ALL_TECHNIQUES = (
    "base",
    "mesti",
    "emesti",
    "lvp",
    "sle",
    "emesti+lvp",
    "emesti+sle",
    "lvp+sle",
    "emesti+lvp+sle",
)


def configure_technique(config: MachineConfig, technique: str) -> MachineConfig:
    """Return ``config`` specialized for ``technique`` (see module doc)."""
    parts = [p for p in technique.lower().split("+") if p]
    if not parts:
        raise ConfigError("empty technique name")
    out = config
    protocol_set = False
    for part in parts:
        if part == "base":
            continue
        if part == "mesti":
            if protocol_set:
                raise ConfigError("mesti/emesti are mutually exclusive")
            out = out.with_protocol(
                kind=ProtocolKind.MOESTI,
                enhanced=False,
                validate_policy=ValidatePolicy.ALWAYS,
            )
            protocol_set = True
        elif part == "emesti":
            if protocol_set:
                raise ConfigError("mesti/emesti are mutually exclusive")
            out = out.with_protocol(
                kind=ProtocolKind.MOESTI,
                enhanced=True,
                validate_policy=ValidatePolicy.PREDICTOR,
            )
            protocol_set = True
        elif part == "lvp":
            out = out.with_lvp(enabled=True)
        elif part == "sle":
            out = out.with_sle(enabled=True)
        else:
            raise ConfigError(f"unknown technique component {part!r}")
    out.validate()
    return out
