"""Simulation-as-a-service: async job API over the experiment matrix.

Promotes the :class:`~repro.experiments.runner.MatrixRunner` stack
(warm worker pools, fingerprinted cache v2, run manifests, metrics)
into a long-running service: submit an experiment spec over HTTP, the
:mod:`~repro.service.queue` explodes it into fingerprint-identified
cells, the :mod:`~repro.service.workers` shard leases and runs them
(cache first — a million identical submissions cost one simulation),
and every state transition emits a named event declared in
:mod:`~repro.service.events`.  See ``docs/service.md``.
"""

from repro.service.api import Service
from repro.service.client import ServiceClient, ServiceError
from repro.service.events import EVENT_NAMES, EVENT_SPECS, EventLog
from repro.service.queue import JobQueue, SpecError, cell_identity, validate_spec
from repro.service.workers import ResultStore, WorkerShard

__all__ = [
    "EVENT_NAMES",
    "EVENT_SPECS",
    "EventLog",
    "JobQueue",
    "ResultStore",
    "Service",
    "ServiceClient",
    "ServiceError",
    "SpecError",
    "WorkerShard",
    "cell_identity",
    "validate_spec",
]
