"""Warm worker-pool shard: leases cells, runs them, stores results.

The shard is a set of asyncio worker tasks over one process pool (the
runner's :func:`~repro.experiments.runner.warm_pool`, so pool startup
is paid once per service lifetime, not per job) plus a lease *reaper*.
Each worker loops:

1. lease the best queued cell (``cell.leased``);
2. probe the :class:`ResultStore` — a hit is served without
   simulation (``cell.cache_hit``) and completed immediately;
3. otherwise simulate via the existing
   :func:`~repro.experiments.runner.run_cell` in the executor,
   renewing the lease by heartbeat while the future is pending
   (``cell.started`` ... ``cell.finished``);
4. on executor death or a raising cell, report the lease lost
   (``cell.retried{reason}`` / ``cell.failed{reason}`` come from the
   queue's retry budget) and, for a broken pool, retire it so the
   next lease gets a fresh one.

The reaper periodically calls
:meth:`~repro.service.queue.JobQueue.expire_leases`, which is what
recovers cells whose worker died *without* reporting (process kill):
the heartbeat stops, the deadline passes, the cell re-enqueues.

:class:`ResultStore` wraps per-scale
:class:`~repro.experiments.runner.MatrixRunner` caches (format v2,
fingerprint-checked, crash-safe flush) under one directory, plus a
``service_index.json`` mapping cell fingerprint -> coordinates so
``GET /results/{fingerprint}`` resolves without knowing the spec.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import threading
from concurrent.futures import BrokenExecutor, Executor
from pathlib import Path
from typing import Any

from repro.experiments.runner import (
    MatrixRunner,
    RunSummary,
    retire_pool,
    run_cell,
    warm_pool,
)
from repro.fuzz.campaign import run_fuzz_cell
from repro.obs.spans import SPAN_REMAP_STRIDE, remap_spans

from .events import EventLog
from .queue import JobQueue

log = logging.getLogger("repro.service")

#: Idle worker poll cadence (seconds) when the queue is empty.
IDLE_POLL = 0.05


def _close_inherited_inet_sockets() -> None:
    """Pool-worker initializer: drop TCP fds inherited over fork.

    A forked pool worker inherits every open fd, including the HTTP
    listener and any client connections accepted before the fork.  An
    inherited connection fd is fatal to event streaming: the server's
    ``close()`` cannot send FIN while a long-lived worker still holds
    a duplicate, so the client never sees end-of-stream and blocks
    forever.  Closing only AF_INET/AF_INET6 sockets leaves the pool's
    own plumbing (pipes, AF_UNIX pairs) untouched.
    """
    import socket
    import stat

    try:
        fds = [int(name) for name in os.listdir("/proc/self/fd")]
    except (FileNotFoundError, NotADirectoryError):  # non-procfs platforms
        fds = list(range(3, 4096))
    for fd in fds:
        try:
            if not stat.S_ISSOCK(os.fstat(fd).st_mode):
                continue
            probe = socket.socket(fileno=os.dup(fd))
            family = probe.family
            probe.close()
            if family in (socket.AF_INET, socket.AF_INET6):
                os.close(fd)
        except OSError:
            continue


class ResultStore:
    """Fingerprint-addressable store over MatrixRunner caches.

    Thread-safe: the shard offloads store calls to executor threads
    (cache reads/writes are file I/O that must stay off the event loop
    — simlint SL201), so every public method serializes on one
    reentrant lock; the wrapped MatrixRunners are only ever touched
    with it held (SL202 polices the attributes).
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._runners: dict[float, MatrixRunner] = {}
        self._index_path = self.root / "service_index.json"
        self._index: dict[str, dict[str, Any]] = {}
        if self._index_path.exists():
            self._index = json.loads(self._index_path.read_text())

    def runner(self, scale: float) -> MatrixRunner:
        """The (cached) MatrixRunner for one scale."""
        with self._lock:
            runner = self._runners.get(scale)
            if runner is None:
                runner = MatrixRunner(
                    scale=scale, results_dir=self.root, label="service",
                    verbose=False,
                )
                self._runners[scale] = runner
            return runner

    def lookup(self, cell: dict[str, Any]) -> RunSummary | None:
        """The cached summary for a queue cell record, or None."""
        with self._lock:
            return self.runner(cell["scale"]).cached(
                cell["benchmark"], cell["technique"], cell["seed"],
            )

    def cell_config(self, cell: dict[str, Any]):
        """The exact per-technique config a serial run would use.

        A locked accessor so workers need not chain
        ``store.runner(...).cell_config(...)`` from the event loop
        (constructing a MatrixRunner reads its cache file).
        """
        with self._lock:
            return self.runner(cell["scale"]).cell_config(cell["technique"])

    def store(self, cell: dict[str, Any], summary: RunSummary) -> None:
        """Persist a summary and index it by cell fingerprint."""
        with self._lock:
            self.runner(cell["scale"]).store(
                cell["benchmark"], cell["technique"], cell["seed"], summary,
            )
            self._index[cell["fingerprint"]] = {
                "benchmark": cell["benchmark"],
                "technique": cell["technique"],
                "seed": cell["seed"],
                "scale": cell["scale"],
            }
            self._save_index()

    def lookup_fuzz(self, fingerprint: str) -> dict[str, Any] | None:
        """The stored fuzz report for a campaign cell, or None."""
        with self._lock:
            path = self.root / "fuzz" / f"{fingerprint}.json"
            if not path.exists():
                return None
            return json.loads(path.read_text())

    def store_fuzz(self, fingerprint: str, doc: dict[str, Any]) -> None:
        """Persist a fuzz report and index it by cell fingerprint."""
        with self._lock:
            fuzz_dir = self.root / "fuzz"
            fuzz_dir.mkdir(parents=True, exist_ok=True)
            path = fuzz_dir / f"{fingerprint}.json"
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(doc, indent=1, sort_keys=True))
            os.replace(tmp, path)
            self._index[fingerprint] = {"kind": "fuzz"}
            self._save_index()

    def by_fingerprint(self, fingerprint: str) -> dict[str, Any] | None:
        """Resolve ``GET /results/{fingerprint}``: coords + summary."""
        with self._lock:
            coords = self._index.get(fingerprint)
            if coords is None:
                return None
            if coords.get("kind") == "fuzz":
                doc = self.lookup_fuzz(fingerprint)
                if doc is None:
                    return None
                return {"fingerprint": fingerprint, **doc}
            summary = self.runner(coords["scale"]).cached(
                coords["benchmark"], coords["technique"], coords["seed"],
            )
            if summary is None:
                return None
            return {"fingerprint": fingerprint, **coords, "summary": summary}

    def _save_index(self) -> None:
        """Atomically rewrite the fingerprint index."""
        tmp = self._index_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(self._index, indent=1, sort_keys=True))
        os.replace(tmp, self._index_path)

    def close(self) -> None:
        """Flush every scale's cache."""
        with self._lock:
            for runner in self._runners.values():
                runner.close()


class WorkerShard:
    """N async workers + a lease reaper over one executor."""

    def __init__(
        self,
        queue: JobQueue,
        store: ResultStore,
        events: EventLog,
        workers: int = 1,
        executor: Executor | None = None,
        name: str = "shard0",
    ):
        self.queue = queue
        self.store = store
        self.events = events
        # Service spans land in the queue's per-job trace store, so
        # the lease span a worker parents under lives where the job
        # span does.
        self.traces = queue.traces
        self.workers = max(1, workers)
        self._executor = executor
        # Whether _executor came from warm_pool (ours to retire) or
        # was injected by the caller (theirs to shut down).
        self._owns_pool = False
        self.name = name
        self._tasks: list[asyncio.Task] = []
        self._stopping = False
        #: Count of cells actually simulated (not cache-served) —
        #: the smoke test's "zero new simulations" probe.
        self.simulated = 0
        #: Count of fuzz campaigns actually run (not cache-served).
        self.fuzzed = 0
        #: Workers currently processing a leased cell (utilization
        #: telemetry).  Loop-thread only — no lock needed.
        self.busy = 0

    def executor(self) -> Executor:
        """The shard's executor (warm process pool by default)."""
        if self._executor is None:
            self._executor = warm_pool(
                self.workers, initializer=_close_inherited_inet_sockets,
            )
            self._owns_pool = True
        return self._executor

    async def start(self) -> None:
        """Spawn the worker tasks and the lease reaper."""
        self._stopping = False
        for i in range(self.workers):
            worker_id = f"{self.name}/w{i}"
            self._tasks.append(
                asyncio.create_task(self._worker(worker_id))
            )
        self._tasks.append(asyncio.create_task(self._reaper()))

    async def stop(self) -> None:
        """Cancel every task and flush the store.

        The store flush rewrites every scale's cache under its merge
        lock (file I/O plus lock-file polling), so it runs in a
        thread — a wedged flush must not freeze streams that are
        draining their final events.
        """
        self._stopping = True
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.store.close)

    async def _reaper(self) -> None:
        """Periodically expire dead leases (crashed/silent workers)."""
        period = max(self.queue.lease_ttl / 4, IDLE_POLL)
        loop = asyncio.get_running_loop()
        while not self._stopping:
            await asyncio.sleep(period)
            expired = await loop.run_in_executor(
                None, self.queue.expire_leases,
            )
            for fingerprint in expired:
                log.warning("lease expired on cell %s; re-enqueued",
                            fingerprint)

    async def _worker(self, worker_id: str) -> None:
        """One worker's lease -> serve/run -> complete loop.

        Queue calls rewrite ``state.json``; they run in the default
        thread pool so the event loop never blocks on disk (simlint
        SL201 — the callable is *passed* to run_in_executor, keeping
        it out of the coroutine's call graph).
        """
        loop = asyncio.get_running_loop()
        while not self._stopping:
            cell = await loop.run_in_executor(
                None, self.queue.lease, worker_id,
            )
            if cell is None:
                await asyncio.sleep(IDLE_POLL)
                continue
            self.busy += 1
            try:
                await self._process(worker_id, cell)
            finally:
                self.busy -= 1

    async def _await_leased(self, future, fingerprint: str,
                            worker_id: str):
        """Await an executor future, renewing the lease by heartbeat."""
        loop = asyncio.get_running_loop()
        heartbeat = max(self.queue.lease_ttl / 3, IDLE_POLL)
        while True:
            done, _pending = await asyncio.wait(
                {future}, timeout=heartbeat,
            )
            if done:
                return future.result()
            # Still running: renew the lease and keep waiting.
            await loop.run_in_executor(
                None, self.queue.heartbeat, fingerprint, worker_id,
            )

    async def _pool_died(self, fingerprint: str) -> None:
        """Handle a worker process dying mid-cell (BrokenExecutor).

        Retire the broken pool — but only when this shard created it
        via warm_pool, keyed with its own initializer, so an unrelated
        same-width pool (e.g. a bench sweep's) in this process is
        never torn down; an injected executor is the caller's to shut
        down.  Either way the next lease builds a fresh warm pool, and
        the cell goes back to the queue's retry budget.
        """
        if self._owns_pool:
            retire_pool(
                self.workers,
                initializer=_close_inherited_inet_sockets,
            )
        elif self._executor is not None:
            log.warning(
                "injected executor for shard %s broke; replacing "
                "it with a warm pool on the next lease", self.name,
            )
        self._executor = None
        self._owns_pool = False
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, self.queue.fail, fingerprint, "worker_death",
        )

    async def _process(self, worker_id: str, cell: dict[str, Any]) -> None:
        """Serve one leased cell (cache first, execution second)."""
        if cell.get("kind") == "fuzz":
            await self._process_fuzz(worker_id, cell)
            return
        fingerprint = cell["fingerprint"]
        trace = cell.get("trace")
        loop = asyncio.get_running_loop()
        cached = await loop.run_in_executor(None, self.store.lookup, cell)
        if cached is not None:
            hit_span = (
                self.traces.span_begin(
                    trace, "cell.cache_hit", parent=cell.get("lease_span"),
                    fingerprint=fingerprint,
                )
                if trace is not None else None
            )
            self.events.emit(
                "cell.cache_hit", fingerprint=fingerprint, trace=trace,
            )
            # Ensure the fingerprint index covers cache entries that
            # predate this service instance.
            await loop.run_in_executor(None, self.store.store, cell, cached)
            if trace is not None:
                self.traces.span_end(trace, hit_span)
            await loop.run_in_executor(None, self.queue.complete, fingerprint)
            return
        self.events.emit(
            "cell.started", fingerprint=fingerprint, worker=worker_id,
            trace=trace,
        )
        # The *exact* config a serial MatrixRunner would use for this
        # cell — byte-identical summaries are the service's contract.
        cell_config = await loop.run_in_executor(
            None, self.store.cell_config, cell,
        )
        run_span = (
            self.traces.span_begin(
                trace, "cell.run", parent=cell.get("lease_span"),
                fingerprint=fingerprint, worker=worker_id,
            )
            if trace is not None else None
        )
        # The trace context crosses the process-pool boundary, so it
        # is plain data only (simlint SL203) — run_cell folds its
        # coherence spans under this trace id and ships them back
        # inside the summary.
        trace_ctx = {"trace": trace} if trace is not None else None
        future = loop.run_in_executor(
            self.executor(), run_cell,
            cell_config, cell["benchmark"], cell["scale"], cell["seed"],
            False, trace_ctx,
        )
        try:
            summary = await self._await_leased(
                future, fingerprint, worker_id,
            )
        except BrokenExecutor:
            if trace is not None:
                self.traces.span_end(trace, run_span, outcome="worker_death")
            await self._pool_died(fingerprint)
            return
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - any cell error retries
            log.warning("cell %s raised %s", fingerprint, exc)
            if trace is not None:
                self.traces.span_end(trace, run_span, outcome="worker_error")
            await loop.run_in_executor(
                None, self.queue.fail, fingerprint, "worker_error",
            )
            return
        self.simulated += 1
        # The folded worker spans ride back under summary["trace"];
        # pop them before storing so the stored summary stays
        # byte-identical to a serial run's.
        trace_doc = summary.pop("trace", None)
        if trace is not None:
            self.traces.span_end(trace, run_span, outcome="done")
            if trace_doc:
                self.traces.ingest(
                    trace,
                    remap_spans(
                        trace_doc.get("spans") or (),
                        base=run_span * SPAN_REMAP_STRIDE,
                        parent=run_span,
                        trace=trace,
                    ),
                    truncated=trace_doc.get("truncated", 0),
                )
        await loop.run_in_executor(None, self.store.store, cell, summary)
        await loop.run_in_executor(None, self.queue.complete, fingerprint)

    async def _process_fuzz(self, worker_id: str,
                            cell: dict[str, Any]) -> None:
        """Serve one leased fuzz-campaign cell.

        Mirrors the simulation path — cache probe, heartbeat-renewed
        executor run, retry on death — but executes
        :func:`repro.fuzz.campaign.run_fuzz_cell` (which runs its
        campaign serially: this cell already occupies a pool worker)
        and stores the JSON report.  Every finding in the report is
        surfaced as a ``cell.fuzz_finding`` event before completion.
        """
        fingerprint = cell["fingerprint"]
        trace = cell.get("trace")
        loop = asyncio.get_running_loop()
        cached = await loop.run_in_executor(
            None, self.store.lookup_fuzz, fingerprint,
        )
        if cached is not None:
            hit_span = (
                self.traces.span_begin(
                    trace, "cell.cache_hit", parent=cell.get("lease_span"),
                    fingerprint=fingerprint,
                )
                if trace is not None else None
            )
            self.events.emit(
                "cell.cache_hit", fingerprint=fingerprint, trace=trace,
            )
            if trace is not None:
                self.traces.span_end(trace, hit_span)
            await loop.run_in_executor(None, self.queue.complete, fingerprint)
            return
        self.events.emit(
            "cell.started", fingerprint=fingerprint, worker=worker_id,
            trace=trace,
        )
        run_span = (
            self.traces.span_begin(
                trace, "cell.run", parent=cell.get("lease_span"),
                fingerprint=fingerprint, worker=worker_id,
            )
            if trace is not None else None
        )
        future = loop.run_in_executor(
            self.executor(), run_fuzz_cell,
            cell["seed"], cell["budget"], tuple(cell["protocols"]),
            cell["interconnect"],
        )
        try:
            doc = await self._await_leased(future, fingerprint, worker_id)
        except BrokenExecutor:
            if trace is not None:
                self.traces.span_end(trace, run_span, outcome="worker_death")
            await self._pool_died(fingerprint)
            return
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - any cell error retries
            log.warning("fuzz cell %s raised %s", fingerprint, exc)
            if trace is not None:
                self.traces.span_end(trace, run_span, outcome="worker_error")
            await loop.run_in_executor(
                None, self.queue.fail, fingerprint, "worker_error",
            )
            return
        self.fuzzed += 1
        if trace is not None:
            self.traces.span_end(trace, run_span, outcome="done")
        await loop.run_in_executor(
            None, self.store.store_fuzz, fingerprint, doc,
        )
        for finding in doc["findings"]:
            self.events.emit(
                "cell.fuzz_finding", fingerprint=fingerprint,
                finding=finding["kind"], trace=trace,
            )
        await loop.run_in_executor(None, self.queue.complete, fingerprint)
