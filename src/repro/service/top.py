"""``repro-sim service top``: a refresh-loop terminal dashboard.

Renders the ``GET /telemetry`` document — the newest vitals row, a
sparkline per headline series, the trace-store / event-ring occupancy,
and the newest service events — then sleeps and refreshes.  The
renderer (:func:`render_top`) is a pure document -> string function so
tests can drive it with canned telemetry; only :func:`run_top` touches
the network and the terminal.
"""

from __future__ import annotations

import time
from typing import Any, Callable

#: Eight-level unicode sparkline ramp.
_SPARK = "▁▂▃▄▅▆▇█"

#: (column, short label) pairs rendered as sparklines, in order.
_SPARK_COLUMNS = (
    ("queued", "queued"),
    ("leased", "leased"),
    ("utilization", "util"),
    ("lease_wait_avg", "wait"),
    ("cache_hit_ratio", "cache"),
    ("event_records", "ring"),
)

#: ANSI clear-screen + home (what the refresh loop prefixes).
CLEAR = "\x1b[2J\x1b[H"


def _sparkline(values: list[float], width: int = 32) -> str:
    """Render the newest ``width`` values as a unicode sparkline."""
    values = [float(v) for v in values][-width:]
    if not values:
        return ""
    low, high = min(values), max(values)
    span = high - low
    if span <= 0:
        return _SPARK[0] * len(values)
    return "".join(
        _SPARK[min(int((v - low) / span * len(_SPARK)), len(_SPARK) - 1)]
        for v in values
    )


def _fmt(value: Any) -> str:
    """Compact numeric formatting for the vitals line."""
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def render_top(doc: dict[str, Any], width: int = 78,
               events: int = 8) -> str:
    """Render one ``GET /telemetry`` document for the terminal."""
    latest = doc.get("latest") or {}
    samples = doc.get("samples") or []
    ring = doc.get("event_ring") or {}
    traces = doc.get("traces") or {}
    lines = [
        "repro-sim service top — "
        f"{doc.get('recorded', len(samples))} samples recorded, "
        f"{len(samples)} retained",
        "-" * width,
    ]
    if latest:
        lines.append(
            "queue   : "
            f"queued={_fmt(latest.get('queued', 0))} "
            f"leased={_fmt(latest.get('leased', 0))} "
            f"jobs active={_fmt(latest.get('jobs_active', 0))} "
            f"done={_fmt(latest.get('jobs_done', 0))} "
            f"failed={_fmt(latest.get('jobs_failed', 0))} "
            f"cancelled={_fmt(latest.get('jobs_cancelled', 0))}"
        )
        lines.append(
            "workers : "
            f"busy={_fmt(latest.get('busy', 0))}/"
            f"{_fmt(latest.get('workers', 0))} "
            f"utilization={_fmt(latest.get('utilization', 0.0))} "
            f"leases={_fmt(latest.get('leases', 0))} "
            f"wait avg={_fmt(latest.get('lease_wait_avg', 0.0))}s "
            f"max={_fmt(latest.get('lease_wait_max', 0.0))}s"
        )
        lines.append(
            "caching : "
            f"hit ratio={_fmt(latest.get('cache_hit_ratio', 0.0))}  "
            "events  : "
            f"ring={_fmt(ring.get('records', latest.get('event_records', 0)))}"
            f"/{_fmt(ring.get('capacity', '?'))} "
            f"dropped={_fmt(ring.get('dropped', latest.get('event_dropped', 0)))}  "
            "traces  : "
            f"{_fmt(traces.get('traces', 0))} "
            f"({_fmt(traces.get('events', 0))} spans)"
        )
    else:
        lines.append("(no telemetry samples yet)")
    if samples:
        lines.append("")
        for column, label in _SPARK_COLUMNS:
            series = [row.get(column, 0) for row in samples]
            lines.append(
                f"{label:<7s} {_sparkline(series)}  now={_fmt(series[-1])}"
            )
    tail = doc.get("events") or []
    if tail:
        lines.append("")
        lines.append(f"newest {min(events, len(tail))} events:")
        for record in tail[-events:]:
            detail = " ".join(
                f"{k}={v}" for k, v in record.items()
                if k not in ("seq", "event")
            )
            lines.append(
                f"  seq {record.get('seq', '?'):>6} "
                f"{record.get('event', '?'):<18s} {detail}"
            )
    return "\n".join(lines)


def run_top(
    client,
    interval: float = 1.0,
    iterations: int | None = None,
    out: Callable[[str], None] = print,
    clear: bool = True,
) -> int:
    """Fetch + render + sleep until interrupted (or ``iterations``).

    ``client`` needs only a ``telemetry()`` method; ``iterations``
    bounds the loop for tests and scripts.  Returns the number of
    refreshes rendered.
    """
    shown = 0
    try:
        while iterations is None or shown < iterations:
            doc = client.telemetry()
            text = render_top(doc)
            out(CLEAR + text if clear else text)
            shown += 1
            if iterations is not None and shown >= iterations:
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return shown
