"""The service's named event contract (VC-02 discipline).

Every queue / lease / worker state transition in the service emits a
*named, declared* event: the full vocabulary lives in
:data:`EVENT_SPECS`, each entry stating the fields the event must
carry.  Emission goes through :class:`EventLog`, which

* rejects undeclared event names and missing required fields at emit
  time (the contract is enforced in production, not just in tests);
* appends the event to a global ordered log and to a per-job view
  (``GET /jobs/{id}/events`` streams the latter as NDJSON);
* increments a ``repro_service_events_total{event=...}`` counter on
  the attached :class:`~repro.obs.metrics.MetricsRegistry` so the
  Prometheus export shows event rates with zero extra wiring;
* mirrors the event into an attached
  :class:`~repro.obs.tracer.Tracer`, so ``repro-sim report`` works on
  a service event log like on any simulation trace.

simlint rule SL009 closes the loop statically: service modules may
only ``.emit()`` string-literal names declared here.
"""

from __future__ import annotations

import threading
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER

#: Ring cap on the in-memory global log: only the newest this-many
#: records are retained (the NDJSON dump covers at most this window).
#: A long-running ``repro-sim serve`` would otherwise leak memory
#: proportional to every event it ever emitted.
DEFAULT_MAX_RECORDS = 100_000

#: How many *terminal* jobs keep their per-job event view, so
#: ``GET /jobs/{id}/events`` can still replay a recently finished
#: job's history.  Older terminal jobs' views are dropped.
DEFAULT_RETAIN_TERMINAL = 256


@dataclass(frozen=True)
class EventSpec:
    """Declaration of one named service event.

    ``fields`` must be present on every emit; ``optional`` fields may
    be — anything else is rejected at emit time (and statically by
    simlint SL205), so an event's payload surface is exactly what is
    declared here.
    """

    name: str
    description: str
    fields: tuple[str, ...] = ()   # required payload fields
    optional: tuple[str, ...] = ()  # declared but not required


def _registry(*specs: EventSpec) -> dict[str, EventSpec]:
    """Build the name -> spec mapping, rejecting duplicates."""
    out: dict[str, EventSpec] = {}
    for spec in specs:
        if spec.name in out:
            raise ValueError(f"duplicate event spec: {spec.name}")
        out[spec.name] = spec
    return out


#: The closed event vocabulary.  ``job.*`` events carry a ``job`` id;
#: ``cell.*`` events carry the cell ``fingerprint`` (and ``job`` when
#: the transition is attributable to one submission).
EVENT_SPECS: dict[str, EventSpec] = _registry(
    EventSpec("job.enqueued", "a submitted spec was accepted and exploded "
              "into cells", ("job", "cells"), optional=("trace",)),
    EventSpec("job.completed", "a job reached a terminal state; reason is "
              "done | failed | cancelled", ("job", "reason"),
              optional=("trace",)),
    EventSpec("cell.enqueued", "a new cell entered the queue",
              ("job", "fingerprint"), optional=("trace",)),
    EventSpec("cell.deduped", "a submission matched an in-flight cell and "
              "shares its run", ("job", "fingerprint"),
              optional=("trace",)),
    EventSpec("cell.leased", "a worker took the cell under a heartbeat "
              "lease", ("fingerprint", "worker"), optional=("trace",)),
    EventSpec("cell.started", "a worker began simulating the cell (it was "
              "not cached)", ("fingerprint", "worker"),
              optional=("trace",)),
    EventSpec("cell.cache_hit", "the cell was served from the result store "
              "without simulation", ("fingerprint",),
              optional=("trace",)),
    EventSpec("cell.finished", "the cell's summary is stored and its jobs "
              "were credited", ("fingerprint",), optional=("trace",)),
    EventSpec("cell.retried", "the cell was re-enqueued; reason is "
              "lease_expired | worker_death | worker_error",
              ("fingerprint", "reason"), optional=("trace",)),
    EventSpec("cell.failed", "the cell exhausted its retries; reason as "
              "for cell.retried", ("fingerprint", "reason"),
              optional=("trace",)),
    EventSpec("cell.fuzz_finding", "a fuzz campaign cell surfaced a "
              "finding; finding is its kind (e.g. "
              "differential-divergence)", ("fingerprint", "finding"),
              optional=("trace",)),
)

#: Just the declared names (what SL009 checks literals against).
EVENT_NAMES = frozenset(EVENT_SPECS)


class EventLog:
    """Ordered, validated, observable log of service events.

    ``metrics`` and ``tracer`` default to the no-op singletons, so the
    log costs nothing extra unless observability is attached.
    Subscribers (see :meth:`subscribe`) are called synchronously after
    each append — the API layer uses this to wake NDJSON streams.

    Memory is bounded for long-running services: the global log keeps
    only the newest ``max_records`` records (a ring buffer), and the
    per-job views of jobs long past their ``job.completed`` event are
    pruned once more than ``retain_terminal`` jobs have finished
    after them.  Pass ``None`` for either to keep everything (the
    pure state-machine tests do).

    Thread-safety: the service emits from executor threads (queue and
    store calls are offloaded so their file I/O stays off the event
    loop), so all log state is serialized on one reentrant lock.
    Subscribers are called *outside* the lock — a subscriber that
    re-enters the log or wakes the loop must not be able to deadlock
    against a concurrent emitter.
    """

    #: The drop hook fires on the first overwritten record, then every
    #: this-many drops — one flight-recorder note per episode, not one
    #: per event at saturation.
    DROP_NOTE_EVERY = 10_000

    def __init__(
        self,
        metrics=NULL_METRICS,
        tracer=NULL_TRACER,
        max_records: int | None = DEFAULT_MAX_RECORDS,
        retain_terminal: int | None = DEFAULT_RETAIN_TERMINAL,
        on_drop: Callable[[int], None] | None = None,
    ):
        self._metrics = metrics
        self._tracer = tracer
        self._counter = metrics.counter(
            "repro_service_events_total",
            "service events by declared name", labels=("event",),
        )
        # .labels() materializes the (unlabeled) series now, so the
        # Prometheus export shows an explicit 0 before any overwrite.
        self._dropped_series = metrics.counter(
            "repro_service_events_dropped_total",
            "global event-ring records overwritten before any dump/replay",
        ).labels()
        self._seq = 0
        self.dropped = 0
        self._on_drop = on_drop
        self.retain_terminal = retain_terminal
        self._lock = threading.RLock()
        self.records: deque[dict[str, Any]] = deque(maxlen=max_records)
        self._by_job: dict[str, list[dict[str, Any]]] = defaultdict(list)
        self._cell_jobs: dict[str, set[str]] = defaultdict(set)
        self._terminal_jobs: deque[str] = deque()
        self._subscribers: list[Callable[[dict[str, Any]], None]] = []

    def emit(self, name: str, **fields: Any) -> dict[str, Any]:
        """Record one event; raises on undeclared names/missing or
        undeclared fields."""
        spec = EVENT_SPECS.get(name)
        if spec is None:
            raise ValueError(f"undeclared service event: {name!r}")
        missing = [f for f in spec.fields if f not in fields]
        if missing:
            raise ValueError(
                f"event {name!r} is missing required fields {missing}"
            )
        undeclared = [
            f for f in fields
            if f not in spec.fields and f not in spec.optional
        ]
        if undeclared:
            raise ValueError(
                f"event {name!r} carries undeclared fields {undeclared}"
            )
        drop_hook = None
        with self._lock:
            # The ring is full: the append below overwrites the oldest
            # record before anything could dump or replay it.  Account
            # for it loudly (counter + throttled note) instead of
            # letting the deque drop it silently.
            if (
                self.records.maxlen is not None
                and len(self.records) == self.records.maxlen
            ):
                self.dropped += 1
                self._dropped_series.inc()
                if self._on_drop is not None and (
                    self.dropped == 1
                    or self.dropped % self.DROP_NOTE_EVERY == 0
                ):
                    drop_hook = self._on_drop
            self._seq += 1
            record = {"seq": self._seq, "event": name, **fields}
            self.records.append(record)
            # Route the record into every interested job's view: the
            # explicit ``job`` field, plus every job attached to the
            # cell fingerprint (cell.leased/started/... carry only the
            # fingerprint, but a job's stream must show its cells'
            # whole lifecycle — including cells it shares with other
            # jobs).
            jobs = set()
            if fields.get("job") is not None:
                jobs.add(fields["job"])
            fingerprint = fields.get("fingerprint")
            if fingerprint is not None:
                jobs |= self._cell_jobs.get(fingerprint, set())
            for job in sorted(jobs):
                self._by_job[job].append(record)
            if name == "job.completed":
                self._retire_job_view(fields.get("job"))
            self._counter.labels(event=name).inc()
            self._tracer.emit(name, **fields)
            subscribers = list(self._subscribers)
            drop_count = self.dropped
        if drop_hook is not None:
            # Outside the lock, like subscribers: the hook writes a
            # flight-recorder note and must not be able to deadlock
            # against a concurrent emitter.
            drop_hook(drop_count)
        for subscriber in subscribers:
            subscriber(record)
        return record

    def _retire_job_view(self, job: str | None) -> None:
        """Queue a now-terminal job for retention-based view pruning.

        The view survives the next ``retain_terminal`` job
        completions, so recently finished jobs still replay their
        full history to late-attaching event streams.
        """
        if job is None or self.retain_terminal is None:
            return
        self._terminal_jobs.append(job)
        while len(self._terminal_jobs) > self.retain_terminal:
            self.prune_job(self._terminal_jobs.popleft())

    def prune_job(self, job_id: str) -> None:
        """Drop one job's per-job view (the shared records stay in
        the global ring until they age out)."""
        with self._lock:
            self._by_job.pop(job_id, None)

    def attach(self, fingerprint: str, job: str) -> None:
        """Stream future events for this cell into ``job``'s view."""
        with self._lock:
            self._cell_jobs[fingerprint].add(job)

    def detach_cell(self, fingerprint: str) -> None:
        """Forget a retired cell's job routing (the cell left the
        live set; a later identical submission re-attaches)."""
        with self._lock:
            self._cell_jobs.pop(fingerprint, None)

    def subscribe(self, callback: Callable[[dict[str, Any]], None]) -> None:
        """Call ``callback(record)`` after every future emit."""
        with self._lock:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[dict[str, Any]], None]) -> None:
        """Remove a subscriber registered with :meth:`subscribe`."""
        with self._lock:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

    def for_job(self, job_id: str) -> list[dict[str, Any]]:
        """The events attributed to one job, in emission order."""
        with self._lock:
            return list(self._by_job.get(job_id, ()))

    def named(self, name: str) -> list[dict[str, Any]]:
        """Every record of one declared event name."""
        with self._lock:
            return [r for r in self.records if r["event"] == name]

    def tail(self, n: int) -> list[dict[str, Any]]:
        """The newest ``n`` records (the ``/telemetry`` event tail)."""
        with self._lock:
            records = list(self.records)
        return records[-n:]

    def occupancy(self) -> dict[str, Any]:
        """Ring occupancy for telemetry sampling."""
        with self._lock:
            return {
                "records": len(self.records),
                "capacity": self.records.maxlen,
                "dropped": self.dropped,
                "views": len(self._by_job),
            }

    def to_ndjson(self) -> str:
        """The retained log (newest ``max_records`` records), one
        JSON object per line (the CI artifact)."""
        import json

        with self._lock:
            return "".join(json.dumps(r, sort_keys=True) + "\n"
                           for r in self.records)
