"""Hand-rolled asyncio HTTP/JSON API over the queue + worker shard.

No third-party web framework: a small HTTP/1.1 request parser on
:func:`asyncio.start_server` (the container has stdlib only, and the
service needs exactly six routes).  Every response closes the
connection (``Connection: close``) — the client is a CLI, not a
browser pool, and close-delimited bodies keep the event stream
implementation trivial.

Routes
------

``POST /jobs``
    Body: a job spec (see :func:`repro.service.queue.validate_spec`).
    202 with ``{"job", "cells", "status"}``; 400 on a bad spec.
``GET /jobs/{id}``
    Job record + per-cell states; 404 for unknown ids.
``POST /jobs/{id}/cancel``
    Cancel; queued exclusive cells drain, the job completes with
    ``reason=cancelled``.
``GET /jobs/{id}/events``
    NDJSON stream of the job's named events, live until the job
    reaches a terminal state (then the stream ends).  Replays events
    emitted before the request attached, so a client can always
    follow a job from the beginning.
``GET /results/{fingerprint}``
    The stored summary for one cell fingerprint; 404 if unknown.
``GET /metrics``
    Prometheus text exposition of the service registry (includes
    ``repro_service_events_total{event=...}``).
``GET /healthz``
    Liveness: ``{"ok": true}``.
"""

from __future__ import annotations

import asyncio
import json
import logging
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry

from .events import EventLog
from .queue import JOB_TERMINAL, JobQueue, SpecError
from .workers import ResultStore, WorkerShard

log = logging.getLogger("repro.service")

#: Cap on request bodies (a job spec is tiny; anything bigger is abuse).
MAX_BODY = 1 << 20


class Service:
    """The assembled service: queue, store, shard, event log, HTTP."""

    def __init__(
        self,
        root: str | Path,
        workers: int = 1,
        lease_ttl: float | None = None,
        executor=None,
        metrics: MetricsRegistry | None = None,
    ):
        self.root = Path(root)
        self.metrics = metrics or MetricsRegistry()
        self.events = EventLog(metrics=self.metrics)
        queue_kwargs = {} if lease_ttl is None else {"lease_ttl": lease_ttl}
        self.queue = JobQueue(
            self.root / "queue", events=self.events, **queue_kwargs,
        )
        self.store = ResultStore(self.root / "results")
        self.shard = WorkerShard(
            self.queue, self.store, self.events,
            workers=workers, executor=executor,
        )
        self._server: asyncio.AbstractServer | None = None
        self._wake = asyncio.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self.events.subscribe(lambda _record: self._wake_streams())

    def _wake_streams(self) -> None:
        """Wake every pending event stream after an emit.

        Emits now happen on executor threads (queue/store calls are
        offloaded), and ``asyncio.Event.set`` is not thread-safe —
        marshal onto the captured loop.  Before :meth:`start` there is
        no loop (synchronous state-machine tests): set directly.
        """
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._wake.set)
        else:
            self._wake.set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Start the shard and the HTTP listener; returns (host, port)."""
        self._loop = asyncio.get_running_loop()
        await self.shard.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=host, port=port,
        )
        sock = self._server.sockets[0]
        bound_host, bound_port = sock.getsockname()[:2]
        log.info("service listening on http://%s:%s", bound_host, bound_port)
        return bound_host, bound_port

    async def stop(self) -> None:
        """Stop accepting, stop the shard, flush everything."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.shard.stop()

    async def serve_forever(self) -> None:
        """Block until cancelled (the ``repro-sim serve`` main loop)."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
    ) -> None:
        """Parse one request, route it, always close the connection."""
        try:
            request = await self._read_request(reader)
            if request is not None:
                await self._route(request, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # noqa: BLE001 - one bad request, not the server
            log.warning("request handling failed: %s", exc)
            try:
                await self._respond(writer, 500, {"error": str(exc)})
            except (ConnectionError, RuntimeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader) -> dict | None:
        """Parse the request line, headers, and body (or None on EOF)."""
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.IncompleteReadError):
            return None
        if not request_line:
            return None
        try:
            method, target, _version = request_line.decode("latin1").split()
        except ValueError:
            return {"method": "BAD", "path": "/", "body": b""}
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        body = b""
        if 0 < length <= MAX_BODY:
            body = await reader.readexactly(length)
        return {"method": method.upper(), "path": target, "body": body}

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter, status: int, doc: Any,
        content_type: str = "application/json",
    ) -> None:
        """Write one close-delimited response with a JSON/text body."""
        if isinstance(doc, (dict, list)):
            payload = (json.dumps(doc, sort_keys=True) + "\n").encode()
        else:
            payload = str(doc).encode()
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 405: "Method Not Allowed",
                  500: "Internal Server Error"}.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + payload)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _route(
        self, request: dict, writer: asyncio.StreamWriter,
    ) -> None:
        """Dispatch one parsed request to its handler."""
        method, path = request["method"], request["path"].rstrip("/")
        parts = [p for p in path.split("/") if p]
        if method == "POST" and parts == ["jobs"]:
            await self._post_job(request["body"], writer)
        elif method == "GET" and len(parts) == 2 and parts[0] == "jobs":
            await self._get_job(parts[1], writer)
        elif (method == "POST" and len(parts) == 3 and parts[0] == "jobs"
              and parts[2] == "cancel"):
            await self._cancel_job(parts[1], writer)
        elif (method == "GET" and len(parts) == 3 and parts[0] == "jobs"
              and parts[2] == "events"):
            await self._stream_events(parts[1], writer)
        elif method == "GET" and len(parts) == 2 and parts[0] == "results":
            await self._get_result(parts[1], writer)
        elif method == "GET" and parts == ["metrics"]:
            await self._respond(
                writer, 200, self.metrics.to_prometheus(),
                content_type="text/plain; version=0.0.4",
            )
        elif method == "GET" and parts == ["healthz"]:
            await self._respond(writer, 200, {"ok": True})
        else:
            await self._respond(
                writer, 404 if method in ("GET", "POST") else 405,
                {"error": f"no route for {method} {path or '/'}"},
            )

    async def _post_job(
        self, body: bytes, writer: asyncio.StreamWriter,
    ) -> None:
        """``POST /jobs``: validate, enqueue, 202."""
        try:
            spec = json.loads(body.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            await self._respond(writer, 400, {"error": f"bad JSON: {exc}"})
            return
        loop = asyncio.get_running_loop()
        try:
            # submit() rewrites state.json under the queue lock; off
            # the loop so a slow disk cannot stall other requests.
            job = await loop.run_in_executor(None, self.queue.submit, spec)
        except SpecError as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        await self._respond(writer, 202, {
            "job": job["id"], "cells": job["cells"], "status": job["status"],
        })

    async def _get_job(
        self, job_id: str, writer: asyncio.StreamWriter,
    ) -> None:
        """``GET /jobs/{id}``: the record + per-cell states."""
        loop = asyncio.get_running_loop()
        try:
            doc = await loop.run_in_executor(
                None, self.queue.job_status, job_id,
            )
        except KeyError:
            await self._respond(writer, 404, {"error": f"no job {job_id}"})
            return
        await self._respond(writer, 200, doc)

    async def _cancel_job(
        self, job_id: str, writer: asyncio.StreamWriter,
    ) -> None:
        """``POST /jobs/{id}/cancel``."""
        loop = asyncio.get_running_loop()
        try:
            job = await loop.run_in_executor(None, self.queue.cancel, job_id)
        except KeyError:
            await self._respond(writer, 404, {"error": f"no job {job_id}"})
            return
        await self._respond(writer, 200, {
            "job": job["id"], "status": job["status"],
        })

    async def _stream_events(
        self, job_id: str, writer: asyncio.StreamWriter,
    ) -> None:
        """``GET /jobs/{id}/events``: replay + follow as NDJSON.

        Queue state is read through the locked accessors — the
        ``jobs`` dict is mutated by executor threads under the queue
        lock, so a direct read here would race them (simlint SL202).
        """
        loop = asyncio.get_running_loop()
        if not await loop.run_in_executor(None, self.queue.has_job, job_id):
            await self._respond(writer, 404, {"error": f"no job {job_id}"})
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        sent = 0
        while True:
            records = self.events.for_job(job_id)
            for record in records[sent:]:
                writer.write(
                    (json.dumps(record, sort_keys=True) + "\n").encode()
                )
            sent = len(records)
            await writer.drain()
            status = await loop.run_in_executor(
                None, self.queue.status, job_id,
            )
            if status in JOB_TERMINAL:
                break
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=1.0)
            except asyncio.TimeoutError:
                pass  # periodic re-check even with no event traffic

    async def _get_result(
        self, fingerprint: str, writer: asyncio.StreamWriter,
    ) -> None:
        """``GET /results/{fingerprint}``: coords + stored summary."""
        loop = asyncio.get_running_loop()
        doc = await loop.run_in_executor(
            None, self.store.by_fingerprint, fingerprint,
        )
        if doc is None:
            await self._respond(
                writer, 404, {"error": f"no result for {fingerprint}"},
            )
            return
        await self._respond(writer, 200, doc)
