"""Hand-rolled asyncio HTTP/JSON API over the queue + worker shard.

No third-party web framework: a small HTTP/1.1 request parser on
:func:`asyncio.start_server` (the container has stdlib only, and the
service needs fewer than ten routes).  Every response closes the
connection (``Connection: close``) — the client is a CLI, not a
browser pool, and close-delimited bodies keep the event stream
implementation trivial.

Routes
------

``POST /jobs``
    Body: a job spec (see :func:`repro.service.queue.validate_spec`).
    202 with ``{"job", "cells", "status"}``; 400 on a bad spec.
``GET /jobs/{id}``
    Job record + per-cell states; 404 for unknown ids.
``POST /jobs/{id}/cancel``
    Cancel; queued exclusive cells drain, the job completes with
    ``reason=cancelled``.
``GET /jobs/{id}/events``
    NDJSON stream of the job's named events, live until the job
    reaches a terminal state (then the stream ends).  Replays events
    emitted before the request attached, so a client can always
    follow a job from the beginning.
``GET /jobs/{id}/trace``
    The job's distributed trace as span-event JSONL (service spans
    plus the remapped worker-side coherence spans) — feed it to
    ``repro-sim report [--chrome]``.  404 until the trace exists.
``GET /results/{fingerprint}``
    The stored summary for one cell fingerprint; 404 if unknown.
``GET /metrics``
    Prometheus text exposition of the service registry (includes
    ``repro_service_events_total{event=...}`` and the sampled
    ``repro_service_queue_depth{state=...}`` gauges).
``GET /telemetry``
    The time-series vitals ring (see
    :mod:`repro.obs.timeseries`) plus an event tail and trace-store
    occupancy — what ``repro-sim service top`` renders.
``GET /healthz``
    Liveness: ``{"ok": true}``.
"""

from __future__ import annotations

import asyncio
import json
import logging
from pathlib import Path
from typing import Any

from repro.obs.flight import FlightRecorder
from repro.obs.jobtrace import JobTraceStore
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TelemetryStore

from .events import EventLog
from .queue import JOB_TERMINAL, JobQueue, SpecError
from .workers import ResultStore, WorkerShard

log = logging.getLogger("repro.service")

#: Cap on request bodies (a job spec is tiny; anything bigger is abuse).
MAX_BODY = 1 << 20

#: How many newest EventLog records ``GET /telemetry`` tails.
TELEMETRY_EVENT_TAIL = 50

#: Sentinel for "caller did not override the EventLog default".
_UNSET = object()


class Service:
    """The assembled service: queue, store, shard, event log, HTTP.

    Observability plumbing assembled here:

    * one shared :class:`JobTraceStore` — the queue mints ``job`` /
      ``cell.lease`` spans into it from executor threads, the shard
      mints ``cell.run`` / ``cell.cache_hit`` spans and ingests the
      worker-side folded coherence spans; ``GET /jobs/{id}/trace``
      serves it;
    * a :class:`TelemetryStore` fed by a background sampler task
      (:meth:`_telemetry_loop`) that also updates the sampled
      Prometheus gauges; ``GET /telemetry`` serves it;
    * optionally (``flight_path``) a :class:`FlightRecorder`
      subscribed to the event log and flushed every sampler tick, so
      a killed server leaves a parseable postmortem on disk.

    ``max_event_records`` / ``retain_terminal`` pass through to the
    :class:`EventLog` ring (tests shrink them to exercise truncation).
    """

    def __init__(
        self,
        root: str | Path,
        workers: int = 1,
        lease_ttl: float | None = None,
        executor=None,
        metrics: MetricsRegistry | None = None,
        flight_path: str | Path | None = None,
        telemetry_interval: float = 1.0,
        max_event_records=_UNSET,
        retain_terminal=_UNSET,
    ):
        self.root = Path(root)
        self.metrics = metrics or MetricsRegistry()
        self.traces = JobTraceStore()
        self.telemetry = TelemetryStore()
        self.telemetry_interval = telemetry_interval
        self.flight = (
            FlightRecorder(flight_path) if flight_path is not None else None
        )
        log_kwargs = {}
        if max_event_records is not _UNSET:
            log_kwargs["max_records"] = max_event_records
        if retain_terminal is not _UNSET:
            log_kwargs["retain_terminal"] = retain_terminal
        self.events = EventLog(
            metrics=self.metrics,
            on_drop=self._note_drop if self.flight is not None else None,
            **log_kwargs,
        )
        queue_kwargs = {} if lease_ttl is None else {"lease_ttl": lease_ttl}
        self.queue = JobQueue(
            self.root / "queue", events=self.events,
            traces=self.traces, metrics=self.metrics, **queue_kwargs,
        )
        self.store = ResultStore(self.root / "results")
        self.shard = WorkerShard(
            self.queue, self.store, self.events,
            workers=workers, executor=executor,
        )
        # Sampled gauges (set by _sample_once; declared here so the
        # families exist — with help text — before the first tick).
        self._depth_gauge = self.metrics.gauge(
            "repro_service_queue_depth", "cells by queue state",
            labels=("state",),
        )
        self._jobs_gauge = self.metrics.gauge(
            "repro_service_jobs", "jobs by status (active, or the "
            "terminal reason)", labels=("status",),
        )
        self._util_gauge = self.metrics.gauge(
            "repro_service_worker_utilization",
            "busy workers / worker slots",
        )
        self._busy_gauge = self.metrics.gauge(
            "repro_service_workers_busy", "workers currently simulating",
        )
        self._ring_gauge = self.metrics.gauge(
            "repro_service_event_ring_records", "EventLog ring occupancy",
        )
        self._cache_gauge = self.metrics.gauge(
            "repro_service_cache_hit_ratio",
            "cache hits / (cache hits + started)",
        )
        self._server: asyncio.AbstractServer | None = None
        self._wake = asyncio.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._telemetry_task: asyncio.Task | None = None
        self.events.subscribe(lambda _record: self._wake_streams())
        if self.flight is not None:
            self.events.subscribe(self.flight.record_event)

    def _note_drop(self, dropped: int) -> None:
        """EventLog overflow hook: leave a flight-recorder marker."""
        if self.flight is not None:
            self.flight.note("events.dropped", dropped=dropped)

    def _wake_streams(self) -> None:
        """Wake every pending event stream after an emit.

        Emits now happen on executor threads (queue/store calls are
        offloaded), and ``asyncio.Event.set`` is not thread-safe —
        marshal onto the captured loop.  Before :meth:`start` there is
        no loop (synchronous state-machine tests): set directly.
        """
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._wake.set)
        else:
            self._wake.set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Start the shard, the telemetry sampler, and the listener."""
        self._loop = asyncio.get_running_loop()
        await self.shard.start()
        if self.telemetry_interval > 0:
            self._telemetry_task = asyncio.create_task(
                self._telemetry_loop(), name="repro-telemetry",
            )
        self._server = await asyncio.start_server(
            self._handle_connection, host=host, port=port,
        )
        sock = self._server.sockets[0]
        bound_host, bound_port = sock.getsockname()[:2]
        log.info("service listening on http://%s:%s", bound_host, bound_port)
        return bound_host, bound_port

    async def stop(self) -> None:
        """Stop accepting, stop the shard, flush everything."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._telemetry_task is not None:
            self._telemetry_task.cancel()
            try:
                await self._telemetry_task
            except asyncio.CancelledError:
                pass
            self._telemetry_task = None
        await self.shard.stop()
        if self.flight is not None:
            # One last sample + forced flush so the on-disk document
            # reflects the final state (file I/O off the loop).
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._sample_once)
            await loop.run_in_executor(None, self.flight.close)

    # ------------------------------------------------------------------
    # Telemetry sampling
    # ------------------------------------------------------------------

    def _sample_once(self) -> dict:
        """Take one vitals sample (runs on an executor thread).

        Reads go through the locked accessors (``depth_counts`` /
        ``lease_stats`` / ``occupancy``); ``shard.busy`` and
        ``shard.workers`` are loop-thread-written ints, so a stale
        read costs one tick of accuracy, never a torn value.
        """
        depth = self.queue.depth_counts()
        lease = self.queue.lease_stats()
        ring = self.events.occupancy()
        cells = depth["cells"]
        jobs = depth["jobs"]
        workers = self.shard.workers
        busy = self.shard.busy
        hits = self.metrics.get(
            "repro_service_events_total", event="cell.cache_hit",
        )
        started = self.metrics.get(
            "repro_service_events_total", event="cell.started",
        )
        sample = {
            "ts": self.queue.clock(),
            "queued": cells.get("queued", 0),
            "leased": cells.get("leased", 0),
            "jobs_active": jobs.get("active", 0),
            "jobs_done": jobs.get("done", 0),
            "jobs_failed": jobs.get("failed", 0),
            "jobs_cancelled": jobs.get("cancelled", 0),
            "workers": workers,
            "busy": busy,
            "utilization": busy / workers if workers else 0.0,
            "leases": lease["count"],
            "lease_wait_avg": (
                lease["wait_total"] / lease["count"] if lease["count"] else 0.0
            ),
            "lease_wait_max": lease["wait_max"],
            "cache_hit_ratio": (
                hits / (hits + started) if hits + started else 0.0
            ),
            "event_records": ring["records"],
            "event_dropped": ring["dropped"],
        }
        for state, n in cells.items():
            self._depth_gauge.labels(state=state).set(n)
        for status, n in jobs.items():
            self._jobs_gauge.labels(status=status).set(n)
        self._util_gauge.labels().set(sample["utilization"])
        self._busy_gauge.labels().set(busy)
        self._ring_gauge.labels().set(ring["records"])
        self._cache_gauge.labels().set(sample["cache_hit_ratio"])
        self.telemetry.record(sample)
        if self.flight is not None:
            self.flight.record_sample(sample)
            self.flight.flush()
        return sample

    async def _telemetry_loop(self) -> None:
        """Sample vitals every ``telemetry_interval`` seconds."""
        loop = asyncio.get_running_loop()
        while True:
            try:
                await loop.run_in_executor(None, self._sample_once)
            except Exception:  # noqa: BLE001 - keep sampling through faults
                log.exception("telemetry sample failed")
            await asyncio.sleep(self.telemetry_interval)

    async def serve_forever(self) -> None:
        """Block until cancelled (the ``repro-sim serve`` main loop)."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
    ) -> None:
        """Parse one request, route it, always close the connection."""
        try:
            request = await self._read_request(reader)
            if request is not None:
                await self._route(request, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # noqa: BLE001 - one bad request, not the server
            log.warning("request handling failed: %s", exc)
            try:
                await self._respond(writer, 500, {"error": str(exc)})
            except (ConnectionError, RuntimeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader) -> dict | None:
        """Parse the request line, headers, and body (or None on EOF)."""
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.IncompleteReadError):
            return None
        if not request_line:
            return None
        try:
            method, target, _version = request_line.decode("latin1").split()
        except ValueError:
            return {"method": "BAD", "path": "/", "body": b""}
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        body = b""
        if 0 < length <= MAX_BODY:
            body = await reader.readexactly(length)
        return {"method": method.upper(), "path": target, "body": body}

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter, status: int, doc: Any,
        content_type: str = "application/json",
    ) -> None:
        """Write one close-delimited response with a JSON/text body."""
        if isinstance(doc, (dict, list)):
            payload = (json.dumps(doc, sort_keys=True) + "\n").encode()
        else:
            payload = str(doc).encode()
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 405: "Method Not Allowed",
                  500: "Internal Server Error"}.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + payload)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _route(
        self, request: dict, writer: asyncio.StreamWriter,
    ) -> None:
        """Dispatch one parsed request to its handler."""
        method, path = request["method"], request["path"].rstrip("/")
        parts = [p for p in path.split("/") if p]
        if method == "POST" and parts == ["jobs"]:
            await self._post_job(request["body"], writer)
        elif method == "GET" and len(parts) == 2 and parts[0] == "jobs":
            await self._get_job(parts[1], writer)
        elif (method == "POST" and len(parts) == 3 and parts[0] == "jobs"
              and parts[2] == "cancel"):
            await self._cancel_job(parts[1], writer)
        elif (method == "GET" and len(parts) == 3 and parts[0] == "jobs"
              and parts[2] == "events"):
            await self._stream_events(parts[1], writer)
        elif (method == "GET" and len(parts) == 3 and parts[0] == "jobs"
              and parts[2] == "trace"):
            await self._get_trace(parts[1], writer)
        elif method == "GET" and len(parts) == 2 and parts[0] == "results":
            await self._get_result(parts[1], writer)
        elif method == "GET" and parts == ["telemetry"]:
            await self._get_telemetry(writer)
        elif method == "GET" and parts == ["metrics"]:
            await self._respond(
                writer, 200, self.metrics.to_prometheus(),
                content_type="text/plain; version=0.0.4",
            )
        elif method == "GET" and parts == ["healthz"]:
            await self._respond(writer, 200, {"ok": True})
        else:
            await self._respond(
                writer, 404 if method in ("GET", "POST") else 405,
                {"error": f"no route for {method} {path or '/'}"},
            )

    async def _post_job(
        self, body: bytes, writer: asyncio.StreamWriter,
    ) -> None:
        """``POST /jobs``: validate, enqueue, 202."""
        try:
            spec = json.loads(body.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            await self._respond(writer, 400, {"error": f"bad JSON: {exc}"})
            return
        loop = asyncio.get_running_loop()
        try:
            # submit() rewrites state.json under the queue lock; off
            # the loop so a slow disk cannot stall other requests.
            job = await loop.run_in_executor(None, self.queue.submit, spec)
        except SpecError as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        await self._respond(writer, 202, {
            "job": job["id"], "cells": job["cells"], "status": job["status"],
            "trace": job.get("trace"),
        })

    async def _get_job(
        self, job_id: str, writer: asyncio.StreamWriter,
    ) -> None:
        """``GET /jobs/{id}``: the record + per-cell states."""
        loop = asyncio.get_running_loop()
        try:
            doc = await loop.run_in_executor(
                None, self.queue.job_status, job_id,
            )
        except KeyError:
            await self._respond(writer, 404, {"error": f"no job {job_id}"})
            return
        await self._respond(writer, 200, doc)

    async def _cancel_job(
        self, job_id: str, writer: asyncio.StreamWriter,
    ) -> None:
        """``POST /jobs/{id}/cancel``."""
        loop = asyncio.get_running_loop()
        try:
            job = await loop.run_in_executor(None, self.queue.cancel, job_id)
        except KeyError:
            await self._respond(writer, 404, {"error": f"no job {job_id}"})
            return
        await self._respond(writer, 200, {
            "job": job["id"], "status": job["status"],
        })

    async def _stream_events(
        self, job_id: str, writer: asyncio.StreamWriter,
    ) -> None:
        """``GET /jobs/{id}/events``: replay + follow as NDJSON.

        Queue state is read through the locked accessors — the
        ``jobs`` dict is mutated by executor threads under the queue
        lock, so a direct read here would race them (simlint SL202).
        """
        loop = asyncio.get_running_loop()
        if not await loop.run_in_executor(None, self.queue.has_job, job_id):
            await self._respond(writer, 404, {"error": f"no job {job_id}"})
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        sent = 0
        while True:
            records = self.events.for_job(job_id)
            for record in records[sent:]:
                writer.write(
                    (json.dumps(record, sort_keys=True) + "\n").encode()
                )
            sent = len(records)
            await writer.drain()
            status = await loop.run_in_executor(
                None, self.queue.status, job_id,
            )
            if status in JOB_TERMINAL:
                break
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=1.0)
            except asyncio.TimeoutError:
                pass  # periodic re-check even with no event traffic

    async def _get_trace(
        self, job_id: str, writer: asyncio.StreamWriter,
    ) -> None:
        """``GET /jobs/{id}/trace``: the job's span-event JSONL.

        The trace id comes from the locked queue accessor; the trace
        store itself is lock-serialized in-memory state (no file
        I/O), so it is read directly like the event log.
        """
        loop = asyncio.get_running_loop()
        try:
            trace = await loop.run_in_executor(
                None, self.queue.job_trace, job_id,
            )
        except KeyError:
            await self._respond(writer, 404, {"error": f"no job {job_id}"})
            return
        if trace is None or not self.traces.has(trace):
            await self._respond(
                writer, 404, {"error": f"no trace for job {job_id}"},
            )
            return
        await self._respond(
            writer, 200, self.traces.to_jsonl(trace),
            content_type="application/x-ndjson",
        )

    async def _get_telemetry(self, writer: asyncio.StreamWriter) -> None:
        """``GET /telemetry``: vitals ring + event tail + trace stats.

        Everything here is lock-serialized in-memory state — no file
        I/O — so, like the event-stream reads, it stays on the loop.
        """
        doc = self.telemetry.to_json()
        doc["events"] = self.events.tail(TELEMETRY_EVENT_TAIL)
        doc["event_ring"] = self.events.occupancy()
        doc["traces"] = self.traces.stats()
        await self._respond(writer, 200, doc)

    async def _get_result(
        self, fingerprint: str, writer: asyncio.StreamWriter,
    ) -> None:
        """``GET /results/{fingerprint}``: coords + stored summary."""
        loop = asyncio.get_running_loop()
        doc = await loop.run_in_executor(
            None, self.store.by_fingerprint, fingerprint,
        )
        if doc is None:
            await self._respond(
                writer, 404, {"error": f"no result for {fingerprint}"},
            )
            return
        await self._respond(writer, 200, doc)
