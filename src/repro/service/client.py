"""Blocking HTTP client for the service (the ``repro-sim submit`` side).

Deliberately stdlib-``http.client`` and synchronous: the submitting
CLI is a separate process with nothing else to do, and a blocking
client keeps the event-follow loop a plain generator.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Iterator

from repro.common.errors import ConfigError


class ServiceError(ConfigError):
    """A non-2xx response from the service."""


class ServiceClient:
    """Thin wrapper over one host:port service endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 600.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(
        self, method: str, path: str, body: dict | None = None,
    ) -> tuple[int, Any]:
        """One request/response cycle; returns (status, parsed JSON)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout,
        )
        try:
            payload = json.dumps(body) if body is not None else None
            conn.request(
                method, path, body=payload,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            raw = response.read().decode()
            try:
                doc = json.loads(raw) if raw else None
            except json.JSONDecodeError:
                doc = raw
            return response.status, doc
        finally:
            conn.close()

    def submit(self, spec: dict) -> dict:
        """``POST /jobs``; returns the acceptance doc or raises."""
        status, doc = self._request("POST", "/jobs", body=spec)
        if status != 202:
            raise ServiceError(f"submit rejected ({status}): {doc}")
        return doc

    def job(self, job_id: str) -> dict:
        """``GET /jobs/{id}``."""
        status, doc = self._request("GET", f"/jobs/{job_id}")
        if status != 200:
            raise ServiceError(f"job {job_id} lookup failed ({status}): {doc}")
        return doc

    def cancel(self, job_id: str) -> dict:
        """``POST /jobs/{id}/cancel``."""
        status, doc = self._request("POST", f"/jobs/{job_id}/cancel")
        if status != 200:
            raise ServiceError(f"cancel {job_id} failed ({status}): {doc}")
        return doc

    def result(self, fingerprint: str) -> dict:
        """``GET /results/{fingerprint}``."""
        status, doc = self._request("GET", f"/results/{fingerprint}")
        if status != 200:
            raise ServiceError(
                f"result {fingerprint} lookup failed ({status}): {doc}"
            )
        return doc

    def metrics(self) -> str:
        """``GET /metrics`` (Prometheus text)."""
        status, doc = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(f"metrics failed ({status})")
        return doc if isinstance(doc, str) else json.dumps(doc)

    def telemetry(self) -> dict:
        """``GET /telemetry`` (the vitals time-series document)."""
        status, doc = self._request("GET", "/telemetry")
        if status != 200:
            raise ServiceError(f"telemetry failed ({status}): {doc}")
        return doc

    def trace(self, job_id: str) -> str:
        """``GET /jobs/{id}/trace`` (span-event JSONL, raw text)."""
        status, doc = self._request("GET", f"/jobs/{job_id}/trace")
        if status != 200:
            raise ServiceError(
                f"trace for {job_id} failed ({status}): {doc}"
            )
        return doc if isinstance(doc, str) else json.dumps(doc)

    def follow(self, job_id: str) -> Iterator[dict]:
        """Stream ``GET /jobs/{id}/events`` records until the job ends."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout,
        )
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status != 200:
                raise ServiceError(
                    f"event stream for {job_id} failed ({response.status})"
                )
            while True:
                # readline (not read(N)) so records surface as they
                # arrive: a bulk read would block until the server
                # closes the close-delimited stream.
                line = response.readline()
                if not line:
                    break
                if line.strip():
                    yield json.loads(line)
        finally:
            conn.close()

    def submit_and_wait(self, spec: dict) -> tuple[dict, list[dict]]:
        """Submit, follow to completion; returns (final job, events)."""
        accepted = self.submit(spec)
        events = list(self.follow(accepted["job"]))
        return self.job(accepted["job"]), events
