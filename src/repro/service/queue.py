"""Durable on-disk job queue for the simulation service.

A *job* is one submitted experiment spec; the queue explodes it into
(benchmark × technique × seed) *cells*, each identified by its
:func:`~repro.experiments.runner.cell_fingerprint` — the stable hash
of the fully-configured simulation.  A ``{"kind": "fuzz"}`` spec
instead explodes into one fuzz-campaign cell per seed
(:func:`fuzz_cell_identity`); both kinds share every queue mechanism
below.  Cells, not jobs, are the unit of scheduling:

* **dedupe** — a submission whose cell fingerprint matches a live
  (queued or leased) cell joins that cell instead of enqueuing a
  duplicate (``cell.deduped``); a million identical submissions cost
  one simulation.  Finished cells leave the live set — later
  identical submissions re-enqueue and are then served from the
  result store without simulation (``cell.cache_hit``).
* **priorities** — higher job priority leases first; FIFO within a
  priority.
* **leases** — a worker takes a cell under a deadline
  (``lease_ttl`` seconds on the injected monotonic clock) and renews
  it by heartbeat; an expired or explicitly failed lease re-enqueues
  the cell exactly once per retry budget (``cell.retried{reason}``)
  before it fails for good (``cell.failed{reason}``).
* **cancellation** — cancelling a job drops its not-yet-leased cells
  (unless another job shares them) and completes the job with
  ``reason=cancelled``; an in-flight leased cell is left to finish so
  its result still lands in the store.

Durability: every mutation rewrites ``state.json`` atomically
(temp file + ``os.replace``).  On load, cells found *leased* are
returned to *queued* — the lease holder died with the process, and a
re-run of a deterministic cell is always safe.

Thread-safety: the service offloads queue calls to executor threads
(the ``state.json`` rewrite must not block the event loop — simlint
SL201), so every public method serializes on one reentrant lock and
``jobs``/``cells``/``_seq`` must only be touched with it held
(simlint SL202 enforces this statically).  Async callers read state
through the locked :meth:`has_job`/:meth:`status` accessors.

All timestamps come from the injected ``clock`` (default
:func:`time.perf_counter`) and ids from a persisted sequence counter,
keeping the service inside the repo's determinism lint (SL001): no
wall clocks, no randomness.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
import time
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.common.config import MachineConfig, scaled_config
from repro.common.errors import ConfigError
from repro.experiments.runner import DEFAULT_JITTER, cell_fingerprint
from repro.obs.jobtrace import JobTraceStore
from repro.obs.metrics import NULL_METRICS
from repro.system.techniques import ALL_TECHNIQUES, configure_technique
from repro.workloads.registry import BENCHMARKS, EXTRA_BENCHMARKS

from .events import EventLog

#: Lease deadline, in seconds of the queue's monotonic clock.
DEFAULT_LEASE_TTL = 30.0

#: Client-supplied trace ids: short, grep/filename-safe tokens.
TRACE_ID = re.compile(r"^[A-Za-z0-9._:-]{1,64}$")

#: Lease-latency histogram bounds, seconds (queued -> leased wait).
LEASE_LATENCY_BOUNDS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 30.0)

#: How many times a cell is re-enqueued after lease loss before it
#: fails for good ("exactly once" is the tested contract).
DEFAULT_MAX_RETRIES = 1

#: Terminal job states.
JOB_TERMINAL = ("done", "failed", "cancelled")


class SpecError(ConfigError):
    """A submitted job spec failed validation (HTTP 400)."""


#: Protocol names a fuzz spec may list (mirrors ProtocolSpec.NAMES;
#: kept literal so spec validation needs no verify import).
FUZZ_PROTOCOLS = ("mesi", "moesi", "mesti", "moesti", "emesti")

#: Ceiling on a fuzz cell's iteration budget: a cell is one lease, so
#: a huge budget would outlive any reasonable heartbeat horizon.
MAX_FUZZ_BUDGET = 10_000


def _validate_trace(spec: dict) -> str | None:
    """Validate an optional client-supplied ``trace`` id.

    Submitters may name the distributed trace their job's spans land
    in (e.g. to correlate across services); otherwise the job id
    becomes the trace id.  Must be a short filename/grep-safe token.
    """
    trace = spec.get("trace")
    if trace is None:
        return None
    if not isinstance(trace, str) or not TRACE_ID.match(trace):
        raise SpecError(
            "'trace' must match [A-Za-z0-9._:-]{1,64}, got " f"{trace!r}"
        )
    return trace


def _validate_fuzz_spec(spec: dict) -> dict:
    """Validate a ``kind="fuzz"`` spec: one campaign cell per seed."""
    seeds = list(spec.get("seeds") or ())
    if not seeds:
        raise SpecError("fuzz spec needs non-empty 'seeds'")
    if not all(
        isinstance(seed, int) and not isinstance(seed, bool)
        for seed in seeds
    ):
        raise SpecError("'seeds' must be integers (booleans rejected)")
    seeds = list(dict.fromkeys(seeds))
    budget = spec.get("budget", 50)
    if (
        not isinstance(budget, int) or isinstance(budget, bool)
        or not 1 <= budget <= MAX_FUZZ_BUDGET
    ):
        raise SpecError(
            f"'budget' must be an integer in 1..{MAX_FUZZ_BUDGET}, "
            f"got {budget!r}"
        )
    protocols = list(spec.get("protocols") or ["mesi", "mesti", "emesti"])
    for protocol in protocols:
        if protocol not in FUZZ_PROTOCOLS:
            raise SpecError(f"unknown protocol {protocol!r}")
    protocols = list(dict.fromkeys(protocols))
    interconnect = spec.get("interconnect", "bus")
    if interconnect not in ("bus", "directory"):
        raise SpecError(
            f"'interconnect' must be 'bus' or 'directory', "
            f"got {interconnect!r}"
        )
    priority = spec.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise SpecError(f"'priority' must be an integer, got {priority!r}")
    out = {
        "kind": "fuzz",
        "seeds": seeds,
        "budget": budget,
        "protocols": protocols,
        "interconnect": interconnect,
        "priority": priority,
    }
    trace = _validate_trace(spec)
    if trace is not None:
        out["trace"] = trace
    return out


def validate_spec(spec: dict) -> dict:
    """Normalize and validate a job spec; raises :class:`SpecError`.

    Two spec kinds exist.  The default simulation spec requires
    ``benchmarks`` (known names), ``techniques`` (known names), and
    ``seeds`` (ints; booleans rejected), with optional ``scale``
    (positive float, default 0.1) and ``priority`` (int, default 0).
    A ``{"kind": "fuzz"}`` spec instead describes fuzzing campaigns —
    one cell per entry of ``seeds`` — with optional ``budget``,
    ``protocols``, ``interconnect``, and ``priority``.  Each axis is
    deduplicated preserving first-seen order — a repeated value would
    mint the same cell fingerprint twice within one job
    (double-credited cells, duplicate result rows).
    """
    if not isinstance(spec, dict):
        raise SpecError(f"job spec must be an object, got {type(spec).__name__}")
    kind = spec.get("kind", "sim")
    if kind == "fuzz":
        return _validate_fuzz_spec(spec)
    if kind != "sim":
        raise SpecError(f"unknown job kind {kind!r} (expected sim or fuzz)")
    known = set(BENCHMARKS) | set(EXTRA_BENCHMARKS)
    benchmarks = list(spec.get("benchmarks") or ())
    techniques = list(spec.get("techniques") or ())
    seeds = list(spec.get("seeds") or ())
    if not benchmarks or not techniques or not seeds:
        raise SpecError(
            "job spec needs non-empty 'benchmarks', 'techniques', 'seeds'"
        )
    for benchmark in benchmarks:
        if benchmark not in known:
            raise SpecError(f"unknown benchmark {benchmark!r}")
    for technique in techniques:
        if technique not in ALL_TECHNIQUES:
            raise SpecError(f"unknown technique {technique!r}")
    if not all(
        isinstance(seed, int) and not isinstance(seed, bool)
        for seed in seeds
    ):
        raise SpecError("'seeds' must be integers (booleans rejected)")
    benchmarks = list(dict.fromkeys(benchmarks))
    techniques = list(dict.fromkeys(techniques))
    seeds = list(dict.fromkeys(seeds))
    scale = spec.get("scale", 0.1)
    if not isinstance(scale, (int, float)) or scale <= 0:
        raise SpecError(f"'scale' must be a positive number, got {scale!r}")
    priority = spec.get("priority", 0)
    if not isinstance(priority, int):
        raise SpecError(f"'priority' must be an integer, got {priority!r}")
    out = {
        "benchmarks": benchmarks,
        "techniques": techniques,
        "seeds": seeds,
        "scale": float(scale),
        "priority": priority,
    }
    trace = _validate_trace(spec)
    if trace is not None:
        out["trace"] = trace
    return out


def cell_identity(
    benchmark: str, technique: str, seed: int, scale: float,
    config: MachineConfig | None = None,
) -> str:
    """The service-wide fingerprint of one fully-configured cell."""
    base = config or scaled_config()
    return cell_fingerprint(
        configure_technique(base, technique), benchmark, scale, seed,
        jitter=DEFAULT_JITTER,
    )


def fuzz_cell_identity(
    seed: int, budget: int, protocols: list[str], interconnect: str,
) -> str:
    """The fingerprint of one fuzz campaign cell.

    A campaign is a pure function of these four parameters, so the
    hash of their canonical JSON identifies its result exactly — the
    same dedupe/cache-hit contract simulation cells get from
    :func:`cell_identity`.
    """
    doc = json.dumps(
        {
            "seed": seed,
            "budget": budget,
            "protocols": list(protocols),
            "interconnect": interconnect,
        },
        sort_keys=True,
    )
    return "fuzz-" + hashlib.sha256(doc.encode()).hexdigest()[:16]


class JobQueue:
    """The durable cell queue described in the module docstring."""

    def __init__(
        self,
        root: str | Path,
        events: EventLog | None = None,
        clock: Callable[[], float] = time.perf_counter,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_retries: int = DEFAULT_MAX_RETRIES,
        config: MachineConfig | None = None,
        traces: JobTraceStore | None = None,
        metrics=NULL_METRICS,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.events = events or EventLog()
        self.clock = clock
        self.lease_ttl = lease_ttl
        self.max_retries = max_retries
        self.config = config or scaled_config()
        self.traces = traces if traces is not None else JobTraceStore()
        self._lease_hist = metrics.histogram(
            "repro_service_lease_latency_seconds",
            "queued -> leased wait per cell",
            bounds=LEASE_LATENCY_BOUNDS,
        )
        self._state_path = self.root / "state.json"
        # Reentrant: public methods take it and call helpers that
        # assume it is held; queue -> events is the only lock order.
        self._lock = threading.RLock()
        self._seq = 0
        self._lease_count = 0
        self._lease_wait_total = 0.0
        self._lease_wait_max = 0.0
        self.jobs: dict[str, dict[str, Any]] = {}
        self.cells: dict[str, dict[str, Any]] = {}
        self._load()

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def _load(self) -> None:
        """Recover persisted state; leased cells return to queued."""
        if not self._state_path.exists():
            return
        doc = json.loads(self._state_path.read_text())
        self._seq = doc.get("seq", 0)
        self.jobs = doc.get("jobs", {})
        self.cells = doc.get("cells", {})
        for cell in self.cells.values():
            if cell["state"] == "leased":
                # The lease holder died with the previous process;
                # deterministic cells are always safe to re-run.
                cell["state"] = "queued"
                cell["lease"] = None

    def _save(self) -> None:
        """Atomically rewrite ``state.json`` (temp + rename)."""
        doc = {"seq": self._seq, "jobs": self.jobs, "cells": self.cells}
        tmp = self._state_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(doc, indent=1, sort_keys=True))
        os.replace(tmp, self._state_path)

    def _next_id(self, prefix: str) -> str:
        """Mint an id from the persisted sequence counter."""
        self._seq += 1
        return f"{prefix}-{self._seq:06d}"

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def _cell_payloads(self, spec: dict) -> list[tuple[str, dict[str, Any]]]:
        """``(fingerprint, payload)`` for every cell of a valid spec.

        The payload is the kind-specific part of the cell record; the
        queue bookkeeping fields (state, jobs, lease, retries, order)
        are layered on by :meth:`submit`.  Simulation cells carry no
        ``kind`` key — records persisted by earlier versions must keep
        deserializing as simulation cells.
        """
        if spec.get("kind") == "fuzz":
            return [
                (
                    fuzz_cell_identity(
                        seed, spec["budget"], spec["protocols"],
                        spec["interconnect"],
                    ),
                    {
                        "kind": "fuzz",
                        "seed": seed,
                        "budget": spec["budget"],
                        "protocols": spec["protocols"],
                        "interconnect": spec["interconnect"],
                    },
                )
                for seed in spec["seeds"]
            ]
        return [
            (
                cell_identity(
                    benchmark, technique, seed, spec["scale"], self.config,
                ),
                {
                    "benchmark": benchmark,
                    "technique": technique,
                    "seed": seed,
                    "scale": spec["scale"],
                },
            )
            for benchmark in spec["benchmarks"]
            for technique in spec["techniques"]
            for seed in spec["seeds"]
        ]

    def submit(self, spec: dict) -> dict[str, Any]:
        """Accept a spec; returns the job record (raises SpecError)."""
        spec = validate_spec(spec)
        with self._lock:
            job_id = self._next_id("job")
            # The distributed trace every span and event of this job
            # lands in: client-supplied, or the job id itself — both
            # deterministic (the id comes from the persisted counter).
            trace = spec.get("trace") or job_id
            job_span = self.traces.span_begin(trace, "job", job=job_id)
            fingerprints: list[str] = []
            deduped: list[str] = []
            for fingerprint, payload in self._cell_payloads(spec):
                fingerprints.append(fingerprint)
                self.events.attach(fingerprint, job_id)
                live = self.cells.get(fingerprint)
                if live is not None and live["state"] in (
                    "queued", "leased",
                ):
                    live["jobs"].append(job_id)
                    deduped.append(fingerprint)
                    self.events.emit(
                        "cell.deduped", job=job_id,
                        fingerprint=fingerprint, trace=trace,
                    )
                    continue
                # Replacing a finished (done/failed) record:
                # jobs still waiting on their *other* cells
                # reference this fingerprint, and must carry
                # over into the fresh cell — otherwise the
                # re-run's completion would never credit them
                # and they would stay non-terminal forever.
                carried = [
                    j for j in (live["jobs"] if live else ())
                    if j in self.jobs
                    and self.jobs[j]["status"] not in JOB_TERMINAL
                ]
                self.cells[fingerprint] = {
                    "fingerprint": fingerprint,
                    **payload,
                    "state": "queued",
                    "jobs": carried + [job_id],
                    "lease": None,
                    "retries": 0,
                    "order": self._seq,
                    "trace": trace,
                    "job_span": job_span,
                    "lease_span": None,
                    "enqueued_at": self.clock(),
                }
                self.events.emit(
                    "cell.enqueued", job=job_id,
                    fingerprint=fingerprint, trace=trace,
                )
            job = {
                "id": job_id,
                "spec": spec,
                "priority": spec["priority"],
                "cells": fingerprints,
                "status": "queued",
                "reason": None,
                "trace": trace,
                "span": job_span,
            }
            self.jobs[job_id] = job
            self.events.emit(
                "job.enqueued", job=job_id, cells=len(fingerprints),
                trace=trace,
            )
            self._save()
            return job

    # ------------------------------------------------------------------
    # Leasing
    # ------------------------------------------------------------------

    def _priority(self, cell: dict[str, Any]) -> int:
        """A cell leases at the highest priority of its live jobs.

        Takes the (reentrant) lock itself: it is invoked through
        ``lease``'s sort-key lambda, which the static call graph
        cannot follow into, so it cannot be proven lock-held.
        """
        with self._lock:
            priorities = [
                self.jobs[job_id]["priority"]
                for job_id in cell["jobs"]
                if job_id in self.jobs
                and self.jobs[job_id]["status"] not in JOB_TERMINAL
            ]
            return max(priorities, default=0)

    def lease(self, worker: str) -> dict[str, Any] | None:
        """Take the best queued cell under a heartbeat lease, if any."""
        with self._lock:
            queued = [
                c for c in self.cells.values() if c["state"] == "queued"
            ]
            if not queued:
                return None
            cell = min(queued, key=lambda c: (-self._priority(c), c["order"]))
            cell["state"] = "leased"
            now = self.clock()
            cell["lease"] = {
                "worker": worker,
                "deadline": now + self.lease_ttl,
            }
            enqueued_at = cell.get("enqueued_at")
            if enqueued_at is not None:
                wait = max(now - enqueued_at, 0.0)
                self._lease_count += 1
                self._lease_wait_total += wait
                self._lease_wait_max = max(self._lease_wait_max, wait)
                self._lease_hist.labels().record(wait)
            trace = cell.get("trace")
            if trace is not None:
                cell["lease_span"] = self.traces.span_begin(
                    trace, "cell.lease", parent=cell.get("job_span"),
                    fingerprint=cell["fingerprint"], worker=worker,
                )
            self.events.emit(
                "cell.leased", fingerprint=cell["fingerprint"], worker=worker,
                trace=trace,
            )
            self._save()
            return dict(cell)

    def heartbeat(self, fingerprint: str, worker: str) -> bool:
        """Renew a live lease; False if the lease is no longer held."""
        with self._lock:
            cell = self.cells.get(fingerprint)
            if (
                cell is None or cell["state"] != "leased"
                or not cell["lease"] or cell["lease"]["worker"] != worker
            ):
                return False
            cell["lease"]["deadline"] = self.clock() + self.lease_ttl
            self._save()
            return True

    def expire_leases(self) -> list[str]:
        """Re-enqueue (or fail) every cell whose lease deadline passed."""
        with self._lock:
            now = self.clock()
            expired = [
                c["fingerprint"] for c in self.cells.values()
                if c["state"] == "leased" and c["lease"]
                and c["lease"]["deadline"] < now
            ]
            for fingerprint in expired:
                self._bounce(fingerprint, "lease_expired")
            return expired

    def fail(self, fingerprint: str, reason: str) -> None:
        """A worker reported the cell's run died; retry or fail it."""
        with self._lock:
            self._bounce(fingerprint, reason)

    def _bounce(self, fingerprint: str, reason: str) -> None:
        """Shared retry-or-fail transition for lost leases."""
        cell = self.cells.get(fingerprint)
        if cell is None or cell["state"] != "leased":
            return
        cell["lease"] = None
        trace = cell.get("trace")
        if trace is not None:
            self.traces.span_end(
                trace, cell.get("lease_span"), outcome=reason,
            )
            cell["lease_span"] = None
        if cell["retries"] < self.max_retries:
            cell["retries"] += 1
            cell["state"] = "queued"
            cell["enqueued_at"] = self.clock()
            self.events.emit(
                "cell.retried", fingerprint=fingerprint, reason=reason,
                trace=trace,
            )
        else:
            cell["state"] = "failed"
            self.events.emit(
                "cell.failed", fingerprint=fingerprint, reason=reason,
                trace=trace,
            )
            for job_id in list(cell["jobs"]):
                self._finish_job(job_id, "failed")
        self._save()

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def complete(self, fingerprint: str) -> None:
        """Mark a cell done (its summary is in the store) and credit jobs."""
        with self._lock:
            cell = self.cells.get(fingerprint)
            if cell is None or cell["state"] in ("done", "failed"):
                return
            cell["state"] = "done"
            cell["lease"] = None
            trace = cell.get("trace")
            if trace is not None:
                self.traces.span_end(
                    trace, cell.get("lease_span"), outcome="done",
                )
                cell["lease_span"] = None
            self.events.emit(
                "cell.finished", fingerprint=fingerprint, trace=trace,
            )
            for job_id in list(cell["jobs"]):
                job = self.jobs.get(job_id)
                if job is None or job["status"] in JOB_TERMINAL:
                    continue
                if all(
                    self.cells.get(f, {}).get("state") == "done"
                    for f in job["cells"]
                ):
                    self._finish_job(job_id, "done")
            self._gc_cells()
            self._save()

    def _finish_job(self, job_id: str, reason: str) -> None:
        """Move a job to a terminal state and emit ``job.completed``."""
        job = self.jobs.get(job_id)
        if job is None or job["status"] in JOB_TERMINAL:
            return
        job["status"] = reason
        job["reason"] = reason
        trace = job.get("trace")
        if trace is not None:
            self.traces.span_end(trace, job.get("span"), reason=reason)
        self.events.emit(
            "job.completed", job=job_id, reason=reason, trace=trace,
        )

    def _gc_cells(self) -> None:
        """Drop done cells whose every referencing job is terminal.

        This is what makes an identical re-submission take the
        enqueue -> lease -> ``cell.cache_hit`` path: the live set only
        dedupes *in-flight* work; finished results live in the result
        store, not the queue.
        """
        dead = [
            f for f, cell in self.cells.items()
            if cell["state"] == "done" and all(
                self.jobs.get(j, {}).get("status") in JOB_TERMINAL
                for j in cell["jobs"]
            )
        ]
        for fingerprint in dead:
            del self.cells[fingerprint]
            self.events.detach_cell(fingerprint)

    # ------------------------------------------------------------------
    # Cancellation / inspection
    # ------------------------------------------------------------------

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Cancel a job; drains its exclusively-held queued cells."""
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise KeyError(job_id)
            if job["status"] in JOB_TERMINAL:
                return dict(job)
            self._finish_job(job_id, "cancelled")
            for fingerprint in job["cells"]:
                cell = self.cells.get(fingerprint)
                if cell is None:
                    continue
                others = [
                    j for j in cell["jobs"]
                    if j != job_id
                    and self.jobs.get(j, {}).get("status") not in JOB_TERMINAL
                ]
                if cell["state"] == "queued" and not others:
                    # Nobody else wants it and no worker holds it: drop.
                    del self.cells[fingerprint]
                    self.events.detach_cell(fingerprint)
                # A leased cell finishes its run (the result is still
                # stored); the cancelled job just no longer waits on it.
            self._gc_cells()
            self._save()
            return dict(job)

    def job_status(self, job_id: str) -> dict[str, Any]:
        """The job record plus per-cell states (raises KeyError)."""
        with self._lock:
            job = self.jobs[job_id]
            gone = "dropped" if job["status"] == "cancelled" else "done"
            cells = {}
            for fingerprint in job["cells"]:
                cell = self.cells.get(fingerprint)
                cells[fingerprint] = cell["state"] if cell else gone
            return {**job, "cell_states": cells}

    def has_job(self, job_id: str) -> bool:
        """Locked existence probe (async callers must not touch
        ``jobs`` directly — simlint SL202)."""
        with self._lock:
            return job_id in self.jobs

    def job_trace(self, job_id: str) -> str | None:
        """The job's distributed-trace id (raises KeyError)."""
        with self._lock:
            return self.jobs[job_id].get("trace")

    def depth_counts(self) -> dict[str, Any]:
        """Cells by state and jobs by status (telemetry sampling)."""
        with self._lock:
            cells: dict[str, int] = {}
            for cell in self.cells.values():
                cells[cell["state"]] = cells.get(cell["state"], 0) + 1
            jobs: dict[str, int] = {}
            for job in self.jobs.values():
                status = job["status"]
                key = status if status in JOB_TERMINAL else "active"
                jobs[key] = jobs.get(key, 0) + 1
            return {"cells": cells, "jobs": jobs}

    def lease_stats(self) -> dict[str, float]:
        """Cumulative queued->leased latency accounting."""
        with self._lock:
            return {
                "count": self._lease_count,
                "wait_total": self._lease_wait_total,
                "wait_max": self._lease_wait_max,
            }

    def status(self, job_id: str) -> str:
        """A job's current status string (raises KeyError)."""
        with self._lock:
            return self.jobs[job_id]["status"]

    def pending(self) -> Iterable[dict[str, Any]]:
        """Every live (queued or leased) cell, for inspection."""
        with self._lock:
            return [
                dict(c) for c in self.cells.values()
                if c["state"] in ("queued", "leased")
            ]
