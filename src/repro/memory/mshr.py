"""Miss status holding registers.

One MSHR tracks one outstanding line miss.  Requests to the same line
merge into the existing entry.  For LVP (§3.2) each MSHR additionally
records which words were speculatively delivered from tag-match invalid
data and the oldest in-flight operation attached to a speculative
delivery; when coherent data arrives the delivered words are compared
and the entry either advances the commit pointer or squashes at that
oldest operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class SpecDelivery:
    """One speculatively-delivered word within an MSHR (LVP)."""

    word_index: int
    value: int
    consumer: Any  # the in-flight window op that consumed the value


@dataclass
class MSHREntry:
    """One outstanding line miss."""

    base: int
    is_store: bool = False
    waiters: list[Callable[[list[int]], None]] = field(default_factory=list)
    spec_deliveries: list[SpecDelivery] = field(default_factory=list)
    issued_at: int = 0
    # Set when the transaction's bus grant has occurred: the data the
    # waiters will receive was captured at that instant.  Merged
    # reserve-loads (larx) consult this: arming a reservation *after*
    # the grant, when the line has since been invalidated, would pair a
    # fresh reservation with a pre-invalidation value and break LL/SC.
    granted: bool = False
    # Trace span id covering the MSHR lifetime (None untraced), and the
    # miss class determined at request time ("cold"/"capacity"/"comm"),
    # attached to the mem.miss event and span at fill.
    span: int | None = None
    cls: str | None = None

    def add_waiter(self, callback: Callable[[list[int]], None]) -> None:
        """Register a completion callback fired with the line data."""
        self.waiters.append(callback)

    def record_speculation(self, word_index: int, value: int, consumer: Any) -> None:
        """Record that ``consumer`` received speculative ``value`` (LVP)."""
        self.spec_deliveries.append(SpecDelivery(word_index, value, consumer))

    def mismatched_deliveries(self, arrived: list[int]) -> list[SpecDelivery]:
        """Return speculative deliveries contradicted by the real data."""
        return [d for d in self.spec_deliveries if arrived[d.word_index] != d.value]


class MSHRFile:
    """A fixed-capacity file of :class:`MSHREntry`, keyed by line base."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("MSHR capacity must be >= 1")
        self.capacity = capacity
        self._entries: dict[int, MSHREntry] = {}

    def get(self, base: int) -> MSHREntry | None:
        """Return the outstanding entry for ``base``, if any."""
        return self._entries.get(base)

    @property
    def full(self) -> bool:
        """True at capacity."""
        return len(self._entries) >= self.capacity

    def allocate(self, base: int, now: int, is_store: bool = False) -> MSHREntry:
        """Create an entry for ``base``; the file must not be full."""
        if base in self._entries:
            raise ValueError(f"MSHR already allocated for {base:#x}")
        if self.full:
            raise ValueError("MSHR file full")
        entry = MSHREntry(base=base, is_store=is_store, issued_at=now)
        self._entries[base] = entry
        return entry

    def release(self, base: int) -> MSHREntry:
        """Remove and return the entry for ``base``."""
        return self._entries.pop(base)

    def outstanding(self) -> int:
        """Number of entries in flight."""
        return len(self._entries)

    def entries(self):
        """Iterate over outstanding entries."""
        return self._entries.values()
