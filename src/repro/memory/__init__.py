"""Memory substrate: data caches, MSHRs, store buffer, stale storage.

Caches store real per-word data values — store value locality
(update silence, temporal silence) is detected on actual values, not
oracle annotations, exactly as the hardware in the paper would.
"""

from repro.memory.cache import CacheLine, SetAssocCache
from repro.memory.mainmem import MainMemory
from repro.memory.mshr import MSHREntry, MSHRFile
from repro.memory.stale import ExplicitStaleDetector, StaleStorage
from repro.memory.storebuffer import StoreBuffer, StoreEntry

__all__ = [
    "CacheLine",
    "SetAssocCache",
    "MainMemory",
    "MSHREntry",
    "MSHRFile",
    "ExplicitStaleDetector",
    "StaleStorage",
    "StoreBuffer",
    "StoreEntry",
]
