"""Space-efficient stale-value storage for temporal silence detection.

Implements the mechanism of the paper's Figure 5 (§2.5.1):

* an **L1-Mirror**, geometrically identical to the L1-D, which captures
  the temporal-silence candidate value when a line fills into the L1 —
  either the fill data itself (if the L2 indicates the fill is a
  correct stale version, i.e. no intermediate value was written back)
  or the entry recovered from the stale storage;
* a finite, LRU **stale storage** that receives the mirror entry when
  the L1-D displaces a dirty line, so the candidate survives across L1
  residencies.

Stores compare only against the L1-Mirror (same access time as the
L1-D), so detection is immediate and validates incur no delay.
Replacements from either structure cause no correctness issue — the
L1-D or L2 always holds the coherent data — they merely forfeit
detection of temporally silent pairs whose lifetime exceeds the
retained candidate (Figure 6 quantifies this loss versus capacity).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.common.config import CacheConfig
from repro.common.stats import ScopedStats


class StaleStorage:
    """LRU store of per-line stale candidate values (Figure 5)."""

    def __init__(self, capacity_lines: int):
        if capacity_lines < 0:
            raise ValueError("stale storage capacity must be >= 0")
        self.capacity_lines = capacity_lines
        self._entries: OrderedDict[int, list[int]] = OrderedDict()

    def put(self, base: int, words: list[int]) -> None:
        """Insert/refresh the candidate for ``base``, evicting LRU."""
        if self.capacity_lines == 0:
            return
        if base in self._entries:
            self._entries.move_to_end(base)
        self._entries[base] = list(words)
        while len(self._entries) > self.capacity_lines:
            self._entries.popitem(last=False)

    def get(self, base: int) -> list[int] | None:
        """Return and refresh the candidate for ``base``, if retained."""
        words = self._entries.get(base)
        if words is not None:
            self._entries.move_to_end(base)
            return list(words)
        return None

    def drop(self, base: int) -> None:
        """Discard the candidate for ``base`` (it can no longer match)."""
        self._entries.pop(base, None)

    def __len__(self) -> int:
        return len(self._entries)


class ExplicitStaleDetector:
    """The L1-Mirror + stale-storage temporal-silence detector.

    The coherence controller queries :meth:`candidate` on each store to
    an owned line; a non-None result that equals the stored-to line's
    current data is a detected temporal silence.  All hooks are called
    by the node's memory system as lines move through the hierarchy.
    """

    def __init__(
        self,
        l1_config: CacheConfig,
        stale_storage_bytes: int,
        stats: ScopedStats,
    ):
        self._line_size = l1_config.line_size
        self.mirror_capacity = l1_config.num_lines
        self.storage = StaleStorage(stale_storage_bytes // l1_config.line_size)
        self._mirror: OrderedDict[int, list[int] | None] = OrderedDict()
        self._stats = stats

    # -- hierarchy hooks -------------------------------------------------

    def on_l1_fill(self, base: int, fill_words: list[int], l2_was_dirty: bool) -> None:
        """A line filled into the L1-D.

        If the L2 indicates no intermediate value was previously written
        back (the fill *is* a correct stale version), capture the fill
        data; otherwise try to recover the candidate from the stale
        storage.
        """
        if l2_was_dirty:
            candidate = self.storage.get(base)
            self._stats.add(
                "mirror.recovered" if candidate is not None else "mirror.lost"
            )
        else:
            candidate = list(fill_words)
            self._stats.add("mirror.captured")
        self._mirror[base] = candidate
        self._mirror.move_to_end(base)
        while len(self._mirror) > self.mirror_capacity:
            self._mirror.popitem(last=False)

    def on_l1_evict(self, base: int, was_dirty: bool) -> None:
        """The L1-D displaced a line; bank its candidate if it was dirty."""
        candidate = self._mirror.pop(base, None)
        if was_dirty and candidate is not None:
            self.storage.put(base, candidate)

    def on_invalidate(self, base: int) -> None:
        """The line was invalidated: the candidate version is obsolete."""
        self._mirror.pop(base, None)
        self.storage.drop(base)

    def on_visibility(self, base: int, words: list[int]) -> None:
        """A new value became globally visible; rebase the candidate."""
        if base in self._mirror:
            self._mirror[base] = list(words)
        if self.storage.get(base) is not None:
            self.storage.put(base, words)

    # -- detection -------------------------------------------------------

    def candidate(self, base: int) -> list[int] | None:
        """The stale candidate to compare stores against (mirror only)."""
        return self._mirror.get(base)
