"""Main memory: the backing store for all cache lines.

Data is kept at line granularity in a sparse dict; unwritten lines read
as zero, which the workload region allocator relies on (locks start
free, counters start at zero).
"""

from __future__ import annotations

from repro.common.addressing import words_per_line
from repro.common.errors import SimulationError


class MainMemory:
    """Sparse line-granularity physical memory."""

    def __init__(self, line_size: int):
        self._line_size = line_size
        self._n_words = words_per_line(line_size)
        self._lines: dict[int, list[int]] = {}

    @property
    def line_size(self) -> int:
        """Cache line size in bytes (L1 == L2)."""
        return self._line_size

    def read_line(self, base: int) -> list[int]:
        """Return a copy of the words of the line at ``base``."""
        self._check(base)
        line = self._lines.get(base)
        return list(line) if line is not None else [0] * self._n_words

    def write_line(self, base: int, words: list[int]) -> None:
        """Replace the line at ``base`` with ``words``."""
        self._check(base)
        if len(words) != self._n_words:
            raise SimulationError(
                f"writeback of {len(words)} words, line holds {self._n_words}"
            )
        self._lines[base] = list(words)

    def read_word(self, base: int, index: int) -> int:
        """Read one word from the line at ``base``."""
        line = self._lines.get(base)
        return line[index] if line is not None else 0

    def touched_lines(self) -> int:
        """Number of lines ever written (diagnostics)."""
        return len(self._lines)

    def _check(self, base: int) -> None:
        if base % self._line_size:
            raise SimulationError(f"unaligned line address {base:#x}")
