"""Set-associative cache arrays with per-word data and dirty bits.

Lines keep their data when they become invalid (``I``/``T``) — this is
the *tag-match invalid* residue that LVP speculates from (§3) and that
T-state validates re-install (§2).  Replacement prefers truly empty
ways, then invalid-with-data ways, then LRU among valid lines, so stale
residue never displaces live data.

The Enhanced-MESTI useful-validate predictor stores its two state bits
and confidence counter directly in the L2 tags (§2.4.2); they live here
as ``pred_state``/``pred_conf`` fields and travel with the line.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.common.addressing import words_per_line
from repro.common.config import CacheConfig
from repro.common.errors import SimulationError
from repro.coherence.states import LineState

# Predictor Mealy-machine states (Figure 4B), stored in the L2 tags.
PRED_START = 0
PRED_TS_DETECTED = 1
PRED_UPGRADE_WAIT = 2


class CacheLine:
    """One cache line: tag, coherence state, data words, dirty bits."""

    __slots__ = (
        "base",
        "state",
        "data",
        "dirty_mask",
        "lru",
        "visible",
        "diverged",
        "pred_state",
        "pred_conf",
        "validate_suppressed",
    )

    def __init__(self, n_words: int):
        self.base: int | None = None
        self.state: LineState = LineState.I
        self.data: list[int] = [0] * n_words
        self.dirty_mask: int = 0
        self.lru: int = 0
        # Owner-side copy of the last globally visible value (ideal
        # temporal-silence detection); None when unknown.
        self.visible: list[int] | None = None
        # True once a store has made the data diverge from the visible
        # value: temporal silence is a *reversion*, so detection only
        # fires on the diverged -> equal transition (an update-silent
        # store on a never-diverged line is not a silent pair).
        self.diverged: bool = False
        # Useful-validate predictor storage (E-MESTI, in the L2 tags).
        self.pred_state: int = PRED_START
        self.pred_conf: int = 0
        # Snoop-aware validate policy: suppress validates for this
        # ownership episode because no remote copy existed.
        self.validate_suppressed: bool = False

    @property
    def has_data(self) -> bool:
        """True if the tag matches a real line (valid or stale residue)."""
        return self.base is not None

    @property
    def empty(self) -> bool:
        """True when unoccupied."""
        return self.base is None

    def reset(self) -> None:
        """Return the way to the truly-empty condition."""
        self.base = None
        self.state = LineState.I
        self.dirty_mask = 0
        self.visible = None
        self.diverged = False
        self.pred_state = PRED_START
        self.pred_conf = 0
        self.validate_suppressed = False

    def words(self) -> list[int]:
        """Return a copy of the line's data words."""
        return list(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        base = f"{self.base:#x}" if self.base is not None else "empty"
        return f"CacheLine({base} {self.state.value} dirty={self.dirty_mask:#x})"


class SetAssocCache:
    """A set-associative cache of :class:`CacheLine` with LRU replacement."""

    def __init__(self, config: CacheConfig, name: str = "cache"):
        config.validate(name)
        self.config = config
        self.name = name
        self._n_words = words_per_line(config.line_size)
        self._set_mask = config.num_sets - 1
        self._line_shift = config.line_size.bit_length() - 1
        self._sets: list[list[CacheLine]] = [
            [CacheLine(self._n_words) for _ in range(config.ways)]
            for _ in range(config.num_sets)
        ]
        self._by_base: dict[int, CacheLine] = {}
        self._tick = 0

    @property
    def n_words(self) -> int:
        """Data words per line."""
        return self._n_words

    def set_index(self, base: int) -> int:
        """Return the set index for a line-aligned address."""
        return (base >> self._line_shift) & self._set_mask

    def lookup(self, base: int) -> CacheLine | None:
        """Return the line holding ``base`` (any state, incl. stale), or None."""
        return self._by_base.get(base)

    def touch(self, line: CacheLine) -> None:
        """Mark ``line`` most recently used."""
        self._tick += 1
        line.lru = self._tick

    def allocate(
        self, base: int, victim_filter: Callable[[CacheLine], bool] | None = None
    ) -> tuple[CacheLine, CacheLine | None]:
        """Claim a way for ``base``; return ``(line, evicted)``.

        ``evicted`` is a detached copy-like view of the victim (the same
        object, observed *before* it is reset) when a line with data was
        displaced, else None.  The caller must process any writeback
        before the next allocation to the same set.  ``victim_filter``
        can veto victims (used by SLE to pin speculatively-read lines);
        if every way is vetoed a :class:`SimulationError` is raised.
        """
        existing = self._by_base.get(base)
        if existing is not None:
            raise SimulationError(f"{self.name}: allocate of resident line {base:#x}")
        ways = self._sets[self.set_index(base)]
        victim = self._choose_victim(ways, victim_filter)
        evicted: CacheLine | None = None
        if victim.has_data:
            del self._by_base[victim.base]
            evicted = _EvictedLine(victim)
            victim.reset()
        victim.base = base
        victim.state = LineState.I
        victim.dirty_mask = 0
        victim.data = [0] * self._n_words
        self._by_base[base] = victim
        self.touch(victim)
        return victim, evicted

    def _choose_victim(
        self, ways: list[CacheLine], victim_filter: Callable[[CacheLine], bool] | None
    ) -> CacheLine:
        candidates = ways if victim_filter is None else [w for w in ways if victim_filter(w)]
        if not candidates:
            raise SimulationError(f"{self.name}: all ways pinned, cannot allocate")
        for way in candidates:
            if way.empty:
                return way
        stale = [w for w in candidates if not w.state.valid]
        pool = stale or candidates
        return min(pool, key=lambda w: w.lru)

    def evict(self, base: int) -> CacheLine | None:
        """Forcibly remove ``base``; return its pre-reset view or None."""
        line = self._by_base.pop(base, None)
        if line is None:
            return None
        view = _EvictedLine(line)
        line.reset()
        return view

    def resident_lines(self) -> Iterator[CacheLine]:
        """Iterate over all lines with a tag (any state)."""
        return iter(self._by_base.values())

    def valid_line_count(self) -> int:
        """Number of lines holding architecturally valid data."""
        return sum(1 for line in self._by_base.values() if line.state.valid)

    def __len__(self) -> int:
        return len(self._by_base)


class _EvictedLine:
    """A detached snapshot of an evicted line (state/data at eviction)."""

    __slots__ = ("base", "state", "data", "dirty_mask", "visible")

    def __init__(self, line: CacheLine):
        self.base = line.base
        self.state = line.state
        self.data = list(line.data)
        self.dirty_mask = line.dirty_mask
        self.visible = list(line.visible) if line.visible is not None else None

    @property
    def dirty(self) -> bool:
        """True if this snapshot was a dirty copy."""
        return self.state.dirty

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"EvictedLine({self.base:#x} {self.state.value})"
