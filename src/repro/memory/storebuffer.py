"""Post-commit store buffer.

Committed stores drain to the L1 in order; loads search the buffer
newest-first for same-word forwarding.  A full buffer back-pressures
commit in the core.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass
class StoreEntry:
    """One committed store waiting to drain."""

    addr: int
    value: int
    seq: int  # program-order sequence of the committing op
    pc: int = 0


class StoreBuffer:
    """A FIFO of committed stores with word-granularity forwarding."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("store buffer capacity must be >= 1")
        self.capacity = capacity
        self._entries: deque[StoreEntry] = deque()

    @property
    def full(self) -> bool:
        """True at capacity."""
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        """True when unoccupied."""
        return not self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, entry: StoreEntry) -> None:
        """Append a committed store; the buffer must not be full."""
        if self.full:
            raise ValueError("store buffer full")
        self._entries.append(entry)

    def head(self) -> StoreEntry | None:
        """The next store to drain, or None."""
        return self._entries[0] if self._entries else None

    def pop(self) -> StoreEntry:
        """Remove and return the head store."""
        return self._entries.popleft()

    def forward(self, addr: int) -> int | None:
        """Return the value of the youngest buffered store to ``addr``."""
        for entry in reversed(self._entries):
            if entry.addr == addr:
                return entry.value
        return None
