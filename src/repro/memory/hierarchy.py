"""Per-node memory system: L1, MSHRs, and the core-facing access paths.

``NodeMemory`` composes the node's L1 tag array (an inclusive subset of
the L2 — the authoritative data lives in the L2 line, so snoops never
need an L1 sync), the MSHR file, the LVP speculative-delivery hooks,
and the latency model, delegating every coherence decision to the
node's :class:`~repro.coherence.controller.CoherenceController`.

Access results are returned synchronously for hits ("fast path": no
scheduler event) and via callbacks for misses.
"""

from __future__ import annotations

from typing import Callable

from repro.common.addressing import line_address, word_index
from repro.common.config import MachineConfig
from repro.common.errors import SimulationError
from repro.common.events import Scheduler
from repro.common.stats import ScopedStats
from repro.coherence.controller import CoherenceController
from repro.coherence.messages import BusTransaction, TxnKind
from repro.coherence.states import LineState
from repro.lvp.unit import LVPUnit
from repro.memory.cache import CacheLine, SetAssocCache
from repro.memory.mshr import MSHRFile
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER

StoreCallback = Callable[[], None]
BoolCallback = Callable[[bool], None]


class NodeMemory:
    """The memory system of one processor node."""

    def __init__(
        self,
        node_id: int,
        config: MachineConfig,
        scheduler: Scheduler,
        controller: CoherenceController,
        stats: ScopedStats,
        classifier=None,
        tracer=NULL_TRACER,
        metrics=NULL_METRICS,
    ):
        self.node_id = node_id
        self.config = config
        self.scheduler = scheduler
        self.ctrl = controller
        self.stats = stats
        self.classifier = classifier
        self.tracer = tracer
        self.l1 = SetAssocCache(config.l1, f"P{node_id}.L1")
        self.mshrs = MSHRFile(config.core.mshrs)
        self.lvp = LVPUnit(
            config.lvp, stats, tracer=tracer, node_id=node_id, metrics=metrics
        )
        self._miss_hist = metrics.bind_histogram(
            stats.histogram("miss_latency"),
            "repro_miss_latency_cycles", "L2 miss latency in cycles",
            node=node_id,
        )
        self._m_lvp_predictions = metrics.bound_counter(
            stats, "lvp.predictions",
            "repro_lvp_predictions_total",
            "Speculative value deliveries from stale lines",
            node=node_id,
        )
        self._deferred: list[Callable[[], None]] = []
        self.core = None  # set by the system builder; narrow interface
        self.sle_engine = None  # optional, set by the system builder
        # Optional access-trace subscriber: called as
        # trace(node, kind, addr, value) for every load/store/stcx the
        # core performs (see repro.analysis.trace).
        self.trace: Callable[[int, str, int, int], None] | None = None
        controller.on_line_invalidated = self._on_invalidated
        controller.on_line_evicted = self._on_l2_evicted
        controller.on_remote_txn = self._on_remote_txn

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------

    def load(
        self, addr: int, winop, reserve: bool = False, allow_spec: bool = True
    ) -> tuple[str, int, int | None]:
        """Access path for a load (or larx, with ``reserve``).

        Returns ``("hit", latency, value)``, ``("spec", latency,
        value)`` for an LVP speculative delivery (the core must mark
        the op unverified; resolution arrives via ``core.lvp_verified``
        / ``core.lvp_mispredict``), or ``("pending", 0, None)`` with
        ``core.load_completed(winop, value)`` fired later.
        """
        base = line_address(addr, self.config.line_size)
        widx = word_index(addr, self.config.line_size)
        if self.trace is not None:
            self.trace(self.node_id, "larx" if reserve else "load", addr, 0)
        entry = self.mshrs.get(base)
        if entry is not None:
            # An outstanding miss for this line: even if the state was
            # already installed at the bus grant, the data is still in
            # flight — merge and complete at delivery.  Tag-match
            # invalid residue still feeds LVP for merged loads (the
            # MSHR tracks every speculatively-delivered word, §3.2).
            line = self.ctrl.lookup(base)
            if reserve:
                line_valid = line is not None and line.state.valid
                if not entry.granted or line_valid:
                    # Sound pairings only: reservation armed at/before
                    # the value-observation grant, or the line is still
                    # valid (any later invalidation will clear it).  A
                    # granted-then-invalidated fill delivers a stale
                    # value; leaving the reservation unarmed makes the
                    # paired stcx fail and the program retry.
                    self.ctrl.set_reservation(base)
            spec_value = self._lvp_candidate(line, widx) if allow_spec else None
            entry.add_waiter(self._load_waiter(winop, base, widx, reserve, spec_value))
            if spec_value is not None:
                entry.record_speculation(widx, spec_value, winop)
                self._m_lvp_predictions.inc()
                self.tracer.emit(
                    "lvp.predict", node=self.node_id, base=base,
                    word=widx, value=spec_value, span=entry.span,
                )
                return ("spec", self.config.l1.latency + self.config.l2.latency,
                        spec_value)
            return ("pending", 0, None)
        line = self.ctrl.lookup(base)
        if line is not None and line.state.valid:
            latency = self._hit_latency(base, line)
            self.ctrl.local_access(line)
            if reserve:
                self.ctrl.set_reservation(base)
            return ("hit", latency, line.data[widx])

        self.stats.add("l2.load_misses")
        cls = self._classify_miss(base, widx)
        if reserve:
            # The reservation arms at request time and is broken by any
            # invalidating grant that serializes before the stcx's own
            # grant — LL/SC resolves entirely at the coherence point.
            self.ctrl.set_reservation(base)
        spec_value = self._lvp_candidate(line, widx) if allow_spec else None
        self._miss(
            base,
            is_store=False,
            waiter=self._load_waiter(winop, base, widx, reserve, spec_value),
            spec=(widx, spec_value, winop) if spec_value is not None else None,
            cls=cls,
        )
        if spec_value is not None:
            self._m_lvp_predictions.inc()
            entry = self.mshrs.get(base)
            self.tracer.emit(
                "lvp.predict", node=self.node_id, base=base,
                word=widx, value=spec_value,
                span=entry.span if entry is not None else None,
            )
            latency = self.config.l1.latency + self.config.l2.latency
            return ("spec", latency, spec_value)
        return ("pending", 0, None)

    def _load_waiter(self, winop, base: int, widx: int, reserve: bool, spec_value):
        def waiter(data: list[int]) -> None:
            if spec_value is None:
                delay = self.config.l1.latency
                self.scheduler.after(
                    delay, lambda: self.core.load_completed(winop, data[widx])
                )
            # Speculatively-delivered loads were completed at predict
            # time; verification is handled by the MSHR resolution.

        return waiter

    def _lvp_candidate(self, line: CacheLine | None, widx: int) -> int | None:
        """Tag-match invalid data usable as a value prediction (§3.1)."""
        return self.lvp.candidate(line, widx)

    # ------------------------------------------------------------------
    # Stores
    # ------------------------------------------------------------------

    def store(self, addr: int, value: int, pc: int, on_done: StoreCallback) -> int | None:
        """Drain one committed store into the hierarchy.

        Returns the latency for a synchronous completion, or None with
        ``on_done()`` fired at the (future) completion time.
        """
        base = line_address(addr, self.config.line_size)
        widx = word_index(addr, self.config.line_size)
        if self.trace is not None:
            self.trace(self.node_id, "store", addr, value)
        if self.mshrs.get(base) is not None:
            self.mshrs.get(base).add_waiter(
                lambda data: self._rerun_store(addr, value, pc, on_done)
            )
            return None
        line = self.ctrl.lookup(base)
        valid = line is not None and line.state.valid
        silent = valid and line.data[widx] == value

        if silent:
            self.stats.add("stores.update_silent")
            if self.config.protocol.squash_silent_stores:
                # Verified silent: commits without ownership or
                # invalidation (update silent sharing, [21]).
                self.ctrl.local_access(line)
                self.stats.add("stores.silent_squashed")
                return self._hit_latency(base, line)

        if valid:
            if not silent:
                self.ctrl.before_nonsilent_store(
                    line, needs_upgrade=not line.state.writable
                )
            if line.state.writable:
                self._do_write(line, base, widx, value)
                return self._hit_latency(base, line)
            # S / O / VS: upgrade for ownership; the write applies
            # atomically at the grant, completion is timing only.
            self.ctrl.issue(
                TxnKind.UPGRADE,
                base,
                lambda txn, data: on_done(),
                on_granted=lambda: self._grant_write(base, widx, value),
            )
            return None

        # Miss (I / T / absent): ReadX, then write at the grant.
        self.stats.add("l2.store_misses")
        cls = self._classify_miss(base, widx)
        self._miss(
            base,
            is_store=True,
            waiter=lambda data: on_done(),
            on_granted=lambda: self._grant_write(base, widx, value),
            cls=cls,
        )
        return None

    def _rerun_store(self, addr: int, value: int, pc: int, on_done: StoreCallback) -> None:
        """Re-run a store that was merged behind an outstanding miss."""
        latency = self.store(addr, value, pc, on_done)
        if latency is not None:
            self.scheduler.after(latency, on_done)

    def _grant_write(self, base: int, widx: int, value: int) -> None:
        """Apply a store at its transaction's grant (ownership is fresh)."""
        line = self.ctrl.lookup(base)
        if line is None or not line.state.writable:
            raise SimulationError(
                f"grant-time write without ownership of {base:#x}"
            )
        self._do_write(line, base, widx, value)

    def _do_write(self, line: CacheLine, base: int, widx: int, value: int) -> None:
        """Perform the architectural write plus silence bookkeeping."""
        if line.state is LineState.E:
            line.state = LineState.M
        if line.state is not LineState.M:
            raise SimulationError(f"write to non-writable line {line!r}")
        line.data[widx] = value
        line.dirty_mask |= 1 << widx
        self._fill_l1(base, line, dirty=True)
        self.stats.add("stores.performed")
        self.ctrl.after_store(line)

    # ------------------------------------------------------------------
    # larx / stcx and SLE support
    # ------------------------------------------------------------------

    def stcx(self, addr: int, value: int, pc: int, on_done: BoolCallback) -> int | None:
        """Store-conditional: succeeds only if the reservation held.

        Returns latency for a synchronous result, else None with
        ``on_done(success)`` fired later.
        """
        base = line_address(addr, self.config.line_size)
        widx = word_index(addr, self.config.line_size)
        if self.trace is not None:
            self.trace(self.node_id, "stcx", addr, value)
        if not self.ctrl.reservation_valid(base):
            self.stats.add("stcx.failed")
            return self._finish_bool(on_done, False)
        entry = self.mshrs.get(base)
        if entry is not None:
            entry.add_waiter(lambda data: self.stcx(addr, value, pc, on_done))
            return None
        line = self.ctrl.lookup(base)
        if line is not None and line.state.writable:
            self.ctrl.before_nonsilent_store(line, needs_upgrade=False)
            self._do_write(line, base, widx, value)
            self.ctrl.clear_reservation()
            self.stats.add("stcx.succeeded")
            return self._finish_bool(on_done, True, self._hit_latency(base, line))

        # The conditional store resolves at the coherence point: the
        # reservation is checked — and the write applied — atomically
        # at the ownership grant, exactly as LL/SC hardware does.
        # Under contention, the first contender granted wins; the
        # others observe cleared reservations and fail (no livelock).
        outcome = {"ok": False}

        def at_grant() -> None:
            if not self.ctrl.reservation_valid(base):
                self.stats.add("stcx.failed")
                return
            inner = self.ctrl.lookup(base)
            self._do_write(inner, base, widx, value)
            self.ctrl.clear_reservation()
            self.stats.add("stcx.succeeded")
            outcome["ok"] = True

        if line is not None and line.state.valid:
            self.ctrl.before_nonsilent_store(line, needs_upgrade=True)
            self.ctrl.issue(
                TxnKind.UPGRADE, base,
                lambda txn, data: on_done(outcome["ok"]),
                on_granted=at_grant,
            )
            return None
        # Reservation valid but line invalid is rare (a T-state residue
        # whose invalidation predated the larx fill); refetch exclusive.
        self._miss(
            base, is_store=True,
            waiter=lambda data: on_done(outcome["ok"]),
            on_granted=at_grant,
        )
        return None

    def _finish_bool(self, on_done: BoolCallback, ok: bool, latency: int | None = None) -> int:
        latency = latency if latency is not None else self.config.l1.latency
        on_done(ok)
        return latency

    def prefetch_exclusive(self, addr: int, on_done: StoreCallback) -> int | None:
        """Acquire M ownership of a line without writing (SLE prefetch)."""
        base = line_address(addr, self.config.line_size)
        entry = self.mshrs.get(base)
        if entry is not None:
            entry.add_waiter(lambda data: self._rerun_prefetch(addr, on_done))
            return None
        line = self.ctrl.lookup(base)
        if line is not None and line.state.writable:
            return self.config.l1.latency
        self.stats.add("sle.exclusive_prefetches")
        if line is not None and line.state.valid:
            self.ctrl.issue(TxnKind.UPGRADE, base, lambda txn, data: on_done())
            return None
        self._miss(base, is_store=True, waiter=lambda data: on_done())
        return None

    def _rerun_prefetch(self, addr: int, on_done: StoreCallback) -> None:
        """Re-run a prefetch that was merged behind an outstanding miss."""
        latency = self.prefetch_exclusive(addr, on_done)
        if latency is not None:
            on_done()

    def apply_store_now(self, addr: int, value: int, pc: int) -> None:
        """Zero-latency write used by SLE's atomic region commit.

        Ownership must already be held (the engine prefetches exclusive
        and aborts on any conflicting snoop before committing).
        """
        base = line_address(addr, self.config.line_size)
        widx = word_index(addr, self.config.line_size)
        line = self.ctrl.lookup(base)
        valid = line is not None and line.state.valid
        if valid and line.data[widx] == value:
            self.stats.add("stores.update_silent")
        if line is None or not line.state.writable:
            raise SimulationError(
                f"SLE atomic commit without ownership of {base:#x}"
            )
        if valid:
            self.ctrl.before_nonsilent_store(line, needs_upgrade=False)
        self._do_write(line, base, widx, value)

    def atomic_rmw(
        self, addr: int, expect: int, new: int, on_done: BoolCallback
    ) -> None:
        """Compare-and-swap used by the SLE fallback lock acquisition.

        Acquires ownership, then atomically compares the word against
        ``expect`` and writes ``new`` on a match.
        """
        base = line_address(addr, self.config.line_size)
        widx = word_index(addr, self.config.line_size)
        entry = self.mshrs.get(base)
        if entry is not None:
            entry.add_waiter(lambda data: self.atomic_rmw(addr, expect, new, on_done))
            return

        outcome = {"ok": False}

        def at_grant() -> None:
            line = self.ctrl.lookup(base)
            if line.data[widx] != expect:
                return
            self.ctrl.before_nonsilent_store(line, needs_upgrade=False)
            self._do_write(line, base, widx, new)
            outcome["ok"] = True

        line = self.ctrl.lookup(base)
        if line is not None and line.state.writable:
            if line.data[widx] != expect:
                on_done(False)
                return
            self.ctrl.before_nonsilent_store(line, needs_upgrade=False)
            self._do_write(line, base, widx, new)
            on_done(True)
        elif line is not None and line.state.valid:
            self.ctrl.issue(
                TxnKind.UPGRADE, base,
                lambda txn, data: on_done(outcome["ok"]), on_granted=at_grant,
            )
        else:
            self._miss(
                base, is_store=True,
                waiter=lambda data: on_done(outcome["ok"]), on_granted=at_grant,
            )

    def atomic_add(self, addr: int, delta: int, on_done: Callable[[int], None]) -> None:
        """Atomic fetch-and-add (always succeeds once ownership is held).

        Used by the SLE fallback for non-lock larx/stcx idioms (atomic
        increments): architecturally equivalent to a successful
        load-linked / store-conditional retry loop.
        """
        base = line_address(addr, self.config.line_size)
        widx = word_index(addr, self.config.line_size)
        entry = self.mshrs.get(base)
        if entry is not None:
            entry.add_waiter(lambda data: self.atomic_add(addr, delta, on_done))
            return

        result = {"value": 0}

        def at_grant() -> None:
            line = self.ctrl.lookup(base)
            new_value = line.data[widx] + delta
            self.ctrl.before_nonsilent_store(line, needs_upgrade=False)
            self._do_write(line, base, widx, new_value)
            result["value"] = new_value

        line = self.ctrl.lookup(base)
        if line is not None and line.state.writable:
            new_value = line.data[widx] + delta
            self.ctrl.before_nonsilent_store(line, needs_upgrade=False)
            self._do_write(line, base, widx, new_value)
            on_done(new_value)
        elif line is not None and line.state.valid:
            self.ctrl.issue(
                TxnKind.UPGRADE, base,
                lambda txn, data: on_done(result["value"]), on_granted=at_grant,
            )
        else:
            self._miss(
                base, is_store=True,
                waiter=lambda data: on_done(result["value"]), on_granted=at_grant,
            )

    # ------------------------------------------------------------------
    # Miss handling
    # ------------------------------------------------------------------

    def _miss(
        self, base: int, is_store: bool, waiter, spec=None, on_granted=None,
        cls=None,
    ) -> None:
        entry = self.mshrs.get(base)
        if entry is not None:
            if on_granted is not None:
                # A grant-time action cannot merge into an in-flight
                # transaction; re-issue the whole miss once it settles
                # (can happen when a deferred store drains behind a
                # racing load miss).
                entry.add_waiter(
                    lambda data: self._miss(
                        base, is_store, waiter, spec, on_granted, cls
                    )
                )
                return
            entry.add_waiter(waiter)
            if spec is not None:
                entry.record_speculation(spec[0], spec[1], spec[2])
            return
        if self.mshrs.full:
            self.stats.add("mshr.stalls")
            self._deferred.append(
                lambda: self._miss(base, is_store, waiter, spec, on_granted, cls)
            )
            return
        entry = self.mshrs.allocate(base, self.scheduler.now, is_store=is_store)
        entry.cls = cls
        entry.span = self.tracer.span_begin(
            "miss", node=self.node_id, base=base, store=is_store, cls=cls,
        )
        entry.add_waiter(waiter)
        if spec is not None:
            entry.record_speculation(spec[0], spec[1], spec[2])
        kind = TxnKind.READX if is_store else TxnKind.READ

        def granted() -> None:
            entry.granted = True
            if on_granted is not None:
                on_granted()

        self.ctrl.issue(
            kind, base, lambda txn, data: self._fill(base, data),
            on_granted=granted, parent=entry.span,
        )

    def _fill(self, base: int, data: list[int] | None) -> None:
        assert data is not None
        entry = self.mshrs.release(base)
        latency = self.scheduler.now - entry.issued_at
        self._miss_hist.record(latency)
        cause = None
        if self.classifier is not None:
            cause = self.classifier.on_fill(self.node_id, base, data)
        self.tracer.emit(
            "mem.miss", node=self.node_id, base=base,
            ts=entry.issued_at, dur=latency, store=entry.is_store,
            cls=entry.cls, cause=cause, span=entry.span,
        )
        self.tracer.span_end(entry.span, node=self.node_id, base=base,
                             cause=cause)
        line = self.ctrl.lookup(base)
        if line is not None:
            self._fill_l1(base, line, dirty=False)
        self._resolve_speculation(entry, data)
        for waiter in entry.waiters:
            waiter(data)
        deferred, self._deferred = self._deferred, []
        for thunk in deferred:
            thunk()

    def _resolve_speculation(self, entry, data: list[int]) -> None:
        self.lvp.resolve(entry, data, self.core)

    # ------------------------------------------------------------------
    # L1 management and latency
    # ------------------------------------------------------------------

    def _hit_latency(self, base: int, line: CacheLine) -> int:
        l1_line = self.l1.lookup(base)
        if l1_line is not None and l1_line.state.valid:
            self.l1.touch(l1_line)
            self.stats.add("l1.hits")
            return self.config.l1.latency
        self._fill_l1(base, line, dirty=False)
        self.stats.add("l2.hits")
        return self.config.l1.latency + self.config.l2.latency

    def _fill_l1(self, base: int, l2_line: CacheLine, dirty: bool) -> None:
        l1_line = self.l1.lookup(base)
        if l1_line is None:
            l1_line, evicted = self.l1.allocate(base)
            if evicted is not None and self.ctrl.stale_detector is not None:
                self.ctrl.stale_detector.on_l1_evict(
                    evicted.base, evicted.state is LineState.M
                )
            l1_line.state = LineState.S
            if self.ctrl.stale_detector is not None:
                self.ctrl.stale_detector.on_l1_fill(
                    base, l2_line.data, l2_was_dirty=l2_line.dirty_mask != 0
                )
        if dirty:
            l1_line.state = LineState.M
        self.l1.touch(l1_line)

    def _classify_miss(self, base: int, widx: int) -> str | None:
        if self.classifier is not None:
            return self.classifier.on_miss(self.node_id, base, widx)
        return None

    # ------------------------------------------------------------------
    # Controller notifications
    # ------------------------------------------------------------------

    def _on_invalidated(self, base: int, words: list[int]) -> None:
        self.l1.evict(base)
        if self.classifier is not None:
            self.classifier.on_remote_invalidate(self.node_id, base, words)
        if self.sle_engine is not None:
            self.sle_engine.on_local_line_invalidated(base)

    def _on_l2_evicted(self, base: int) -> None:
        self.l1.evict(base)
        if self.classifier is not None:
            self.classifier.on_local_evict(self.node_id, base)

    def _on_remote_txn(self, txn: BusTransaction) -> None:
        if self.sle_engine is not None:
            self.sle_engine.on_remote_txn(txn)
