"""Shared report shapes for the fuzz campaign and ``check --mutate``.

``repro-sim check --mutate NAME`` and the campaign's mutation
iterations answer the same question — *did the checker catch this
mutant, and what did the attempt exercise?* — so they share one record
schema, produced here.  :func:`render_fuzz` and
:func:`render_mutation` are the text renderings the CLI prints; the
JSON documents themselves come from
:meth:`repro.fuzz.campaign.FuzzReport.to_json` and
:func:`mutation_record`.
"""

from __future__ import annotations


def mutation_record(name: str, result) -> dict:
    """Summarize a mutated :class:`~repro.verify.checker.CheckResult`.

    Same keys as the campaign's mutation records (minus the
    descriptor machinery): the mutation ``name``, whether the checker
    ``detected`` it, what it was ``caught_as``, the counterexample
    ``trace_len``, and the coverage rows the attempt reached.
    """
    detected = not result.ok
    rows = sorted(
        ":".join(entry["row"])
        for entry in result.coverage.get("exercised", ())
    )
    return {
        "name": name,
        "protocol": result.protocol,
        "seeded": True,
        "detected": detected,
        "caught_as": result.violations[0].kind if detected else None,
        "trace_len": len(result.violations[0].trace) if detected else None,
        "states": result.states,
        "rows_reached": len(rows),
        "rows": rows,
    }


def render_mutation(record: dict) -> str:
    """Text rendering of one mutation record."""
    if record["detected"]:
        status = (
            f"detected as {record['caught_as']} "
            f"({record['trace_len']}-event counterexample)"
        )
    else:
        status = (
            f"ESCAPED detection ({record['states']} states explored)"
        )
    return (
        f"mutation {record['name']} on {record['protocol']}: {status}; "
        f"{record['rows_reached']} coverage rows reached"
    )


def render_fuzz(doc: dict) -> str:
    """Text rendering of a campaign report document."""
    lines = [
        (
            f"fuzz campaign: seed={doc['seed']} budget={doc['budget']} "
            f"protocols={','.join(doc['protocols'])} "
            f"interconnect={doc['interconnect']}"
        ),
        (
            f"  coverage: {doc['rows_covered']} table rows, "
            f"corpus of {doc['corpus_size']} entries"
        ),
    ]
    mut = doc["mutations"]
    lines.append(
        f"  mutations: {mut['detected']}/{mut['attempted']} detected; "
        f"seeded rediscovered: "
        f"{len(mut['seeded_detected'])}/{mut['seeded_total']} "
        f"({', '.join(mut['seeded_detected']) or 'none'})"
    )
    if doc["findings"]:
        lines.append(f"  FINDINGS: {len(doc['findings'])}")
        for finding in doc["findings"]:
            where = finding.get("test") or finding.get("mutation") or "-"
            lines.append(
                f"    [{finding['kind']}] {where} "
                f"({finding.get('protocol', '-')}): {finding['detail']}"
            )
    else:
        lines.append("  findings: none")
    lines.append("result: " + ("CLEAN" if doc["ok"] else "FINDINGS"))
    return "\n".join(lines)
