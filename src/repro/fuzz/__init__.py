"""Coverage-guided protocol fuzzing over the verify subsystem.

ROADMAP item 5: generalize the seeded mutations of PR 2 into a
continuous campaign.  The package composes three loops on top of
:mod:`repro.verify`:

* :mod:`repro.fuzz.generator` — randomized litmus tests and schedules,
  seeded via :class:`repro.common.rng.SplitRng` (deterministic per
  seed, byte-identical reports for a fixed budget);
* :mod:`repro.fuzz.oracle` — allowed-outcome sets *derived* from the
  model checker's exhaustive enumeration on the reference protocol,
  never hand-written;
* :mod:`repro.fuzz.differential` — the same generated workload run
  base vs MESTI vs E-MESTI, abstractly and concretely (through
  :mod:`repro.verify.replay`), with final-memory agreement checked
  per the data-value invariant;
* :mod:`repro.fuzz.mutator` — random protocol-table / validate-policy
  mutations (plus the seeded ``MUTATIONS``) that the bounded checker
  must catch, with transition-table coverage as the feedback signal;
* :mod:`repro.fuzz.campaign` — the budgeted round loop, the corpus of
  (seed, mutation, schedule) triples that reached new coverage rows,
  and counterexample minimization;
* :mod:`repro.fuzz.report` — the JSON/text report shared with
  ``repro-sim check --mutate``.

Surface: ``repro-sim fuzz`` (see :mod:`repro.cli`) and the service's
``kind="fuzz"`` job spec (see :mod:`repro.service.queue`).
"""

from repro.fuzz.campaign import FuzzOptions, run_campaign, run_fuzz_cell
from repro.fuzz.generator import generate_test, make_schedule
from repro.fuzz.oracle import enumerate_outcomes
from repro.fuzz.report import mutation_record, render_fuzz, render_mutation

__all__ = [
    "FuzzOptions",
    "enumerate_outcomes",
    "generate_test",
    "make_schedule",
    "mutation_record",
    "render_fuzz",
    "render_mutation",
    "run_campaign",
    "run_fuzz_cell",
]
