"""The budgeted, coverage-guided fuzzing campaign loop.

One campaign interleaves two iteration kinds under a single budget:

* **generated** iterations (3 of every 4) build a random litmus test,
  derive its allowed-outcome set from the reference-protocol
  enumeration (:mod:`repro.fuzz.oracle`), enumerate every protocol
  under test against it, and run one random schedule differentially
  (:mod:`repro.fuzz.differential`);
* **mutation** iterations (every 4th) build a protocol mutant
  (:mod:`repro.fuzz.mutator`) — walking the hand-seeded plan first,
  then sampling randomly — and require the bounded model checker to
  flag it.

Coverage feedback: every iteration reports the transition-table rows
it exercised, namespaced per protocol; an iteration that reaches rows
no earlier iteration reached earns a corpus entry (its seed index,
mutation descriptor, and schedule), and later generated tests splice
from that corpus.  Failing generated tests are shrunk to 1-minimal
counterexamples (:mod:`repro.fuzz.minimize`), and every finding is
replayed on the concrete simulator for a witness.

Determinism contract: each iteration derives its own RNG stream from
``(campaign seed, iteration index)`` and reads only the corpus
*snapshot* taken at the start of its round (rounds are
:data:`ROUND_SIZE` iterations, merged in index order).  A campaign is
therefore a pure function of ``(seed, budget, options)`` — byte-equal
reports whether it runs serially or on a worker pool, which the test
suite asserts.  Nothing here reads the clock.

:func:`run_fuzz_cell` is the service entry point: the module-level,
picklable function a :class:`~repro.service.workers.WorkerShard` pool
executes for a ``kind="fuzz"`` job cell.  It always runs serially —
it already lives inside a pool worker process.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.common.config import InterconnectKind
from repro.common.rng import SplitRng
from repro.fuzz.differential import DEFAULT_PROTOCOLS, run_differential
from repro.fuzz.generator import generate_test, make_schedule
from repro.fuzz.minimize import minimize_test
from repro.fuzz.mutator import (
    apply_descriptor,
    descriptor_name,
    random_descriptor,
    seeded_plan,
)
from repro.fuzz.oracle import (
    REFERENCE_PROTOCOL,
    derive_allowed,
    enumerate_outcomes,
)
from repro.verify.checker import ModelChecker
from repro.verify.model import AbstractMachine, ProtocolSpec
from repro.verify.mutations import MUTATIONS
from repro.verify.replay import ConcreteReplayer

#: Every ``MUTATION_STRIDE``-th iteration checks a protocol mutant.
MUTATION_STRIDE = 4

#: Iterations per batch-synchronous round (one corpus snapshot each).
ROUND_SIZE = 8

#: Visited-state bound for mutation-iteration model checks.  Seeded
#: mutations have counterexamples within a handful of BFS levels, so a
#: bounded run still catches them while keeping iterations cheap.
MUTATION_MAX_STATES = 4000


@dataclass(frozen=True)
class FuzzOptions:
    """Campaign parameters; hashable and picklable for pool workers."""

    seed: int = 0
    budget: int = 200
    protocols: tuple[str, ...] = DEFAULT_PROTOCOLS
    interconnect: str = "bus"
    workers: int = 0
    oracle_max_states: int = 20_000
    mutation_max_states: int = MUTATION_MAX_STATES
    replay_witnesses: bool = True
    minimize: bool = True


def _interconnect(options: FuzzOptions) -> InterconnectKind:
    return (
        InterconnectKind.DIRECTORY
        if options.interconnect == "directory"
        else InterconnectKind.BUS
    )


def _rows(protocol: str, keys) -> set[str]:
    """Namespace transition-table row keys per protocol."""
    return {f"{protocol}:{side}:{pre}:{event}" for side, pre, event in keys}


def _trace_json(trace) -> list:
    return [list(event) for event in trace]


def _witness(spec_name, test, trace, interconnect, mutate=None) -> dict:
    """Concrete-simulator replay of an abstract trace (the witness)."""
    replayer = ConcreteReplayer(
        ProtocolSpec(spec_name), n_nodes=test.n_nodes,
        interconnect=interconnect, mutate=mutate,
    )
    doc = replayer.replay(trace).to_json()
    doc["protocol"] = spec_name
    return doc


# ----------------------------------------------------------------------
# One iteration (module-level: runs in pool workers)
# ----------------------------------------------------------------------


def _mutation_iteration(options: FuzzOptions, index: int,
                        rng: SplitRng) -> dict:
    """Check one protocol mutant with the bounded model checker."""
    interconnect = _interconnect(options)
    plan = seeded_plan()
    plan_index = index // MUTATION_STRIDE
    if plan_index < len(plan):
        proto_name, descriptor = plan[plan_index]
    else:
        proto_name = rng.choice(tuple(options.protocols))
        descriptor = random_descriptor(
            rng.split("descriptor"), ProtocolSpec(proto_name)
        )
    spec = ProtocolSpec(proto_name)
    logic = apply_descriptor(spec, descriptor)
    machine = AbstractMachine(logic, n_nodes=3, interconnect=interconnect)
    result = ModelChecker(
        machine, max_states=options.mutation_max_states
    ).run()
    detected = not result.ok
    record = {
        "descriptor": list(descriptor),
        "name": descriptor_name(descriptor),
        "protocol": proto_name,
        "seeded": descriptor[0] == "seeded",
        "detected": detected,
        "caught_as": result.violations[0].kind if detected else None,
        "trace_len": (
            len(result.violations[0].trace) if detected else None
        ),
        "states": result.states,
        "rows_reached": len(result.coverage.get("exercised", ())),
    }
    findings: list[dict] = []
    if record["seeded"] and not detected:
        findings.append({
            "kind": "mutation-escape",
            "test": None,
            "protocol": proto_name,
            "detail": (
                f"seeded mutation {descriptor[1]!r} escaped the bounded "
                f"checker ({result.states} states explored)"
            ),
            "mutation": record["name"],
            "trace": [],
            "witness": None,
        })
    if record["seeded"] and detected and options.replay_witnesses:
        # Close the loop: the abstract counterexample must fail on the
        # concrete simulator carrying the same mutation.
        trace = result.violations[0].trace
        test_shim = _MutantShim(n_nodes=3)
        witness = _witness(
            proto_name, test_shim, trace, interconnect,
            mutate=descriptor[1],
        )
        record["witness"] = witness
        if witness["ok"]:
            findings.append({
                "kind": "replay-divergence",
                "test": None,
                "protocol": proto_name,
                "detail": (
                    f"abstract checker caught {descriptor[1]!r} as "
                    f"{record['caught_as']} but the concrete replay of "
                    f"its counterexample passed"
                ),
                "mutation": record["name"],
                "trace": _trace_json(trace),
                "witness": witness,
            })
    rows = _rows(
        proto_name,
        (tuple(e["row"]) for e in result.coverage.get("exercised", ())),
    )
    entry = {
        "iteration": index,
        "seed": options.seed,
        "mutation": list(descriptor),
        "protocol": proto_name,
    }
    return {
        "index": index,
        "kind": "mutation",
        "rows": sorted(rows),
        "findings": findings,
        "record": record,
        "entry": entry,
    }


@dataclass(frozen=True)
class _MutantShim:
    """Just enough of a test for witness replay of mutant traces."""

    n_nodes: int


def _oracle_finding(options, spec, test, allowed, result, reference,
                    interconnect) -> dict | None:
    """Cross-check one protocol's enumeration against the oracle."""
    if result.violation is not None:
        return {
            "kind": "invariant-violation",
            "test": test.name,
            "protocol": spec.name,
            "detail": (
                f"{result.violation['kind']}: "
                f"{result.violation['detail']}"
            ),
            "trace": result.violation["trace"],
            "witness": None,
        }
    if not (result.complete and reference.complete):
        return None  # bounded enumeration: outcome sets not comparable
    outcomes = frozenset(result.outcomes)
    if outcomes == allowed:
        return None
    extra = sorted(outcomes - allowed)
    missing = sorted(allowed - outcomes)
    witness_trace = result.outcomes[extra[0]] if extra else ()
    return {
        "kind": "oracle-divergence",
        "test": test.name,
        "protocol": spec.name,
        "detail": (
            f"outcomes diverge from the {REFERENCE_PROTOCOL} reference: "
            f"extra={extra} missing={missing}"
        ),
        "trace": witness_trace,
        "witness": None,
    }


def _shrink(options, spec, test, finding, interconnect):
    """Minimize an enumeration finding's test; refresh its trace."""
    kind = finding["kind"]

    def reproduces(candidate) -> bool:
        allowed, reference = derive_allowed(
            candidate, interconnect, options.oracle_max_states
        )
        res = enumerate_outcomes(
            spec, candidate, interconnect, options.oracle_max_states
        )
        if kind == "invariant-violation":
            return (
                res.violation is not None
                and res.violation["kind"] in finding["detail"]
            )
        return (
            res.violation is None
            and res.complete and reference.complete
            and frozenset(res.outcomes) != allowed
        )

    minimized, attempts = minimize_test(test, reproduces)
    if minimized is test:
        return test, {"attempts": attempts, "removed_ops": 0}
    before = sum(len(p) for p in test.programs)
    after = sum(len(p) for p in minimized.programs)
    return minimized, {"attempts": attempts, "removed_ops": before - after}


def _generated_iteration(options: FuzzOptions, index: int, rng: SplitRng,
                         corpus: tuple) -> dict:
    """Generate, oracle-check, and differentially run one test."""
    interconnect = _interconnect(options)
    test = generate_test(rng.split("test"), index, corpus)
    allowed, reference = derive_allowed(
        test, interconnect, options.oracle_max_states
    )
    rows = _rows(REFERENCE_PROTOCOL, reference.coverage.rows)
    findings: list[dict] = []
    for name in options.protocols:
        spec = ProtocolSpec(name)
        result = (
            reference if name == REFERENCE_PROTOCOL
            else enumerate_outcomes(
                spec, test, interconnect, options.oracle_max_states
            )
        )
        rows |= _rows(name, result.coverage.rows)
        finding = _oracle_finding(
            options, spec, test, allowed, result, reference, interconnect
        )
        if finding is None:
            continue
        shrunk = test
        if options.minimize:
            shrunk, stats = _shrink(
                options, spec, test, finding, interconnect
            )
            finding["minimized"] = dict(
                stats,
                programs=[
                    [list(op) for op in p] for p in shrunk.programs
                ],
            )
            if shrunk is not test:
                refreshed = enumerate_outcomes(
                    spec, shrunk, interconnect, options.oracle_max_states
                )
                if finding["kind"] == "invariant-violation":
                    if refreshed.violation is not None:
                        finding["trace"] = refreshed.violation["trace"]
                else:
                    shrunk_allowed, _ = derive_allowed(
                        shrunk, interconnect, options.oracle_max_states
                    )
                    extra = sorted(
                        frozenset(refreshed.outcomes) - shrunk_allowed
                    )
                    if extra:
                        finding["trace"] = refreshed.outcomes[extra[0]]
        if options.replay_witnesses and finding["trace"]:
            finding["witness"] = _witness(
                name, shrunk, finding["trace"], interconnect
            )
        finding["trace"] = _trace_json(finding["trace"])
        findings.append(finding)

    schedule, decisions = make_schedule(rng.split("schedule"), test)
    diff = run_differential(
        test, schedule, decisions, tuple(options.protocols),
        interconnect, options.replay_witnesses,
    )
    for finding in diff.findings:
        finding["trace"] = _trace_json(finding["trace"])
        findings.append(finding)

    entry = {
        "iteration": index,
        "seed": options.seed,
        "test": test.name,
        "programs": [[list(op) for op in p] for p in test.programs],
        "n_lines": test.n_lines,
        "n_words": test.n_words,
        "schedule": [list(e) for e in schedule],
        "decisions": list(decisions),
        "mutation": None,
    }
    return {
        "index": index,
        "kind": "generated",
        "rows": sorted(rows),
        "findings": findings,
        "record": None,
        "entry": entry,
    }


def run_iteration(options: FuzzOptions, index: int, corpus: tuple) -> dict:
    """Run iteration ``index`` against a corpus snapshot.

    Module-level and picklable: the campaign maps this over a process
    pool when ``options.workers > 0``.  The iteration's RNG stream
    depends only on ``(options.seed, index)``, never on which worker
    runs it.
    """
    rng = SplitRng(options.seed).split(f"iter/{index}")
    if index % MUTATION_STRIDE == MUTATION_STRIDE - 1:
        return _mutation_iteration(options, index, rng)
    return _generated_iteration(options, index, rng, corpus)


# ----------------------------------------------------------------------
# The campaign driver
# ----------------------------------------------------------------------


@dataclass
class FuzzReport:
    """Everything one campaign produced, JSON-ready."""

    options: FuzzOptions
    covered: set = field(default_factory=set)
    corpus: list = field(default_factory=list)
    findings: list = field(default_factory=list)
    mutations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the campaign surfaced no finding of any kind."""
        return not self.findings

    def to_json(self) -> dict:
        """The report document (also the service's result payload)."""
        seeded = [m for m in self.mutations if m["seeded"]]
        return {
            "fuzz": True,
            "seed": self.options.seed,
            "budget": self.options.budget,
            "protocols": list(self.options.protocols),
            "interconnect": self.options.interconnect,
            "ok": self.ok,
            "rows_covered": len(self.covered),
            "corpus_size": len(self.corpus),
            "corpus": self.corpus,
            "findings": self.findings,
            "mutations": {
                "attempted": len(self.mutations),
                "detected": sum(
                    1 for m in self.mutations if m["detected"]
                ),
                "seeded_total": len(MUTATIONS),
                "seeded_detected": sorted(
                    m["descriptor"][1] for m in seeded if m["detected"]
                ),
                "records": self.mutations,
            },
        }


def run_campaign(options: FuzzOptions) -> FuzzReport:
    """Run one campaign to its budget; deterministic per options."""
    report = FuzzReport(options=options)
    executor = (
        ProcessPoolExecutor(max_workers=options.workers)
        if options.workers > 0 else None
    )
    try:
        index = 0
        while index < options.budget:
            batch = range(
                index, min(index + ROUND_SIZE, options.budget)
            )
            snapshot = tuple(
                e for e in report.corpus if e.get("programs")
            )
            if executor is not None:
                results = list(executor.map(
                    run_iteration,
                    (options for _ in batch),
                    batch,
                    (snapshot for _ in batch),
                ))
            else:
                results = [
                    run_iteration(options, i, snapshot) for i in batch
                ]
            # Merge strictly in index order: corpus admission (and
            # therefore later rounds' generation) must not depend on
            # worker scheduling.
            for res in results:
                rows = set(res["rows"])
                new = rows - report.covered
                report.covered |= rows
                if new:
                    entry = dict(res["entry"])
                    entry["new_rows"] = sorted(new)
                    report.corpus.append(entry)
                report.findings.extend(res["findings"])
                if res["record"] is not None:
                    report.mutations.append(res["record"])
            index += len(batch)
    finally:
        if executor is not None:
            executor.shutdown()
    return report


def run_fuzz_cell(
    seed: int,
    budget: int,
    protocols: tuple[str, ...],
    interconnect: str,
) -> dict:
    """Service entry point: one fuzz cell, executed in a pool worker.

    Runs the campaign serially (the caller already provides process
    parallelism — one cell per seed) and returns the JSON report.
    """
    options = FuzzOptions(
        seed=seed,
        budget=budget,
        protocols=tuple(protocols),
        interconnect=interconnect,
        workers=0,
    )
    return run_campaign(options).to_json()
