"""Differential execution: one workload, every protocol, same answer.

The data-value invariant says temporal-silence machinery is invisible
to software: for any program and any interleaving, the values loads
observe — and the memory image a final sweep of loads reads back —
must be identical whether the machine runs plain MESI, MESTI, or
E-MESTI.  :func:`concretize` walks one generated schedule through a
protocol's :class:`~repro.verify.model.AbstractMachine`; :func:`
run_differential` runs the same schedule on every protocol under test
and cross-checks three ways:

* **invariant violations** — the machine raised
  :class:`~repro.verify.model.ModelViolation` mid-walk;
* **data-value breaks** — the epilogue sweep (node 0 loads every
  (line, word) after the schedule) observed something other than the
  architectural shadow values;
* **differential divergences** — two protocols disagreed on any load
  value along the identical linearization.

Every finding is replayed through the concrete simulator
(:class:`~repro.verify.replay.ConcreteReplayer`) so the report carries
a real-machine witness, not just an abstract trace.

Two schedule properties make cross-protocol comparison sound.  First,
line *residency* (is a tag present?) is protocol-independent in the
abstract model — invalidations park lines in I/T rather than dropping
the tag, and only fills and evicts change presence, at identical
schedule points — so the evict-if-resident rule below skips the same
entries on every protocol.  Second, validate decisions are consumed
cyclically from a shared tuple *only when the executing protocol
detects a reversion*, so a protocol without temporal silence simply
consumes none; the decision stream itself is part of the workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import InterconnectKind
from repro.verify.litmus import LitmusTest
from repro.verify.model import AbstractMachine, ModelViolation, ProtocolSpec
from repro.verify.replay import ConcreteReplayer

#: The default protocol triple: baseline, temporal, enhanced-temporal.
DEFAULT_PROTOCOLS = ("mesi", "mesti", "emesti")


@dataclass
class DifferentialRun:
    """One protocol's abstract walk of one schedule."""

    protocol: str
    trace: tuple = ()  # every applied event, epilogue included
    loads: tuple = ()  # program-load values, in schedule order
    epilogue: tuple = ()  # node-0 sweep values, (line, word) order
    arch: tuple = ()  # architectural shadow values at the end
    violation: dict | None = None  # {"kind", "detail", "trace"}

    @property
    def ok(self) -> bool:
        """True when the walk completed without a model violation."""
        return self.violation is None

    @property
    def observed(self) -> tuple:
        """Everything value-visible: program loads then the sweep."""
        return self.loads + self.epilogue


def concretize(
    spec: ProtocolSpec,
    test: LitmusTest,
    schedule: tuple,
    decisions: tuple,
    interconnect: InterconnectKind = InterconnectKind.BUS,
) -> DifferentialRun:
    """Walk ``schedule`` on ``spec``'s abstract machine.

    Schedule entries are ``("op", node)`` / ``("evict", node, line)``
    as produced by :func:`repro.fuzz.generator.make_schedule`; evicts
    of non-resident lines are skipped (identically on every protocol).
    After the schedule, node 0 loads every (line, word) — the
    data-value sweep the differential comparison keys on.
    """
    machine = AbstractMachine(
        spec.make_logic(),
        n_nodes=test.n_nodes,
        n_lines=test.n_lines,
        n_words=test.n_words,
        interconnect=interconnect,
    )
    run = DifferentialRun(protocol=spec.name)
    state = machine.initial()
    pcs = [0] * test.n_nodes
    trace: list = []
    loads: list = []
    decision_idx = 0

    def step(event):
        nonlocal state
        new_state, value = machine.apply(state, event)
        state = new_state
        trace.append(event)
        return value

    try:
        for entry in schedule:
            if entry[0] == "op":
                node = entry[1]
                op = test.programs[node][pcs[node]]
                pcs[node] += 1
                if op[0] == "load":
                    loads.append(step(("load", node, op[1], op[2])))
                    continue
                _, line, word, value = op
                if machine.store_detects_reversion(
                    state, node, line, word, value
                ):
                    decision = decisions[decision_idx % len(decisions)]
                    decision_idx += 1
                    step(("store", node, line, word, value, decision))
                else:
                    step(("store", node, line, word, value))
            else:
                _, node, line = entry
                if machine.node_line(state, node, line) is None:
                    continue  # non-resident: same skip on every protocol
                step(("evict", node, line))
        epilogue = []
        for line in range(test.n_lines):
            for word in range(test.n_words):
                epilogue.append(step(("load", 0, line, word)))
    except ModelViolation as exc:
        run.violation = {
            "kind": exc.kind,
            "detail": exc.detail,
            "trace": tuple(trace),
        }
        epilogue = []
    run.trace = tuple(trace)
    run.loads = tuple(loads)
    run.epilogue = tuple(epilogue)
    run.arch = state[2]
    return run


def _witness(
    spec_name: str,
    test: LitmusTest,
    trace: tuple,
    interconnect: InterconnectKind,
) -> dict:
    """Replay a trace on the real simulator for a concrete witness."""
    replayer = ConcreteReplayer(
        ProtocolSpec(spec_name), n_nodes=test.n_nodes,
        interconnect=interconnect,
    )
    outcome = replayer.replay(trace)
    doc = outcome.to_json()
    doc["protocol"] = spec_name
    return doc


@dataclass
class DifferentialResult:
    """All protocols' runs of one schedule, plus the cross-checks."""

    runs: list[DifferentialRun] = field(default_factory=list)
    findings: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every run agreed and nothing broke."""
        return not self.findings


def run_differential(
    test: LitmusTest,
    schedule: tuple,
    decisions: tuple,
    protocols: tuple[str, ...] = DEFAULT_PROTOCOLS,
    interconnect: InterconnectKind = InterconnectKind.BUS,
    replay_witnesses: bool = True,
) -> DifferentialResult:
    """Run one schedule on every protocol and cross-check the results.

    Findings are dicts with ``kind`` in ``invariant-violation`` /
    ``data-value`` / ``differential-divergence``; when
    ``replay_witnesses`` is set each carries a ``witness`` from the
    concrete simulator (the expensive replay only runs on findings).
    """
    result = DifferentialResult()
    for name in protocols:
        run = concretize(
            ProtocolSpec(name), test, schedule, decisions, interconnect
        )
        result.runs.append(run)
        if run.violation is not None:
            result.findings.append({
                "kind": "invariant-violation",
                "test": test.name,
                "protocol": name,
                "detail": f"{run.violation['kind']}: {run.violation['detail']}",
                "trace": run.violation["trace"],
                "witness": (
                    _witness(name, test, run.violation["trace"], interconnect)
                    if replay_witnesses else None
                ),
            })
            continue
        expected = tuple(
            run.arch[line][word]
            for line in range(test.n_lines)
            for word in range(test.n_words)
        )
        if run.epilogue != expected:
            result.findings.append({
                "kind": "data-value",
                "test": test.name,
                "protocol": name,
                "detail": (
                    f"epilogue sweep read {run.epilogue}, architectural "
                    f"values are {expected}"
                ),
                "trace": run.trace,
                "witness": (
                    _witness(name, test, run.trace, interconnect)
                    if replay_witnesses else None
                ),
            })

    clean = [r for r in result.runs if r.ok]
    if len(clean) > 1:
        reference = clean[0]
        for run in clean[1:]:
            if run.observed != reference.observed:
                result.findings.append({
                    "kind": "differential-divergence",
                    "test": test.name,
                    "protocol": run.protocol,
                    "detail": (
                        f"{run.protocol} observed {run.observed} but "
                        f"{reference.protocol} observed "
                        f"{reference.observed} on the same schedule"
                    ),
                    "trace": run.trace,
                    "witness": (
                        _witness(
                            run.protocol, test, run.trace, interconnect
                        )
                        if replay_witnesses else None
                    ),
                })
    return result
