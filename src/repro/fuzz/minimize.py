"""Greedy counterexample minimization for generated tests.

A failing generated test often carries ops that have nothing to do
with the failure.  :func:`minimize_test` deletes one op at a time and
keeps each deletion that still reproduces (per a caller-supplied
predicate — typically "the oracle/differential finding is still
present"), restarting the scan after every successful deletion until
a fixed point or the attempt budget runs out.  The result is a
1-minimal program set: removing any single remaining op loses the
failure.

The predicate sees a real :class:`~repro.verify.litmus.LitmusTest`
(rebuilt via :func:`repro.fuzz.generator.retarget`, which recomputes
the observed-load set), so minimization composes with any checker the
campaign uses.  Reproduction under the predicate must be deterministic
— which it is, because every campaign check is a pure function of the
test (exhaustive enumeration, fixed schedule walk).
"""

from __future__ import annotations

from typing import Callable

from repro.fuzz.generator import retarget
from repro.verify.litmus import LitmusTest

#: Cap on predicate evaluations per minimization (each may be an
#: exhaustive enumeration; generated tests have <= 9 ops, so the cap
#: is generous).
DEFAULT_ATTEMPTS = 64


def minimize_test(
    test: LitmusTest,
    reproduces: Callable[[LitmusTest], bool],
    attempts: int = DEFAULT_ATTEMPTS,
) -> tuple[LitmusTest, int]:
    """Shrink ``test`` while ``reproduces`` stays true.

    Returns ``(minimized_test, attempts_used)``.  ``test`` itself is
    returned unchanged if no single-op deletion reproduces (or the
    budget is exhausted immediately).
    """
    current = test
    used = 0
    improved = True
    while improved and used < attempts:
        improved = False
        programs = [list(p) for p in current.programs]
        for node in range(len(programs)):
            for idx in range(len(programs[node])):
                if used >= attempts:
                    return current, used
                candidate_programs = [list(p) for p in programs]
                del candidate_programs[node][idx]
                # Drop emptied nodes when the model's 2-node floor
                # allows it; otherwise keep them as empty programs.
                pruned = [p for p in candidate_programs if p]
                if len(pruned) >= 2:
                    candidate_programs = pruned
                elif not pruned:
                    continue
                candidate = retarget(current, candidate_programs)
                used += 1
                if reproduces(candidate):
                    current = candidate
                    improved = True
                    break
            if improved:
                break
    return current, used
