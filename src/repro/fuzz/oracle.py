"""Model-checker-derived allowed-outcome oracles for generated tests.

Hand-written allowed sets do not scale to generated workloads, and a
wrong one would silently bless a broken protocol.  Instead the oracle
*is* the model: :func:`enumerate_outcomes` explores every interleaving
of a test's programs (forking both validate decisions wherever a store
detects temporal silence) on the :class:`~repro.verify.model.
AbstractMachine`, exactly like :class:`~repro.verify.litmus.
LitmusRunner` — but it additionally

* records transition-table coverage (the campaign's feedback signal)
  through the :class:`~repro.verify.table.TransitionCoverage` hook,
* catches :class:`~repro.verify.model.ModelViolation` mid-exploration
  and reports it with its reproducing trace (a generated test may
  legitimately drive the machine into an invariant breach — on the
  real tables that is a finding, on a mutated table the catch),
* keeps the *shortest* witness trace per outcome and bounds the
  exploration by visited-state count so a pathological test cannot
  hang an iteration.

The allowed set for a test is the outcome set enumerated on the
reference protocol (plain MESI): every protocol variant under test
must produce exactly that set — temporal-silence machinery is a
performance feature and must be architecturally invisible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import InterconnectKind
from repro.verify.litmus import LitmusTest
from repro.verify.model import (
    AbstractMachine,
    Event,
    ModelViolation,
    ProtocolSpec,
)
from repro.verify.table import TransitionCoverage

#: Default visited-state bound per enumeration (a generated test has
#: at most ~9 ops over <=3 nodes; real explorations stay well under).
DEFAULT_MAX_STATES = 20_000

#: The protocol whose enumeration defines the allowed-outcome set.
REFERENCE_PROTOCOL = "mesi"


@dataclass
class OracleResult:
    """One exhaustive enumeration of a test on one protocol."""

    protocol: str
    interconnect: str
    outcomes: dict = field(default_factory=dict)  # outcome -> witness trace
    complete: bool = True
    states: int = 0
    violation: dict | None = None  # {"kind", "detail", "trace"}
    coverage: TransitionCoverage = field(default_factory=TransitionCoverage)

    @property
    def ok(self) -> bool:
        """True when no invariant broke during enumeration."""
        return self.violation is None


def enumerate_outcomes(
    spec: ProtocolSpec,
    test: LitmusTest,
    interconnect: InterconnectKind = InterconnectKind.BUS,
    max_states: int = DEFAULT_MAX_STATES,
) -> OracleResult:
    """Enumerate every interleaving of ``test`` on ``spec``'s machine."""
    machine = AbstractMachine(
        spec.make_logic(),
        n_nodes=test.n_nodes,
        n_lines=test.n_lines,
        n_words=test.n_words,
        interconnect=interconnect,
    )
    result = OracleResult(
        protocol=machine.protocol.name,
        interconnect=(
            "directory"
            if interconnect is InterconnectKind.DIRECTORY
            else "bus"
        ),
    )
    machine.protocol.observer = result.coverage.record
    init = machine.initial()
    stack = [(init, (0,) * test.n_nodes, (), ())]
    seen = set()
    while stack:
        state, pcs, loads, trace = stack.pop()
        key = (state, pcs, loads)
        if key in seen:
            continue
        seen.add(key)
        if len(seen) >= max_states:
            result.complete = False
            break
        if all(pc >= len(p) for pc, p in zip(pcs, test.programs)):
            outcome = _outcome(test, loads)
            best = result.outcomes.get(outcome)
            if best is None or len(trace) < len(best):
                result.outcomes[outcome] = trace
            continue
        for node, program in enumerate(test.programs):
            pc = pcs[node]
            if pc >= len(program):
                continue
            op = program[pc]
            next_pcs = pcs[:node] + (pc + 1,) + pcs[node + 1:]
            if op[0] == "load":
                event: Event = ("load", node, op[1], op[2])
                try:
                    nxt, value = machine.apply(state, event)
                except ModelViolation as exc:
                    result.violation = _violation(exc, trace + (event,))
                    result.states = len(seen)
                    return result
                stack.append(
                    (nxt, next_pcs, loads + (((node, pc), value),),
                     trace + (event,))
                )
                continue
            _, line, word, value = op
            if machine.store_detects_reversion(state, node, line, word, value):
                decisions = ("validate", "quiet")
            else:
                decisions = (None,)
            for decision in decisions:
                event = (
                    ("store", node, line, word, value)
                    if decision is None
                    else ("store", node, line, word, value, decision)
                )
                try:
                    nxt, _ = machine.apply(state, event)
                except ModelViolation as exc:
                    result.violation = _violation(exc, trace + (event,))
                    result.states = len(seen)
                    return result
                stack.append((nxt, next_pcs, loads, trace + (event,)))
    result.states = len(seen)
    return result


def _violation(exc: ModelViolation, trace: tuple[Event, ...]) -> dict:
    """Package a mid-exploration invariant breach with its trace."""
    return {"kind": exc.kind, "detail": exc.detail, "trace": trace}


def _outcome(test: LitmusTest, loads) -> tuple:
    """The observed-load tuple of one completed interleaving."""
    values = dict(loads)
    return tuple(values[key] for key in test.observed)


def derive_allowed(
    test: LitmusTest,
    interconnect: InterconnectKind = InterconnectKind.BUS,
    max_states: int = DEFAULT_MAX_STATES,
) -> tuple[frozenset, OracleResult]:
    """The model-derived allowed set: reference-protocol enumeration."""
    reference = enumerate_outcomes(
        ProtocolSpec(REFERENCE_PROTOCOL), test, interconnect, max_states
    )
    return frozenset(reference.outcomes), reference
